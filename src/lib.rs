//! # query-scheduler
//!
//! Umbrella crate re-exporting the Query Scheduler workspace: a reproduction of
//! *"Adapting Mixed Workloads to Meet SLOs in Autonomic DBMSs"* (Niu, Martin,
//! Powley, Bird, Horman — ICDE 2007).
//!
//! See the individual crates for the layered architecture:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel.
//! * [`dbms`] — simulated DBMS substrate (engine, resources, Query Patroller).
//! * [`workload`] — TPC-H-like / TPC-C-like workload generators.
//! * [`core`] — the paper's contribution: the workload adaptation framework.
//! * [`experiments`] — harness regenerating every figure in the paper.

pub use qsched_core as core;
pub use qsched_dbms as dbms;
pub use qsched_experiments as experiments;
pub use qsched_sim as sim;
pub use qsched_workload as workload;
