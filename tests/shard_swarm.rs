//! The shard swarm: the sharded control plane's identity and conservation
//! bars.
//!
//! Claims proven here:
//!
//! 1. **Single-shard bit identity** — a `shards = 1` topology produces a
//!    flight-recorder digest identical to the unsharded path across 16
//!    seeds: the epoch-barrier orchestration, the pass-through allocator
//!    and the fleet accounting are all invisible to the event stream.
//! 2. **Sharded runs are deterministic** — an N = 4 hash-routed fleet
//!    replays to the identical folded digest and identical per-shard rows.
//! 3. **Routing conserves the workload** — every policy splits each
//!    schedule cell without losing or inventing clients, and per-shard
//!    completions sum to the fleet summary.
//! 4. **Batched dispatch changes no results** — `max_batch > 1` over the
//!    sim transport completes the same queries per class as the unbatched
//!    wire on every shard.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::core::transport::{TransportConfig, TransportMode};
use query_scheduler::experiments::config::{
    ControllerSpec, ExperimentConfig, RoutingPolicy, ShardSpec,
};
use query_scheduler::experiments::world::{run_experiment, RunOutput};
use query_scheduler::sim::SimDuration;
use query_scheduler::workload::Schedule;

/// Three classes over three 90 s periods of shifting load under the Query
/// Scheduler — small enough that a 16-seed swarm stays fast, busy enough
/// that plans actually move.
fn base_config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    cfg.oracle.panic_on_violation = true;
    cfg.resilience.measure_mttr = false;
    cfg
}

fn digest(out: &RunOutput) -> u64 {
    out.oracle
        .as_ref()
        .expect("oracle enabled in swarm configs")
        .recorder_digest
}

#[test]
fn single_shard_topology_is_bit_identical_to_the_unsharded_path() {
    for seed in 0..16u64 {
        let plain = run_experiment(&base_config(seed));

        let mut sharded_cfg = base_config(seed);
        let mut spec = ShardSpec::new(1);
        // A barrier cadence deliberately misaligned with the control
        // interval, so segmented run_until is exercised mid-plan.
        spec.allocation_interval = SimDuration::from_secs(45);
        sharded_cfg.shard = Some(spec);
        let sharded = run_experiment(&sharded_cfg);

        assert_eq!(
            digest(&plain),
            digest(&sharded),
            "seed {seed}: single-shard digest diverged from the unsharded run"
        );
        assert_eq!(
            plain.summary.events, sharded.summary.events,
            "seed {seed}: event counts diverged"
        );
        assert_eq!(
            (plain.summary.olap_completed, plain.summary.oltp_completed),
            (
                sharded.summary.olap_completed,
                sharded.summary.oltp_completed
            ),
            "seed {seed}: completions diverged"
        );
        let fleet = sharded
            .report
            .shards
            .expect("sharded run reports its fleet");
        assert_eq!(fleet.shards, 1);
        assert_eq!(fleet.rows.len(), 1);
        assert_eq!(fleet.rows[0].recorder_digest, digest(&plain));
        assert_eq!(
            fleet.allocator.solves, fleet.allocator.no_op_solves,
            "a single backend must make every solve a pass-through no-op"
        );
    }
}

#[test]
fn sharded_runs_are_deterministic_and_conserve_completions() {
    let mut cfg = base_config(42);
    let mut spec = ShardSpec::new(4);
    spec.allocation_interval = SimDuration::from_secs(60);
    // One fleet budget across four backends.
    if let ControllerSpec::QueryScheduler(sc) = &mut cfg.controller {
        sc.system_limit = query_scheduler::dbms::Timerons::new(sc.system_limit.get() * 4.0);
    }
    cfg.shard = Some(spec);

    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(
        digest(&a),
        digest(&b),
        "sharded replay must be bit-identical"
    );

    let fleet = a.report.shards.as_ref().expect("fleet report");
    assert_eq!(fleet.rows.len(), 4);
    let (mut olap, mut oltp, mut events) = (0u64, 0u64, 0u64);
    for (row_a, row_b) in fleet
        .rows
        .iter()
        .zip(b.report.shards.as_ref().expect("fleet report").rows.iter())
    {
        assert_eq!(row_a, row_b, "per-shard rows must replay identically");
        olap += row_a.olap_completed;
        oltp += row_a.oltp_completed;
        events += row_a.events;
        assert!(
            row_a.final_limit > 0.0,
            "every backend keeps a budget share"
        );
    }
    assert_eq!(
        olap, a.summary.olap_completed,
        "fleet OLAP total is the row sum"
    );
    assert_eq!(
        oltp, a.summary.oltp_completed,
        "fleet OLTP total is the row sum"
    );
    assert_eq!(events, a.summary.events, "fleet event total is the row sum");
    assert!(
        fleet.allocator.solves > 0,
        "the global allocator must have run at the barriers"
    );
    // Distinct seeds per shard: shard 0 keeps the parent's.
    assert_eq!(fleet.rows[0].seed, 42);
    let seeds: std::collections::HashSet<u64> = fleet.rows.iter().map(|r| r.seed).collect();
    assert_eq!(seeds.len(), 4, "per-shard seeds must be distinct");
}

#[test]
fn every_routing_policy_conserves_the_schedule() {
    for routing in [
        RoutingPolicy::Hash,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::ClassAffinity,
    ] {
        let mut cfg = base_config(7);
        let mut spec = ShardSpec::new(3);
        spec.routing = routing;
        spec.allocation_interval = SimDuration::from_secs(60);
        cfg.shard = Some(spec);
        let out = run_experiment(&cfg);
        let fleet = out.report.shards.expect("fleet report");
        assert_eq!(fleet.routing, routing.name());
        // Whatever the split, the fleet as a whole served the workload the
        // parent schedule describes: the peak population bounds hold.
        let total: u64 = fleet
            .rows
            .iter()
            .map(|r| r.olap_completed + r.oltp_completed)
            .sum();
        assert!(total > 0, "{}: the fleet completed work", routing.name());
        assert_eq!(
            total,
            out.summary.olap_completed + out.summary.oltp_completed,
            "{}: merged summary matches the row sum",
            routing.name()
        );
    }
}

#[test]
fn batched_dispatch_completes_the_same_work() {
    let run_with_batch = |max_batch: u8| {
        let mut cfg = base_config(11);
        if let ControllerSpec::QueryScheduler(sc) = &mut cfg.controller {
            sc.transport = TransportConfig {
                mode: TransportMode::Sim,
                max_batch,
                ..TransportConfig::default()
            };
        }
        run_experiment(&cfg)
    };
    let unbatched = run_with_batch(1);
    let batched = run_with_batch(8);
    assert_eq!(
        (
            unbatched.summary.olap_completed,
            unbatched.summary.oltp_completed
        ),
        (
            batched.summary.olap_completed,
            batched.summary.oltp_completed
        ),
        "batching the wire must not change what completes"
    );
    assert!(
        batched.oracle.expect("oracle on").stats.violations == 0,
        "batched dispatch keeps the oracle green"
    );
}
