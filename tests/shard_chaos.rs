//! Partial-failure chaos for the sharded control plane: one backend's
//! controller crashes mid-flash-crowd while its peers keep serving.
//!
//! Claims proven here:
//!
//! 1. **Failure stays partial** — a `controller.crash@shard1` channel
//!    crashes exactly one backend's controller; the other shards record no
//!    crash and their SLO attainment is unaffected (compared cell-for-cell
//!    against the same fleet run without the fault).
//! 2. **The crashed shard recovers** — its recovery is judged against its
//!    own crash-free reference twin and reports a finite per-shard MTTR.
//! 3. **The oracle stays green fleet-wide** — every shard runs the full
//!    invariant set with panic-on-violation through crash, restart and
//!    re-allocation.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::dbms::Timerons;
use query_scheduler::experiments::config::{
    ControllerSpec, ExperimentConfig, RoutingPolicy, ShardSpec,
};
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::{ChaosTrack, FaultPlan, FaultSpec, SimDuration};
use query_scheduler::workload::Schedule;

/// A three-backend fleet under a flash crowd: period 2 (90–180 s) triples
/// the OLTP population. The fleet budget is 3× the single-machine paper
/// budget; checkpoints every 20 s bound the crash's data loss.
fn fleet_config(seed: u64, routing: RoutingPolicy) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![3, 3, 45], vec![3, 3, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            system_limit: Timerons::new(90_000.0),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    let mut spec = ShardSpec::new(3);
    spec.routing = routing;
    spec.allocation_interval = SimDuration::from_secs(60);
    cfg.shard = Some(spec);
    cfg.oracle.panic_on_violation = true;
    cfg.resilience.checkpoint_interval = Some(SimDuration::from_secs(20));
    cfg
}

/// Crash shard 1's controller at the first controller event inside the
/// flash-crowd window (rate 1, capped at one firing, window-gated — fully
/// deterministic).
fn crash_shard1_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(0x5AD ^ seed)
        .with_channel("controller.crash@shard1", FaultSpec::rate(1.0).limited(1))
        .with_track(ChaosTrack::windows(
            &["controller.crash@shard1"],
            &[(SimDuration::from_secs(100), SimDuration::from_secs(120))],
        ))
}

#[test]
fn one_shard_crash_mid_flash_crowd_stays_partial_and_recovers() {
    // Partial failure must stay partial under every routing policy: the
    // workload split (and so which queries shard 1 loses in the crash)
    // differs per policy, but the isolation and recovery claims do not.
    for routing in [
        RoutingPolicy::Hash,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::ClassAffinity,
    ] {
        let seed = 1234;
        let healthy = run_experiment(&fleet_config(seed, routing));
        let mut crashed_cfg = fleet_config(seed, routing);
        crashed_cfg.faults = Some(crash_shard1_plan(seed));
        let crashed = run_experiment(&crashed_cfg);

        // Fleet-wide oracle stays green (panic_on_violation would have
        // aborted already; the explicit check guards against silent
        // disablement).
        let oracle = crashed.oracle.as_ref().expect("oracle enabled");
        assert_eq!(
            oracle.stats.violations, 0,
            "{routing:?}: fleet oracle must stay green"
        );
        assert!(
            oracle.stats.checks_run > 0,
            "{routing:?}: fleet oracle must have run"
        );

        let fleet = crashed.report.shards.as_ref().expect("fleet report");
        let healthy_fleet = healthy.report.shards.as_ref().expect("fleet report");
        assert_eq!(fleet.rows.len(), 3);

        // The crash stayed on shard 1…
        assert_eq!(
            fleet.rows[1].crashes, 1,
            "{routing:?}: shard 1 crashed exactly once"
        );
        for k in [0usize, 2] {
            assert_eq!(
                fleet.rows[k].crashes, 0,
                "{routing:?}: shard {k} must not see shard 1's crash"
            );
        }
        // …and the fault ledger names the shard explicitly.
        assert_eq!(
            crashed.fault_counts.get("controller.crash@shard1"),
            Some(&1),
            "{routing:?}: fault counts carry per-shard channel names: {:?}",
            crashed.fault_counts
        );

        // The crashed shard reconverged: finite per-shard MTTR against its
        // own crash-free reference twin.
        let mttr = fleet.rows[1]
            .max_mttr_secs
            .expect("crashed shard reports a finite MTTR");
        assert!(
            mttr.is_finite() && mttr > 0.0,
            "{routing:?}: MTTR must be a positive finite duration, got {mttr}"
        );

        // Surviving shards keep their SLOs: attainment matches the
        // crash-free fleet run on the same seed (the global allocator may
        // shuffle budget in response to the crash, so allow at most one
        // (period, class) cell of drift out of the nine each shard scores).
        let one_cell = 1.0 / 9.0 + 1e-9;
        for k in [0usize, 2] {
            assert!(
                fleet.rows[k].slo_attainment >= healthy_fleet.rows[k].slo_attainment - one_cell,
                "{routing:?}: shard {k}: SLO attainment {:.3} dropped more than one \
                 cell below the crash-free fleet's {:.3}",
                fleet.rows[k].slo_attainment,
                healthy_fleet.rows[k].slo_attainment
            );
        }

        // The merged resilience ledger carries shard 1's crash.
        let res = crashed
            .report
            .resilience
            .as_ref()
            .expect("resilience report");
        assert_eq!(res.crashes.len(), 1, "{routing:?}");
        assert!(
            res.all_reconverged(),
            "{routing:?}: the fleet's only crash reconverged"
        );
    }
}
