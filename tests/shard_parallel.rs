//! The parallel fleet swarm: the epoch worker pool must be invisible in
//! the results and loud about failures.
//!
//! Claims proven here:
//!
//! 1. **Thread-count bit identity** — across 8 seeds, two routing
//!    policies and a mid-run controller crash, a fleet stepped on 2 or 4
//!    pool workers produces the identical folded flight-recorder digest,
//!    identical per-shard rows and identical allocator counters as the
//!    serial reference (`worker_threads = 1`). Shards are independent DES
//!    instances between allocation barriers and the global allocator runs
//!    single-threaded at the barrier, so worker scheduling can never leak
//!    into the event streams — this swarm pins that argument.
//! 2. **A panicking shard propagates** — a fault-injected panic inside
//!    one shard's engine surfaces on the driver thread as a panic (with
//!    the original payload), instead of deadlocking the epoch barrier or
//!    poisoning the run silently.
//!
//! Wall-clock fields (`AllocatorStats::poll_ns`) are nulled via
//! `normalized()` before comparison, the same convention as the transport
//! ledger's wall-clock nulling in the chaos swarms.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::experiments::config::{
    ControllerSpec, ExperimentConfig, RoutingPolicy, ShardSpec,
};
use query_scheduler::experiments::world::{run_experiment, RunOutput};
use query_scheduler::sim::{ChaosTrack, FaultPlan, FaultSpec, SimDuration};
use query_scheduler::workload::Schedule;

/// Three classes over three 90 s periods of shifting load on a
/// four-backend fleet — small enough that the swarm stays fast, busy
/// enough that plans move and the global allocator genuinely re-balances.
fn fleet_config(seed: u64, routing: RoutingPolicy, worker_threads: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![4, 4, 20], vec![3, 6, 30], vec![6, 3, 24]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    let mut spec = ShardSpec::new(4);
    // A barrier cadence deliberately misaligned with the 30 s control
    // interval, so segmented run_until is exercised mid-plan.
    spec.allocation_interval = SimDuration::from_secs(45);
    spec.routing = routing;
    spec.worker_threads = worker_threads;
    cfg.shard = Some(spec);
    cfg.oracle.panic_on_violation = true;
    cfg.resilience.measure_mttr = false;
    cfg
}

/// Crash shard 1's controller once inside a fixed window (rate 1, capped
/// at one firing, window-gated — fully deterministic), so the identity
/// claim covers crash, restart and post-crash re-allocation.
fn crash_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(0x9A11E7 ^ seed)
        .with_channel("controller.crash@shard1", FaultSpec::rate(1.0).limited(1))
        .with_track(ChaosTrack::windows(
            &["controller.crash@shard1"],
            &[(SimDuration::from_secs(100), SimDuration::from_secs(130))],
        ))
}

fn digest(out: &RunOutput) -> u64 {
    out.oracle
        .as_ref()
        .expect("oracle enabled in swarm configs")
        .recorder_digest
}

#[test]
fn fleet_results_are_bit_identical_across_worker_thread_counts() {
    for seed in 0..8u64 {
        for routing in [RoutingPolicy::Hash, RoutingPolicy::LeastLoaded] {
            let mut serial_cfg = fleet_config(seed, routing, 1);
            serial_cfg.faults = Some(crash_plan(seed));
            let serial = run_experiment(&serial_cfg);
            let serial_fleet = serial.report.shards.as_ref().expect("fleet report");
            assert_eq!(
                serial_fleet.rows[1].crashes, 1,
                "seed {seed} {routing:?}: the crash schedule must fire on shard 1"
            );

            for threads in [2usize, 4] {
                let mut cfg = fleet_config(seed, routing, threads);
                cfg.faults = Some(crash_plan(seed));
                let parallel = run_experiment(&cfg);

                assert_eq!(
                    digest(&serial),
                    digest(&parallel),
                    "seed {seed} {routing:?} threads {threads}: merged digest diverged"
                );
                assert_eq!(
                    serial.summary, parallel.summary,
                    "seed {seed} {routing:?} threads {threads}: engine summary diverged"
                );
                assert_eq!(
                    serial.fault_counts, parallel.fault_counts,
                    "seed {seed} {routing:?} threads {threads}: fault ledger diverged"
                );
                let fleet = parallel.report.shards.as_ref().expect("fleet report");
                assert_eq!(
                    serial_fleet.rows, fleet.rows,
                    "seed {seed} {routing:?} threads {threads}: per-shard rows diverged"
                );
                // poll_ns is host wall-clock, nulled before comparison;
                // every deterministic counter must match exactly.
                assert_eq!(
                    serial_fleet.allocator.normalized(),
                    fleet.allocator.normalized(),
                    "seed {seed} {routing:?} threads {threads}: allocator counters diverged"
                );
            }
        }
    }
}

#[test]
fn panicking_shard_propagates_instead_of_deadlocking_the_pool() {
    let mut cfg = fleet_config(7, RoutingPolicy::Hash, 2);
    // The test-only `test.panic` channel panics inside the shard engine's
    // event loop — on a pool worker thread, not the driver.
    cfg.faults = Some(
        FaultPlan::new(0xDEAD).with_channel("test.panic@shard2", FaultSpec::rate(1.0).limited(1)),
    );
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_experiment(&cfg)));
    let payload = caught.expect_err("the shard panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("test.panic"),
        "the original payload must survive the pool hand-off, got {msg:?}"
    );
}
