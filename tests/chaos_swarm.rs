//! The chaos swarm: crash–restart resilience across a seed × crash-schedule
//! matrix — the acceptance bar for controller checkpoint/restore and
//! Patroller reconciliation.
//!
//! Claims proven here:
//!
//! 1. **Recovery under fire** — across ≥ 24 seed × crash-schedule
//!    combinations (single crashes, double crashes, crashes correlated with
//!    release loss and controller stalls, Markov crash bursts) every run
//!    keeps the full invariant-oracle set green and reconverges to the
//!    crash-free reference trajectory with a finite MTTR.
//! 2. **Crashes are deterministic** — a fixed-time crash schedule produces
//!    a bit-identical run every time (flight-recorder digests are equal).
//! 3. **Cold restarts orphan nothing** — with checkpointing disabled, a
//!    crash degrades the controller to the baseline plan, every blocked
//!    query is re-adopted through normal admission, and the run still
//!    reconverges.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::core::transport::{TransportConfig, TransportMode};
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::figures::run_parallel;
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::{ChaosTrack, FaultPlan, FaultSpec, SimDuration};
use query_scheduler::workload::Schedule;

/// The oracle-swarm rig plus a checkpoint cadence: three classes under the
/// Query Scheduler over three periods of shifting load, checkpointing the
/// controller's durable state every 20 virtual seconds. Releases ride the
/// sim transport (fault-rate zero unless a plan says otherwise — bit-
/// identical to the inline channel, proven by `tests/transport_swarm.rs` —
/// so every crash combo also exercises the epoch fence for free).
fn chaos_config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            transport: TransportConfig {
                mode: TransportMode::Sim,
                ..TransportConfig::default()
            },
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: Some(1),
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    cfg.resilience.checkpoint_interval = Some(SimDuration::from_secs(20));
    cfg
}

/// A crash channel that fires at the first controller event inside each of
/// the given windows: rate 1.0, capped at `limit` firings, window-gated.
/// Controller events arrive every 10 s (snapshot ticks), so the crash time
/// is pinned to the first tick in each window — fully deterministic.
fn crash_in_windows(plan: FaultPlan, windows: &[(u64, u64)], limit: u64) -> FaultPlan {
    let spans: Vec<(SimDuration, SimDuration)> = windows
        .iter()
        .map(|&(a, b)| (SimDuration::from_secs(a), SimDuration::from_secs(b)))
        .collect();
    plan.with_channel("controller.crash", FaultSpec::rate(1.0).limited(limit))
        .with_track(ChaosTrack::windows(&["controller.crash"], &spans))
}

/// The crash-schedule matrix: every entry fires at least one crash. The
/// fault seed mixes in the experiment seed so Markov burst schedules (and
/// loss streams) differ across the swarm's seeds, not only its plans.
fn crash_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "late-single",
            crash_in_windows(FaultPlan::new(31 ^ seed), &[(100, 110)], 1),
        ),
        (
            "early-single",
            crash_in_windows(FaultPlan::new(32 ^ seed), &[(40, 50)], 1),
        ),
        (
            "double",
            crash_in_windows(FaultPlan::new(33 ^ seed), &[(80, 90), (180, 190)], 2),
        ),
        (
            "crash+release.drop",
            crash_in_windows(FaultPlan::new(34 ^ seed), &[(95, 105)], 1)
                .channel("release.drop", 0.3),
        ),
        (
            "crash+ctrl.stall",
            crash_in_windows(FaultPlan::new(35 ^ seed), &[(130, 140)], 1).with_channel(
                "ctrl.stall",
                FaultSpec::rate(0.2).with_delay(SimDuration::from_secs(2)),
            ),
        ),
        (
            // A wide always-on window guarantees the burst combo crashes
            // even under an unlucky Markov draw: the burst track opens and
            // closes the gate repeatedly, and the window track keeps the
            // channel eligible whenever *either* track is open.
            "burst",
            FaultPlan::new(36 ^ seed)
                .with_channel("controller.crash", FaultSpec::rate(1.0).limited(2))
                .with_track(ChaosTrack::bursts(
                    &["controller.crash"],
                    SimDuration::from_secs(10),
                    SimDuration::from_secs(45),
                ))
                .with_track(ChaosTrack::windows(
                    &["controller.crash"],
                    &[(SimDuration::from_secs(200), SimDuration::from_secs(215))],
                )),
        ),
    ]
}

#[test]
fn chaos_swarm_reconverges_with_zero_violations() {
    // 4 seeds × 6 crash schedules = 24 combinations, oracle at every event
    // boundary with panic-on-violation: any invariant breach anywhere in
    // the matrix aborts the test.
    let mut configs = Vec::new();
    let mut labels = Vec::new();
    for seed in [11, 42, 1007, 65_535] {
        for (label, plan) in crash_plans(seed) {
            let mut cfg = chaos_config(seed);
            cfg.faults = Some(plan);
            configs.push(cfg);
            labels.push(format!("seed {seed} / {label}"));
        }
    }
    assert!(
        configs.len() >= 24,
        "the swarm must cover at least 24 combos"
    );
    let outs = run_parallel(configs);

    let mut crashes_total = 0usize;
    let mut aggregate = Vec::new();
    for (out, label) in outs.iter().zip(&labels) {
        let oracle = out
            .oracle
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: oracle must observe the run"));
        assert_eq!(oracle.stats.violations, 0, "{label}: oracle violations");
        assert!(!oracle.halted, "{label}: run must not halt");
        assert_ne!(oracle.recorder_digest, 0, "{label}: recorder digest");

        let res = out
            .report
            .resilience
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: at least one crash must fire"));
        assert!(!res.crashes.is_empty(), "{label}: crash count");
        assert!(
            res.all_reconverged(),
            "{label}: every crash must reconverge; crashes: {:?}",
            res.crashes
        );
        let mttr = res.max_mttr_secs().expect("reconverged => finite MTTR");
        assert!(mttr.is_finite() && mttr >= 0.0, "{label}: MTTR {mttr}");
        assert!(res.checkpoints_taken > 0, "{label}: checkpoints must run");
        for c in &res.crashes {
            // Warm restarts restore a checkpoint; requeued splits cleanly.
            assert_eq!(c.requeued, c.recovered + c.adopted + c.lost_releases);
        }
        assert!(out.summary.oltp_completed > 0, "{label}: OLTP must flow");
        crashes_total += res.crashes.len();
        aggregate.push(serde_json::json!({
            "combo": label,
            "crashes": res.crashes,
            "checkpoints": res.checkpoints_taken,
            "max_mttr_secs": res.max_mttr_secs(),
            "recorder_digest": format!("{:016x}", oracle.recorder_digest),
        }));
    }
    assert!(
        crashes_total >= labels.len(),
        "every combo must crash at least once (got {crashes_total})"
    );

    // Leave an aggregate artifact for the CI chaos-soak job to upload.
    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create target/chaos");
    std::fs::write(
        dir.join("chaos-swarm.json"),
        serde_json::to_string_pretty(&serde_json::json!({
            "schema": "qsched-chaos-swarm-v1",
            "combos": aggregate,
        }))
        .unwrap(),
    )
    .expect("write chaos aggregate");
}

#[test]
fn fixed_crash_schedules_replay_bit_identically() {
    // Determinism claim: the same crash schedule, run twice, produces the
    // same flight-recorder digest, the same recovery ledger, and the same
    // report — crashes are events in virtual time, not wall-clock luck.
    for (label, plan) in crash_plans(4242).into_iter().take(3) {
        let mut cfg = chaos_config(4242);
        cfg.faults = Some(plan);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(
            a.oracle.as_ref().map(|o| o.recorder_digest),
            b.oracle.as_ref().map(|o| o.recorder_digest),
            "{label}: digests must match"
        );
        assert_eq!(
            serde_json::to_string(&a.report.resilience).unwrap(),
            serde_json::to_string(&b.report.resilience).unwrap(),
            "{label}: recovery ledgers must match"
        );
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap(),
            "{label}: reports must match"
        );
    }
}

#[test]
fn partition_spanning_crash_fences_stale_envelopes_and_recovers() {
    // The nastiest transport × crash interleaving: a 30-second delay window
    // holds every pre-crash release envelope in the network while the
    // controller crashes and restarts, and a total-loss window spans the
    // crash itself. The delayed envelopes arrive *after* the restart
    // carrying the dead incarnation's epoch — the receiver's fence must
    // reject every one of them (a ghost release applied behind the new
    // controller's back is exactly the double-effect the protocol exists to
    // prevent), and the run must still reconverge with a finite MTTR.
    let plan = crash_in_windows(FaultPlan::new(7), &[(100, 110)], 1)
        .with_channel(
            "transport.delay",
            FaultSpec::rate(1.0).with_delay(SimDuration::from_secs(30)),
        )
        .with_track(ChaosTrack::windows(
            &["transport.delay"],
            &[(SimDuration::from_secs(80), SimDuration::from_secs(100))],
        ))
        .channel("transport.drop", 1.0)
        .with_track(ChaosTrack::windows(
            &["transport.drop"],
            &[(SimDuration::from_secs(95), SimDuration::from_secs(105))],
        ));
    let mut cfg = chaos_config(4711);
    cfg.faults = Some(plan);
    let out = run_experiment(&cfg);

    let oracle = out.oracle.as_ref().expect("oracle observes the run");
    assert_eq!(oracle.stats.violations, 0, "no ghost releases, no orphans");
    assert!(!oracle.halted);

    let res = out.report.resilience.as_ref().expect("the crash fired");
    assert_eq!(res.crashes.len(), 1);
    assert!(res.all_reconverged(), "crashes: {:?}", res.crashes);
    assert!(res.max_mttr_secs().expect("finite MTTR").is_finite());

    let ledger = out.report.transport.as_ref().expect("sim-transport ledger");
    assert!(
        ledger.receiver.stale_rejected > 0,
        "delayed pre-crash envelopes must be fenced out as stale: {:?}",
        ledger.receiver
    );
    assert_eq!(ledger.receiver.double_applied, 0);
    assert_eq!(ledger.partitions.len(), 2, "both windows scored");
    assert!(
        ledger.all_recovered(),
        "the pipeline must flow again after each window: {:?}",
        ledger.partitions
    );
    assert!(out.summary.olap_completed > 0);
    assert!(out.summary.oltp_completed > 0);
}

#[test]
fn cold_restart_degrades_to_baseline_and_orphans_nothing() {
    // No checkpointing at all: the crash wipes everything the controller
    // knew. The restart must fall back to the baseline plan (degraded cold
    // mode), adopt every blocked query from the Patroller's control table,
    // and still reconverge — with the oracle proving at every event
    // boundary that no held query is ever outside the controller's books.
    let mut cfg = chaos_config(77);
    cfg.resilience.checkpoint_interval = None;
    cfg.faults = Some(crash_in_windows(FaultPlan::new(99), &[(100, 110)], 1));
    let out = run_experiment(&cfg);

    let oracle = out.oracle.as_ref().expect("oracle observes the run");
    assert_eq!(oracle.stats.violations, 0, "no orphaned bookkeeping");

    let res = out.report.resilience.as_ref().expect("the crash fired");
    assert_eq!(res.checkpoints_taken, 0);
    assert_eq!(res.crashes.len(), 1);
    let c = &res.crashes[0];
    assert!(!c.warm, "no checkpoint => cold restart");
    assert_eq!(c.recovered, 0, "cold restart knows no prior queue");
    assert_eq!(c.lost_releases, 0, "cold restart has no release book");
    assert_eq!(c.requeued, c.adopted, "everything blocked is adopted");
    assert!(
        c.degraded_secs > 0.0,
        "cold restart must enter degraded mode"
    );
    assert!(c.mttr_secs.is_some(), "cold restart must still reconverge");

    // Degraded cold mode shows up in the controller's fallback counters.
    assert!(
        out.degradation.plan_fallbacks > 0,
        "the cold window must hold the baseline plan instead of solving"
    );
    // The crash-free reference completes the same workload; the crashed run
    // keeps flowing too (queries survive the restart).
    assert!(out.summary.olap_completed > 0);
    assert!(out.summary.oltp_completed > 0);
}
