//! The oracle swarm: every invariant, on, across a seed × fault-plan
//! matrix — the acceptance bar for the runtime invariant oracle.
//!
//! Three claims are proven here:
//!
//! 1. **Soundness on healthy and faulty runs** — across ≥ 32 seed ×
//!    fault-plan combinations (including every fault channel at aggressive
//!    rates) the oracle runs its full invariant set at every event boundary
//!    and reports zero violations: the system upholds its own books under
//!    fire, and the invariants produce no false positives.
//! 2. **The oracle is an observer** — an oracle-enabled run is
//!    bit-identical to an oracle-disabled run (reports, summaries, plans).
//! 3. **It catches real bugs, reproducibly** — a deliberately broken
//!    accounting path (the test-only `test.mpl_leak` channel, which skips
//!    the MPL gauge decrement on completion) trips the oracle, halts the
//!    run, dumps a self-contained replay artifact, and replaying that
//!    artifact reproduces the violation from the seed alone.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::figures::run_parallel;
use query_scheduler::experiments::oracle::{
    config_digest, load_artifact, replay_artifact, OracleSettings, ReplayArtifact,
};
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::{FaultPlan, FaultSpec, SimDuration};
use query_scheduler::workload::Schedule;

/// A small but non-trivial end-to-end rig: the paper's three classes under
/// the Query Scheduler over three periods of shifting load.
fn swarm_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: Some(1),
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    }
}

/// The fault-plan matrix: healthy, every channel alone at an aggressive
/// rate, and everything at once.
fn fault_plans() -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("healthy", None),
        (
            "snapshot.drop",
            Some(FaultPlan::new(1).channel("snapshot.drop", 0.7)),
        ),
        (
            "cost.corrupt",
            Some(FaultPlan::new(2).channel("cost.corrupt", 0.5)),
        ),
        (
            "solver.fail",
            Some(FaultPlan::new(3).channel("solver.fail", 0.5)),
        ),
        (
            "release.drop",
            Some(FaultPlan::new(4).channel("release.drop", 0.4)),
        ),
        (
            "release.delay",
            Some(FaultPlan::new(5).with_channel(
                "release.delay",
                FaultSpec::rate(0.4).with_delay(SimDuration::from_secs(2)),
            )),
        ),
        (
            "ctrl.stall",
            Some(FaultPlan::new(6).with_channel(
                "ctrl.stall",
                FaultSpec::rate(0.25).with_delay(SimDuration::from_secs(3)),
            )),
        ),
        (
            "everything",
            Some(
                FaultPlan::new(7)
                    .channel("snapshot.drop", 0.3)
                    .channel("cost.corrupt", 0.3)
                    .channel("solver.fail", 0.3)
                    .channel("release.drop", 0.2)
                    .with_channel(
                        "release.delay",
                        FaultSpec::rate(0.2).with_delay(SimDuration::from_secs(1)),
                    )
                    .with_channel(
                        "ctrl.stall",
                        FaultSpec::rate(0.1).with_delay(SimDuration::from_secs(2)),
                    ),
            ),
        ),
    ]
}

#[test]
fn swarm_runs_every_invariant_with_zero_violations() {
    // 4 seeds × 8 fault plans = 32 combinations, all with the oracle at
    // check_every = 1 (every event boundary) and panic-on-violation: a
    // single invariant breach anywhere in the matrix aborts the test.
    let mut configs = Vec::new();
    let mut labels = Vec::new();
    for seed in [11, 42, 1007, 65_535] {
        for (label, plan) in fault_plans() {
            let mut cfg = swarm_config(seed);
            cfg.faults = plan;
            configs.push(cfg);
            labels.push(format!("seed {seed} / {label}"));
        }
    }
    assert!(
        configs.len() >= 32,
        "the swarm must cover at least 32 combos"
    );
    let outs = run_parallel(configs);
    for (out, label) in outs.iter().zip(&labels) {
        let oracle = out
            .oracle
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: oracle must observe the run"));
        assert_eq!(oracle.stats.violations, 0, "{label}: oracle violations");
        assert!(!oracle.halted, "{label}: run must not halt");
        assert!(oracle.stats.invariants >= 5, "{label}: full invariant set");
        assert!(
            oracle.stats.checks_run >= oracle.stats.events_observed,
            "{label}: every boundary must be checked (check_every = 1)"
        );
        assert!(oracle.events_recorded > 0, "{label}: recorder must be live");
        assert_eq!(
            out.report.oracle.map(|s| s.violations),
            Some(0),
            "{label}: report must surface oracle stats"
        );
        assert!(out.summary.oltp_completed > 0, "{label}: OLTP must flow");
    }
}

#[test]
fn swarm_holds_under_strided_checks_too() {
    // A strided oracle (check_every = 7, sparser deep audits) sees the same
    // clean runs — the invariants hold at arbitrary boundaries, not only at
    // the ones the default stride happens to sample.
    let mut configs = Vec::new();
    for seed in [5, 99] {
        for (_, plan) in fault_plans() {
            let mut cfg = swarm_config(seed);
            cfg.faults = plan;
            cfg.oracle.check_every = 7;
            cfg.oracle.deep_every = 11;
            configs.push(cfg);
        }
    }
    for (i, out) in run_parallel(configs).into_iter().enumerate() {
        let oracle = out.oracle.expect("oracle must observe the run");
        assert_eq!(oracle.stats.violations, 0, "combo #{i} violated");
    }
}

#[test]
fn oracle_is_a_pure_observer() {
    // Metamorphic: enabling the oracle must not change a single bit of the
    // run's results — it reads, it never writes, it consumes no randomness.
    let on = run_experiment(&swarm_config(4242));
    let mut cfg = swarm_config(4242);
    cfg.oracle = OracleSettings::disabled();
    let off = run_experiment(&cfg);

    assert!(on.oracle.is_some() && off.oracle.is_none());
    assert_eq!(on.summary, off.summary, "summaries must be bit-identical");
    let mut on_report = on.report.clone();
    on_report.oracle = None; // the only permitted difference
    assert_eq!(
        serde_json::to_string(&on_report).unwrap(),
        serde_json::to_string(&off.report).unwrap(),
        "reports must be bit-identical"
    );
    assert_eq!(
        format!("{:?}", on.plan_log),
        format!("{:?}", off.plan_log),
        "plans must be bit-identical"
    );
}

#[test]
fn broken_accounting_trips_the_oracle_and_replays_from_seed_alone() {
    // The deliberately-broken path: `test.mpl_leak` makes `Dbms::complete`
    // skip the MPL gauge decrement, so the gauge drifts away from the true
    // executing count — exactly the class of silent accounting bug the
    // oracle exists to catch.
    let dump_dir = "target/oracle-swarm-test";
    let _ = std::fs::remove_dir_all(dump_dir);

    let mut cfg = swarm_config(7);
    cfg.faults = Some(FaultPlan::new(70).channel("test.mpl_leak", 1.0));
    cfg.oracle = OracleSettings {
        panic_on_violation: false,
        dump_dir: Some(dump_dir.to_string()),
        ..OracleSettings::default()
    };

    let out = run_experiment(&cfg);
    let oracle = out.oracle.as_ref().expect("oracle must observe the run");
    assert!(oracle.stats.violations > 0, "the leak must trip the oracle");
    assert!(oracle.halted, "the engine must halt on the violation");
    let first = &oracle.violations[0];
    assert_eq!(
        first.invariant, "metric-sanity",
        "the MPL gauge check fires"
    );

    // The run dumped a self-contained replay artifact at a deterministic
    // path derived from the seed and the config digest.
    let path = std::path::Path::new(dump_dir).join(format!(
        "replay-seed{}-{:016x}.json",
        cfg.seed,
        config_digest(&cfg)
    ));
    let artifact = load_artifact(&path).expect("artifact must exist and parse");
    assert_eq!(artifact.seed, cfg.seed);
    assert_eq!(artifact.config, cfg, "the artifact embeds the full config");
    assert_eq!(artifact.violations, oracle.violations);
    assert!(
        !artifact.event_tail.is_empty(),
        "the recorder tail is attached"
    );

    // Replaying the artifact re-runs the embedded config — nothing else —
    // and must land on the same violation at the same event index and time.
    let outcome = replay_artifact(&artifact);
    assert!(
        outcome.reproduced,
        "the violation must reproduce from seed alone"
    );
    let replay = outcome.report.expect("replay runs with the oracle on");
    assert_eq!(replay.violations[0], artifact.violations[0]);
    // The artifact carries the violating run's digest, and the replay's
    // whole event stream matches it bit-for-bit.
    assert_eq!(artifact.recorder_digest, Some(oracle.recorder_digest));
    assert_eq!(outcome.digest_match, Some(true), "replay digest must match");

    // And the artifact round-trips losslessly through construction.
    let rebuilt = ReplayArtifact::new(
        &cfg,
        artifact.violations.clone(),
        artifact.event_tail.clone(),
        artifact.delivered,
        artifact.recorder_digest,
    );
    assert_eq!(rebuilt.file_name(), artifact.file_name());

    let _ = std::fs::remove_dir_all(dump_dir);
}
