//! The transport swarm: exactly-once release semantics over an unreliable
//! control-plane channel — the acceptance bar for the sim transport and the
//! idempotent release protocol.
//!
//! Claims proven here:
//!
//! 1. **The boundary is free** — with every transport fault rate at zero,
//!    a run over the sim transport is bit-identical to the same run over
//!    the inline (direct-call) transport: same flight-recorder digest, same
//!    report, same plans. The message-passing refactor costs nothing.
//! 2. **Exactly-once under fire** — across ≥ 24 seed × fault-plan
//!    combinations (loss, delay, duplication, reordering, partition
//!    windows, and mixtures) the oracle's exactly-once invariant holds at
//!    every event boundary: no release applied twice, no completion
//!    double-counted, every envelope accounted for.
//! 3. **Partitions heal** — every scored partition window recovers in
//!    finite virtual time once the window closes.
//! 4. **Faulted channels are deterministic** — a faulted transport run
//!    replays bit-identically.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::core::transport::{TransportConfig, TransportMode};
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::figures::run_parallel;
use query_scheduler::experiments::world::{run_experiment, RunOutput};
use query_scheduler::sim::{ChaosTrack, FaultPlan, FaultSpec, SimDuration};
use query_scheduler::workload::Schedule;

/// The oracle-swarm rig: three classes under the Query Scheduler over three
/// periods of shifting load, releases carried by the given transport.
fn swarm_config(seed: u64, mode: TransportMode) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            transport: TransportConfig {
                mode,
                ..TransportConfig::default()
            },
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: Some(1),
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    }
}

/// Everything observable about a run, flattened to comparable strings. The
/// transport ledger is the one *intended* difference between inline and
/// sim-transport reports, so the caller nulls it before fingerprinting.
fn fingerprint(out: &RunOutput) -> (u64, u64, String, String, String) {
    let oracle = out.oracle.as_ref().expect("oracle observes these runs");
    (
        oracle.recorder_digest,
        oracle.events_recorded,
        serde_json::to_string(&out.report).unwrap(),
        format!("{:?}", out.summary),
        format!("{:?}", out.plan_log),
    )
}

#[test]
fn zero_rate_sim_transport_is_bit_identical_to_inline() {
    // Metamorphic claim: routing releases through the transport boundary
    // with no faults configured changes no observable bit. 16 seeds.
    for seed in 0..16u64 {
        let inline = run_experiment(&swarm_config(seed, TransportMode::Inline));
        let mut sim = run_experiment(&swarm_config(seed, TransportMode::Sim));

        // The sim run carries a ledger the inline run cannot have; it must
        // describe a perfectly healthy channel.
        let ledger = sim.report.transport.take().expect("sim run has a ledger");
        assert!(inline.report.transport.is_none(), "inline has no ledger");
        assert_eq!(ledger.sender.dropped, 0, "seed {seed}: nothing dropped");
        assert_eq!(ledger.sender.retries, 0, "seed {seed}: nothing retried");
        assert_eq!(ledger.in_flight_at_end, 0, "seed {seed}: channel drained");
        assert_eq!(
            ledger.receiver.received,
            ledger.receiver.applied + ledger.receiver.admitted_noop,
            "seed {seed}: healthy receiver book"
        );
        assert_eq!(ledger.release_latency_max_secs, 0.0, "seed {seed}: sync");

        assert_eq!(
            fingerprint(&inline),
            fingerprint(&sim),
            "seed {seed}: zero-rate sim transport diverged from inline"
        );
    }
}

/// The transport fault-plan matrix. The fault seed mixes in the experiment
/// seed so loss/delay/dup streams differ across the swarm's seeds, not only
/// its plans.
fn transport_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop",
            FaultPlan::new(61 ^ seed).channel("transport.drop", 0.3),
        ),
        (
            "delay",
            FaultPlan::new(62 ^ seed).with_channel(
                "transport.delay",
                FaultSpec::rate(0.4).with_delay(SimDuration::from_secs(3)),
            ),
        ),
        (
            "dup",
            FaultPlan::new(63 ^ seed).channel("transport.dup", 0.4),
        ),
        (
            "reorder",
            FaultPlan::new(64 ^ seed).with_channel(
                "transport.reorder",
                FaultSpec::rate(0.3).with_delay(SimDuration::from_secs(1)),
            ),
        ),
        (
            // Total loss inside two fixed windows — the partition the
            // ledger scores for recovery time.
            "partition",
            FaultPlan::new(65 ^ seed)
                .channel("transport.drop", 1.0)
                .with_track(ChaosTrack::windows(
                    &["transport.drop"],
                    &[
                        (SimDuration::from_secs(60), SimDuration::from_secs(75)),
                        (SimDuration::from_secs(150), SimDuration::from_secs(160)),
                    ],
                )),
        ),
        (
            "mixed",
            FaultPlan::new(66 ^ seed)
                .channel("transport.drop", 0.15)
                .with_channel(
                    "transport.delay",
                    FaultSpec::rate(0.2).with_delay(SimDuration::from_secs(2)),
                )
                .channel("transport.dup", 0.2)
                .with_channel(
                    "transport.reorder",
                    FaultSpec::rate(0.1).with_delay(SimDuration::from_millis(500)),
                ),
        ),
    ]
}

#[test]
fn faulted_transport_swarm_keeps_exactly_once() {
    // 4 seeds × 6 fault plans = 24 combinations, oracle at every event
    // boundary with panic-on-violation: any double release, double-counted
    // completion, or unaccounted envelope anywhere in the matrix aborts.
    let mut configs = Vec::new();
    let mut labels = Vec::new();
    for seed in [11, 42, 1007, 65_535] {
        for (label, plan) in transport_plans(seed) {
            let mut cfg = swarm_config(seed, TransportMode::Sim);
            cfg.faults = Some(plan);
            configs.push(cfg);
            labels.push((format!("seed {seed} / {label}"), label));
        }
    }
    assert!(
        configs.len() >= 24,
        "the swarm must cover at least 24 combos"
    );
    let outs = run_parallel(configs);

    let mut aggregate = Vec::new();
    for (out, (label, kind)) in outs.iter().zip(&labels) {
        let oracle = out
            .oracle
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: oracle must observe the run"));
        assert_eq!(oracle.stats.violations, 0, "{label}: oracle violations");
        assert!(!oracle.halted, "{label}: run must not halt");

        let ledger = out
            .report
            .transport
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: sim transport must report a ledger"));
        let (tx, rx) = (&ledger.sender, &ledger.receiver);
        // Exactly-once accounting, restated from the ledger itself.
        assert_eq!(rx.double_applied, 0, "{label}: a release applied twice");
        assert_eq!(
            rx.applied + rx.admitted_noop + rx.deduped + rx.stale_rejected,
            rx.received,
            "{label}: receiver buckets must sum to received"
        );
        // Nothing arrives that was never sent: deliveries are bounded by
        // sends plus duplicated clones.
        assert!(
            rx.received <= tx.sent + tx.duplicated,
            "{label}: {} received > {} sent + {} duplicated",
            rx.received,
            tx.sent,
            tx.duplicated
        );
        // No release is permanently lost on a live channel: every window
        // the plan partitioned has a finite recovery, and both workloads
        // keep completing through the faults.
        assert!(ledger.all_recovered(), "{label}: {:?}", ledger.partitions);
        assert!(out.summary.olap_completed > 0, "{label}: OLAP must flow");
        assert!(out.summary.oltp_completed > 0, "{label}: OLTP must flow");

        // Per-plan sanity: the configured fault actually bit.
        match *kind {
            "drop" | "mixed" => {
                assert!(tx.dropped > 0, "{label}: drops must fire");
                assert!(tx.retries > 0, "{label}: drops must force retries");
            }
            "delay" => {
                assert!(tx.delayed > 0, "{label}: delays must fire");
                assert!(
                    ledger.release_latency_max_secs > 0.0,
                    "{label}: delay must inflate release latency"
                );
            }
            "dup" => {
                assert!(tx.duplicated > 0, "{label}: dups must fire");
                assert!(rx.deduped > 0, "{label}: clones must be suppressed");
            }
            "reorder" => {
                assert!(tx.reordered > 0, "{label}: reorders must fire");
            }
            "partition" => {
                assert_eq!(ledger.partitions.len(), 2, "{label}: two windows");
                assert!(
                    ledger.partitions.iter().any(|p| p.drops_in_window > 0),
                    "{label}: a total partition must swallow releases"
                );
            }
            _ => unreachable!("unknown plan kind"),
        }
        aggregate.push(serde_json::json!({
            "combo": label,
            "sender": tx,
            "receiver": rx,
            "in_flight_at_end": ledger.in_flight_at_end,
            "release_latency_mean_secs": ledger.release_latency_mean_secs,
            "release_latency_max_secs": ledger.release_latency_max_secs,
            "partitions": ledger.partitions,
            "recorder_digest": format!("{:016x}", oracle.recorder_digest),
        }));
    }

    // Leave an aggregate artifact for the CI transport-chaos job to upload.
    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create target/chaos");
    std::fs::write(
        dir.join("transport-swarm.json"),
        serde_json::to_string_pretty(&serde_json::json!({
            "schema": "qsched-transport-swarm-v1",
            "combos": aggregate,
        }))
        .unwrap(),
    )
    .expect("write transport aggregate");
}

#[test]
fn faulted_transport_runs_replay_bit_identically() {
    // Determinism claim: the same fault plan, run twice, produces the same
    // digest, ledger, and report — transport faults are events in virtual
    // time, not wall-clock luck.
    for (label, plan) in transport_plans(4242).into_iter().take(2) {
        let mut cfg = swarm_config(4242, TransportMode::Sim);
        cfg.faults = Some(plan);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{label}: faulted transport runs must replay bit-identically"
        );
        assert_eq!(
            a.report.transport, b.report.transport,
            "{label}: ledgers must match"
        );
    }
}
