//! Scenario-scoreboard determinism swarm and regression-gate tests.
//!
//! The scoreboard is the repo's cross-regime regression gate, so it must
//! itself be trustworthy: every scenario bit-identical across worker counts
//! and repeated runs (same digests, same metrics), zero oracle violations
//! anywhere, and the tolerance gate must actually fire when a metric is
//! perturbed beyond tolerance.

use qsched_experiments::scenarios::{compare, run_scoreboard, ScenarioRow, Tolerances};

const SEED: u64 = 0xb0a2d;

/// Every scenario must produce a bit-identical flight-recorder digest (and
/// identical metrics) regardless of worker count and across repeated runs,
/// and every run must be violation-free.
#[test]
fn scoreboard_is_deterministic_across_worker_counts_and_reruns() {
    let serial = run_scoreboard(SEED, 1);
    let parallel = run_scoreboard(SEED, 3);
    let again = run_scoreboard(SEED, 1);

    assert!(serial.len() >= 8, "registry shrank below 8 scenarios");
    for ((a, b), c) in serial.iter().zip(&parallel).zip(&again) {
        assert_eq!(
            a.normalized(),
            b.normalized(),
            "{}: 1-worker and 3-worker runs diverged",
            a.scenario
        );
        assert_eq!(
            a.normalized(),
            c.normalized(),
            "{}: repeated runs diverged",
            a.scenario
        );
        assert_ne!(
            a.recorder_digest, "0000000000000000",
            "{}: oracle digest missing",
            a.scenario
        );
        assert!(
            a.violation_free,
            "{}: {} oracle violation(s)",
            a.scenario, a.oracle_violations
        );
    }

    // Scenarios are genuinely distinct runs, not copies of one config.
    let mut digests: Vec<&str> = serial.iter().map(|r| r.recorder_digest.as_str()).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), serial.len(), "duplicate scenario digests");

    // The crash scenario reconverged: finite MTTR after its injected crash.
    let crash = serial
        .iter()
        .find(|r| r.crashes > 0)
        .expect("registry includes a crash scenario");
    assert!(
        crash.max_mttr_secs.is_some(),
        "{}: crash never reconverged",
        crash.scenario
    );
}

/// The gate fails when (and only when) a metric is perturbed beyond its
/// tolerance — a self-test of the CI regression gate against a live board.
#[test]
fn injected_regressions_trip_the_baseline_gate() {
    let tol = Tolerances::default();
    let baseline = run_scoreboard(SEED, 2);
    assert!(
        compare(&baseline, &baseline, &tol).is_empty(),
        "a board must pass against itself"
    );

    // Perturb one metric per regression axis, each just beyond tolerance.
    let perturb = |f: &dyn Fn(&mut ScenarioRow)| {
        let mut rows: Vec<ScenarioRow> = baseline.clone();
        f(&mut rows[0]);
        compare(&rows, &baseline, &tol)
    };
    let slo = perturb(&|r| r.slo_attainment -= tol.slo_abs + 0.01);
    assert_eq!(slo.len(), 1, "{slo:?}");
    assert!(slo[0].contains("SLO attainment"), "{slo:?}");

    let util = perturb(&|r| r.utility -= tol.utility_abs + 0.01);
    assert_eq!(util.len(), 1, "{util:?}");

    let done = perturb(&|r| {
        r.oltp_completed = (r.oltp_completed as f64 * (1.0 - tol.completions_rel - 0.02)) as u64;
    });
    assert_eq!(done.len(), 1, "{done:?}");

    let viol = perturb(&|r| {
        r.violation_free = false;
        r.oracle_violations = 2;
    });
    assert_eq!(viol.len(), 1, "{viol:?}");

    // Within-tolerance wiggle stays green.
    let ok = perturb(&|r| {
        r.slo_attainment -= tol.slo_abs / 2.0;
        r.utility -= tol.utility_abs / 2.0;
    });
    assert!(ok.is_empty(), "{ok:?}");

    // Dropping a scenario from the current board fails the gate.
    let dropped: Vec<ScenarioRow> = baseline[1..].to_vec();
    assert_eq!(compare(&dropped, &baseline, &tol).len(), 1);
}

/// The committed baseline stays honest: the live board at the baseline's
/// seed must pass the gate against `SCOREBOARD_baseline.json`, and every
/// baseline scenario must still exist in the registry.
#[test]
fn committed_baseline_matches_the_live_board() {
    let raw = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/SCOREBOARD_baseline.json"
    ))
    .expect("SCOREBOARD_baseline.json is committed at the repo root");
    let baseline: Vec<ScenarioRow> = serde_json::from_str(&raw).expect("baseline parses");
    assert!(baseline.len() >= 8, "baseline shrank below 8 scenarios");

    let current = run_scoreboard(42, 2);
    let problems = compare(&current, &baseline, &Tolerances::default());
    assert!(
        problems.is_empty(),
        "live board regressed against the committed baseline (re-baseline \
         deliberately with `qsched-run scoreboard --out SCOREBOARD_baseline.json` \
         if the change is intended):\n{}",
        problems.join("\n")
    );
}
