//! Integration tests asserting the *shape* of every paper figure
//! (DESIGN.md §4). Absolute numbers are substrate-dependent and not
//! asserted; who wins, by roughly what factor, and where the knees fall are.
//!
//! Runs are scaled down (shorter periods, shorter sweeps) to stay fast in
//! debug builds; the bench harness regenerates the figures at full scale.

use query_scheduler::dbms::query::ClassId;
use query_scheduler::experiments::figures::{
    calibration, fig2, figure_controller, main_config, run_parallel, CalibrationOpts, Fig2Opts,
};
use query_scheduler::experiments::report::RunReport;

const SEED: u64 = 2007;
const SCALE: f64 = 0.05; // 4-minute periods

/// Run Figures 4, 5 and 6 once (in parallel) and hand the three reports to
/// every assertion — the expensive part is shared.
fn main_reports() -> (RunReport, RunReport, RunReport) {
    let configs = vec![
        main_config(SEED, figure_controller(4), SCALE),
        main_config(SEED, figure_controller(5), SCALE),
        main_config(SEED, figure_controller(6), SCALE),
    ];
    let mut outs = run_parallel(configs);
    let fig6 = outs.pop().expect("fig6");
    let fig5 = outs.pop().expect("fig5");
    let fig4 = outs.pop().expect("fig4");
    (fig4.report, fig5.report, fig6.report)
}

#[test]
fn calibration_curve_rises_then_falls_with_knee_near_30k() {
    let curve = calibration(
        SEED,
        &CalibrationOpts {
            limits: vec![5_000.0, 15_000.0, 30_000.0, 45_000.0, 60_000.0],
            clients: 20,
            minutes: 15,
        },
    );
    let t: Vec<f64> = curve.points.iter().map(|p| p.olap_per_hour).collect();
    // Rising into the knee…
    assert!(
        t[1] > t[0] * 1.05,
        "throughput should rise toward the knee: {t:?}"
    );
    assert!(
        t[2] > t[1] * 1.02,
        "throughput should still rise at 30K: {t:?}"
    );
    // …and falling past it (thrashing).
    assert!(
        t[3] < t[2] * 0.95,
        "throughput should fall past the knee: {t:?}"
    );
    assert!(
        t[4] < t[3],
        "throughput keeps falling when oversaturated: {t:?}"
    );
    let knee = curve.knee();
    assert!(
        (15_000.0..=45_000.0).contains(&knee),
        "knee {knee} should be near the paper's 30K"
    );
}

#[test]
fn fig2_oltp_response_is_linear_in_olap_cost_limit() {
    let f2 = fig2(
        SEED,
        &Fig2Opts {
            pairs: vec![(30, 8), (50, 8), (30, 2)],
            limits: vec![4_000.0, 10_000.0, 16_000.0, 22_000.0, 28_000.0],
            minutes_per_period: 4,
        },
    );
    // Series 0 (30 OLTP, 8 OLAP): linear under-saturated with positive slope.
    let (slope, r2) = f2.linear_fit(0, 28_000.0).expect("fit defined");
    assert!(
        slope > 1e-6,
        "OLTP response must grow with the OLAP limit: slope {slope}"
    );
    assert!(
        r2 > 0.9,
        "the under-saturated relation should be near-linear: R² {r2}"
    );
    // More OLTP clients shift the whole line upward.
    for (p30, p50) in f2.series[0].points.iter().zip(&f2.series[1].points) {
        assert!(
            p50.1 > p30.1,
            "50-client line must sit above the 30-client line at {} ({} vs {})",
            p30.0,
            p50.1,
            p30.1
        );
    }
    // Few OLAP clients cap the in-flight cost: the (30,2) line must flatten —
    // its late-sweep growth is small compared to the (30,8) line's.
    let growth = |pts: &[(f64, f64)]| pts.last().unwrap().1 - pts[1].1;
    assert!(
        growth(&f2.series[2].points) < growth(&f2.series[0].points) * 0.6,
        "the 2-OLAP-client series should plateau once client-bound"
    );
}

#[test]
fn figures_4_5_6_reproduce_the_papers_comparison() {
    let (fig4, fig5, fig6) = main_reports();
    let c1 = ClassId(1);
    let c2 = ClassId(2);
    let c3 = ClassId(3);

    // --- Figure 4 (no class control): the OLTP class misses its goal under
    // load, and the OLAP classes are undifferentiated.
    let v4 = fig4.violations(c3);
    assert!(
        v4 >= 6,
        "no-control should violate the OLTP goal often, got {v4}"
    );
    let diff4 = fig4.differentiation_fraction(c2, c1, 1);
    assert!(
        (0.2..=0.8).contains(&diff4),
        "no-control cannot differentiate the OLAP classes: {diff4}"
    );

    // --- Figure 5 (QP priority): strong OLAP differentiation, but the
    // static limit still misses the OLTP goal in the heavy periods.
    let diff5 = fig5.differentiation_fraction(c2, c1, 1);
    assert!(diff5 >= 0.7, "QP priority must favour class 2: {diff5}");
    let v5 = fig5.violated_periods(c3);
    let heavy_missed = [2usize, 5, 8, 11, 14, 17]
        .iter()
        .filter(|p| v5.contains(p))
        .count();
    assert!(
        v5.len() >= 4 && heavy_missed >= 3,
        "QP's static limit must keep missing the OLTP goal in heavy periods \
         (violated: {v5:?}, heavy missed: {heavy_missed})"
    );

    // --- Figure 6 (Query Scheduler): strictly fewer OLTP violations than
    // both baselines, goals met in the light periods, and differentiated
    // OLAP service.
    let v6 = fig6.violations(c3);
    assert!(
        v6 < v4,
        "QS ({v6}) must beat no-control ({v4}) on OLTP violations"
    );
    assert!(
        v6 < fig5.violations(c3),
        "QS must beat QP on OLTP violations"
    );
    let v6p = fig6.violated_periods(c3);
    for light in [0usize, 3, 6, 9, 12, 15] {
        assert!(
            !v6p.contains(&light),
            "QS should meet the OLTP goal in light period {} (violated: {v6p:?})",
            light + 1
        );
    }
    let diff6 = fig6.differentiation_fraction(c2, c1, 1);
    assert!(
        diff6 >= 0.55,
        "QS should favour class 2 in most periods: {diff6}"
    );

    // QS trades OLAP velocity for the OLTP goal: its OLAP classes should be
    // slower than under no control, while completing more OLTP work.
    let mean_velocity = |r: &RunReport, c: ClassId| {
        let vals: Vec<f64> = (0..r.periods.len())
            .filter_map(|p| r.metric(p, c))
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    assert!(mean_velocity(&fig6, c1) < mean_velocity(&fig4, c1) + 0.05);
    assert!(
        fig6.total_completions(c3) > fig4.total_completions(c3),
        "faster OLTP service must complete more closed-loop transactions"
    );
}

#[test]
fn fig7_plans_always_sum_to_the_system_limit() {
    let out = query_scheduler::experiments::world::run_experiment(&main_config(
        SEED,
        figure_controller(6),
        0.02,
    ));
    let log = out.plan_log.expect("the Query Scheduler logs plans");
    let series: Vec<_> = log.all().iter().collect();
    assert_eq!(series.len(), 3, "one trajectory per class");
    let n = series[0].1.len();
    assert!(n >= 5, "expected several control intervals, got {n}");
    for i in 0..n {
        let total: f64 = series.iter().map(|(_, s)| s.points()[i].value).sum();
        assert!(
            (total - 30_000.0).abs() < 1.0,
            "plan {i} sums to {total}, not the 30K system limit"
        );
        for (c, s) in &series {
            let v = s.points()[i].value;
            assert!(v >= 590.0, "plan {i} starves {c}: {v} below the floor");
        }
    }
}

#[test]
fn fig7_oltp_reservation_grows_in_heavy_periods() {
    let out = query_scheduler::experiments::world::run_experiment(&main_config(
        SEED,
        figure_controller(6),
        SCALE,
    ));
    let log = out.plan_log.expect("plan log");
    let schedule = main_config(SEED, figure_controller(6), SCALE).schedule;
    let f7 = query_scheduler::experiments::figures::fig7(&log, &schedule);
    let class3 = f7
        .per_class
        .iter()
        .find(|(c, _)| *c == ClassId(3))
        .map(|(_, m)| m.clone())
        .expect("class 3 trajectory");
    let heavy: f64 = [2usize, 5, 8, 11, 14]
        .iter()
        .map(|&p| class3[p])
        .sum::<f64>()
        / 5.0;
    let light: f64 = [0usize, 3, 6, 9, 12]
        .iter()
        .map(|&p| class3[p])
        .sum::<f64>()
        / 5.0;
    assert!(
        heavy > light * 1.3,
        "the OLTP reservation should grow when its load is heavy: heavy {heavy:.0} vs light {light:.0}"
    );
}
