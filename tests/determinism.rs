//! Determinism regression: the whole point of a seeded DES is that a seed
//! names exactly one run. The flight recorder turns that promise into a
//! checkable surface — a streaming digest over every delivered event and
//! control decision — and this suite asserts bit-identity of that digest
//! (plus reports, summaries, and plans) across repeat runs in one process
//! and across `run_parallel` worker counts.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::figures::run_parallel_with;
use query_scheduler::experiments::world::{run_experiment, RunOutput};
use query_scheduler::sim::{FaultPlan, SimDuration};
use query_scheduler::workload::Schedule;

fn config(seed: u64, controller: ControllerSpec) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller,
        warmup_periods: 0,
        record_sample: Some(1),
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    }
}

fn scheduler_spec() -> ControllerSpec {
    ControllerSpec::QueryScheduler(SchedulerConfig {
        control_interval: SimDuration::from_secs(30),
        ..SchedulerConfig::default()
    })
}

/// Everything observable about a run, flattened to comparable strings.
fn fingerprint(out: &RunOutput) -> (u64, u64, String, String, String) {
    let oracle = out.oracle.as_ref().expect("oracle observes these runs");
    (
        oracle.recorder_digest,
        oracle.events_recorded,
        serde_json::to_string(&out.report).unwrap(),
        format!("{:?}", out.summary),
        format!("{:?}", out.plan_log),
    )
}

#[test]
fn seed_42_reproduces_bit_for_bit_in_process() {
    let cfg = config(42, scheduler_spec());
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same seed, same process, different bits"
    );
    // The digest covers every delivered event (plus controller-decision
    // annotations), not just the retained tail.
    assert!(a.oracle.as_ref().unwrap().events_recorded >= a.summary.events);
}

#[test]
fn different_seeds_diverge() {
    // The digest is a meaningful fingerprint only if distinct runs actually
    // produce distinct digests.
    let a = run_experiment(&config(42, scheduler_spec()));
    let b = run_experiment(&config(43, scheduler_spec()));
    assert_ne!(
        a.oracle.as_ref().unwrap().recorder_digest,
        b.oracle.as_ref().unwrap().recorder_digest,
        "distinct seeds collided on the event-stream digest"
    );
}

#[test]
fn worker_count_cannot_leak_into_results() {
    // The same config batch through 1 worker and 3 workers: every output —
    // digests, reports, summaries, plans — must be bit-identical. Runs only
    // share immutable configs, so scheduling must be invisible.
    let mk = || {
        vec![
            config(7, scheduler_spec()),
            config(7, ControllerSpec::Uncontrolled),
            {
                let mut c = config(1007, scheduler_spec());
                c.faults = Some(FaultPlan::new(3).channel("release.drop", 0.3));
                c
            },
            config(65_535, scheduler_spec()),
        ]
    };
    let serial = run_parallel_with(mk(), 1);
    let parallel = run_parallel_with(mk(), 3);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            fingerprint(s),
            fingerprint(p),
            "config #{i}: worker count changed the outcome"
        );
    }
}
