//! Integration tests of the control-plane extensions: MPL controllers, reactive
//! re-planning via workload detection, and non-paper client behaviours.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::detect::DetectorConfig;
use query_scheduler::core::mpl::MplAdaptiveConfig;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::dbms::query::ClassId;
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::SimDuration;
use query_scheduler::workload::Schedule;

fn cfg(seed: u64, controller: ControllerSpec, schedule: Schedule) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule,
        classes: ServiceClass::paper_classes(),
        controller,
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    }
}

fn three_periods() -> Schedule {
    Schedule::new(
        SimDuration::from_secs(120),
        vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
    )
}

#[test]
fn mpl_static_caps_concurrency_and_completes_work() {
    let out = run_experiment(&cfg(
        3,
        ControllerSpec::MplStatic { per_class_cap: 2 },
        three_periods(),
    ));
    // Both OLAP classes progress under the cap, OLTP is untouched.
    assert!(out.report.total_completions(ClassId(1)) > 0);
    assert!(out.report.total_completions(ClassId(2)) > 0);
    assert!(out.report.total_completions(ClassId(3)) > 10_000);
    // A cap of 2 per class bounds mean admitted cost well below 30 K:
    // 4 concurrent OLAP queries ≈ 4 × ~3.4 K plus the OLTP trickle.
    assert!(
        out.summary.mean_admitted_cost < 25_000.0,
        "MPL cap should bound admitted cost, got {:.0}",
        out.summary.mean_admitted_cost
    );
}

#[test]
fn mpl_adaptive_runs_and_respects_budget() {
    let out = run_experiment(&cfg(
        3,
        ControllerSpec::MplAdaptive(MplAdaptiveConfig {
            total_mpl: 8,
            floor: 1,
            control_interval: SimDuration::from_secs(20),
        }),
        three_periods(),
    ));
    assert_eq!(out.report.controller, "mpl-adaptive");
    assert!(out.report.total_completions(ClassId(1)) > 0);
    assert!(out.report.total_completions(ClassId(2)) > 0);
}

#[test]
fn cost_based_control_beats_mpl_on_oltp_goal() {
    // The paper's §1 argument: cost is the right admission currency for
    // OLAP. Same workload, same seed; compare OLTP goal adherence.
    let schedule = three_periods();
    let qs = run_experiment(&cfg(
        9,
        ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(20),
            ..SchedulerConfig::default()
        }),
        schedule.clone(),
    ));
    let mpl = run_experiment(&cfg(
        9,
        ControllerSpec::MplStatic { per_class_cap: 5 },
        schedule,
    ));
    let mean_resp = |out: &query_scheduler::experiments::world::RunOutput| {
        let vals: Vec<f64> = (0..out.report.periods.len())
            .filter_map(|p| out.report.metric(p, ClassId(3)))
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    assert!(
        mean_resp(&qs) <= mean_resp(&mpl) + 0.02,
        "cost-based control should serve OLTP at least as well: {:.3} vs {:.3}",
        mean_resp(&qs),
        mean_resp(&mpl)
    );
}

#[test]
fn reactive_replanning_reacts_faster_than_the_interval() {
    // One intensity step: light OLTP then a sudden 15→25 jump. The control
    // interval is deliberately long (120 s = the whole period), so only the
    // detector-triggered re-plans can adapt within the heavy period.
    let schedule = Schedule::new(
        SimDuration::from_secs(240),
        vec![vec![3, 3, 15], vec![3, 3, 25]],
    );
    let slow = SchedulerConfig {
        control_interval: SimDuration::from_secs(240),
        snapshot_interval: SimDuration::from_secs(5),
        ..SchedulerConfig::default()
    };
    let reactive = SchedulerConfig {
        reactive_replanning: true,
        detector: DetectorConfig {
            window: SimDuration::from_secs(20),
            ewma_alpha: 0.3,
            change_threshold: 0.3,
            min_windows: 2,
        },
        ..slow.clone()
    };
    let base = run_experiment(&cfg(
        5,
        ControllerSpec::QueryScheduler(slow),
        schedule.clone(),
    ));
    let fast = run_experiment(&cfg(5, ControllerSpec::QueryScheduler(reactive), schedule));
    let plans = |out: &query_scheduler::experiments::world::RunOutput| {
        out.plan_log.as_ref().expect("plan log").all()[0].1.len()
    };
    assert!(
        plans(&fast) > plans(&base),
        "detected changes must add re-plans: {} vs {}",
        plans(&fast),
        plans(&base)
    );
    // OLTP response in the heavy period must not be worse under reactive
    // control.
    let heavy_resp = |out: &query_scheduler::experiments::world::RunOutput| {
        out.report
            .metric(1, ClassId(3))
            .expect("heavy period metric")
    };
    assert!(
        heavy_resp(&fast) <= heavy_resp(&base) + 0.03,
        "reactive re-planning should help (or at least not hurt): {:.3} vs {:.3}",
        heavy_resp(&fast),
        heavy_resp(&base)
    );
}

#[test]
fn detector_counts_changes_across_the_run() {
    let schedule = Schedule::new(
        SimDuration::from_secs(200),
        vec![vec![3, 3, 15], vec![3, 3, 25], vec![3, 3, 15]],
    );
    let reactive = SchedulerConfig {
        reactive_replanning: true,
        control_interval: SimDuration::from_secs(40),
        snapshot_interval: SimDuration::from_secs(5),
        detector: DetectorConfig {
            window: SimDuration::from_secs(20),
            ewma_alpha: 0.3,
            change_threshold: 0.3,
            min_windows: 2,
        },
        ..SchedulerConfig::default()
    };
    let out = run_experiment(&cfg(8, ControllerSpec::QueryScheduler(reactive), schedule));
    // The OLTP intensity steps up and back down: at least two changes.
    // (The detector itself is only reachable through the plan log length
    // here; more re-plans than the 15 interval ticks implies detections.)
    let plan_points = out.plan_log.expect("plan log").all()[0].1.len();
    assert!(
        plan_points > 15,
        "expected reactive re-plans, got {plan_points}"
    );
}

#[test]
fn plan_smoothing_bounds_per_interval_swings() {
    // Unbounded plans may jump by many thousands of timerons per interval;
    // with max_step_fraction = 0.05 no class limit may move more than
    // 1 500 timerons between consecutive plans (up to the simplex
    // re-projection's small correction).
    let schedule = Schedule::new(
        SimDuration::from_secs(200),
        vec![vec![3, 3, 15], vec![3, 3, 25], vec![2, 6, 15]],
    );
    let smoothed = SchedulerConfig {
        control_interval: SimDuration::from_secs(20),
        max_step_fraction: Some(0.05),
        ..SchedulerConfig::default()
    };
    let out = run_experiment(&cfg(4, ControllerSpec::QueryScheduler(smoothed), schedule));
    let log = out.plan_log.expect("plan log");
    for (class, series) in log.all() {
        let points = series.points();
        for w in points.windows(2) {
            let delta = (w[1].value - w[0].value).abs();
            assert!(
                delta <= 0.05 * 30_000.0 + 600.0,
                "{class} jumped {delta:.0} timerons in one interval"
            );
        }
    }
    // Plans must still sum to the system limit after smoothing.
    let n = log.all()[0].1.len();
    for i in 0..n {
        let total: f64 = log.all().iter().map(|(_, s)| s.points()[i].value).sum();
        assert!((total - 30_000.0).abs() < 1.0, "plan {i} sums to {total}");
    }
}

#[test]
fn qp_max_cost_rule_rejects_but_clients_continue() {
    // A tight maximum-cost rule rejects the expensive tail of the TPC-H
    // stream; the closed-loop clients must keep cycling (a rejection is a
    // served-with-error interaction), and cheap queries still run.
    use query_scheduler::dbms::Timerons;
    let schedule = Schedule::new(SimDuration::from_secs(240), vec![vec![4, 4, 15]]);
    let base = run_experiment(&cfg(
        6,
        ControllerSpec::QpStatic {
            system_limit: Timerons::new(30_000.0),
            priority: true,
            max_cost: None,
        },
        schedule.clone(),
    ));
    let strict = run_experiment(&cfg(
        6,
        ControllerSpec::QpStatic {
            system_limit: Timerons::new(30_000.0),
            priority: true,
            // Roughly the median TPC-H cost: the expensive half is rejected.
            max_cost: Some(Timerons::new(3_000.0)),
        },
        schedule,
    ));
    // Rejections shrink the completed OLAP work…
    let olap = |o: &query_scheduler::experiments::world::RunOutput| {
        o.report.total_completions(ClassId(1)) + o.report.total_completions(ClassId(2))
    };
    // …but the clients keep cycling: the strict run pushes *more* queries
    // through the loop because rejected ones return instantly.
    assert!(
        strict.summary.olap_completed + 10 < base.summary.olap_completed + olap(&strict),
        "sanity"
    );
    assert!(olap(&strict) > 0, "cheap queries must still complete");
    // Completed OLAP queries under the strict rule are all cheap-to-mid cost,
    // so their mean execution time drops well below the baseline's.
    let mean_exec = |o: &query_scheduler::experiments::world::RunOutput| {
        o.report
            .cell(0, ClassId(1))
            .map(|c| c.mean_execution_secs)
            .unwrap_or(f64::NAN)
    };
    assert!(
        mean_exec(&strict) < mean_exec(&base),
        "rejecting the expensive tail must shrink mean execution: {:.2} vs {:.2}",
        mean_exec(&strict),
        mean_exec(&base)
    );
}
