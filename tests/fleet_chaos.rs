//! The fleet control-plane chaos swarm: the leased allocation protocol
//! must be invisible when healthy and bounded when faulted.
//!
//! Claims proven here:
//!
//! 1. **Zero-fault identity** — with no fleet fault channels, the leased
//!    control plane (reports, lease books, renewal directives) produces
//!    bit-identical results to a ledger-free run at every worker-thread
//!    count, across 8 seeds and all three routing policies. The ledger
//!    itself is deterministic (virtual-time counters only) and is nulled
//!    before whole-report comparison.
//! 2. **Partition autonomy** — a 120 s control-plane partition of one
//!    shard (reports and directives both dropped) lets its lease lapse:
//!    within one TTL of the partition's start the shard degrades itself to
//!    its declared fallback (never above the floor), the allocator holds
//!    its stale allocation, the fleet oracle stays silent, and the healthy
//!    peers' SLO attainment stays within one goal cell of the fault-free
//!    twin — across a ≥ 24-combo seed × routing × thread swarm.
//! 3. **Allocator crash-failover** — killing the global allocator mid
//!    flash crowd loses in-flight reports, expires the unluckiest shard's
//!    lease, and cold-restarts into a bumped epoch reconstructed purely
//!    from shard reports: a delayed directive from the dead incarnation is
//!    fenced as stale on arrival, and the fleet reconverges to the
//!    fault-free twin's grants within the plan ε-band in finite MTTR.
//!
//! The swarm writes an aggregate ledger artifact to
//! `target/chaos/fleet-swarm.json` (uploaded by the `fleet-chaos` CI job).

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::experiments::config::{
    ControllerSpec, ExperimentConfig, RoutingPolicy, ShardSpec,
};
use query_scheduler::experiments::report::RunReport;
use query_scheduler::experiments::world::{run_experiment, RunOutput};
use query_scheduler::sim::{ChaosTrack, FaultPlan, FaultSpec, SimDuration};
use query_scheduler::workload::Schedule;

/// Three classes on a three-backend fleet. `periods` picks the schedule:
/// short two-period runs for the identity swarm, a three-period flash
/// crowd (surge in the middle) for the fault scenarios.
fn fleet_config(
    seed: u64,
    routing: RoutingPolicy,
    worker_threads: usize,
    flash_crowd: bool,
) -> ExperimentConfig {
    let schedule = if flash_crowd {
        Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 12], vec![6, 2, 24], vec![3, 3, 12]],
        )
    } else {
        Schedule::new(
            SimDuration::from_secs(60),
            vec![vec![2, 2, 10], vec![4, 1, 16]],
        )
    };
    let mut cfg = ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule,
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    // One fleet budget across three backends.
    if let ControllerSpec::QueryScheduler(sc) = &mut cfg.controller {
        sc.system_limit = query_scheduler::dbms::Timerons::new(sc.system_limit.get() * 3.0);
    }
    let mut spec = ShardSpec::new(3);
    spec.routing = routing;
    spec.worker_threads = worker_threads;
    spec.allocation_interval = if flash_crowd {
        SimDuration::from_secs(60)
    } else {
        // Deliberately misaligned with the control interval.
        SimDuration::from_secs(45)
    };
    cfg.shard = Some(spec);
    cfg.oracle.panic_on_violation = true;
    cfg.resilience.measure_mttr = false;
    cfg
}

fn digest(out: &RunOutput) -> u64 {
    out.oracle
        .as_ref()
        .expect("oracle enabled in swarm configs")
        .recorder_digest
}

/// The report with every wall-clock and ledger field nulled: what must be
/// bit-identical across worker-thread counts.
fn comparable(report: &RunReport) -> RunReport {
    let mut r = report.clone();
    r.perf = None;
    r.fleet = None;
    if let Some(s) = &mut r.shards {
        s.allocator = s.allocator.normalized();
    }
    r
}

#[test]
fn zero_fault_leased_plane_is_bit_identical_across_thread_counts() {
    for seed in 0..8u64 {
        for routing in [
            RoutingPolicy::Hash,
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::ClassAffinity,
        ] {
            let serial = run_experiment(&fleet_config(seed, routing, 1, false));
            let ledger = serial.report.fleet.as_ref().expect("leased plane ledger");
            assert!(
                ledger.reports_sent > 0 && ledger.directives_sent > 0,
                "seed {seed} {routing:?}: the lease plane must actually run"
            );
            assert_eq!(
                (
                    ledger.reports_dropped,
                    ledger.reports_delayed,
                    ledger.directives_dropped,
                    ledger.stale_solves,
                    ledger.lease_expiries,
                    ledger.stale_rejected,
                    ledger.allocator_crashes,
                    ledger.oracle_violations,
                ),
                (0, 0, 0, 0, 0, 0, 0, 0),
                "seed {seed} {routing:?}: a fault-free plane must be silent"
            );
            assert!(
                ledger.oracle_checks > 0,
                "fleet oracle must observe the run"
            );
            assert!(
                ledger.autonomy.is_empty() && ledger.crashes.is_empty(),
                "seed {seed} {routing:?}: no autonomy or crashes without faults"
            );

            for threads in [2usize, 4] {
                let parallel = run_experiment(&fleet_config(seed, routing, threads, false));
                assert_eq!(
                    digest(&serial),
                    digest(&parallel),
                    "seed {seed} {routing:?} threads {threads}: digest diverged"
                );
                assert_eq!(
                    serial.summary, parallel.summary,
                    "seed {seed} {routing:?} threads {threads}: summary diverged"
                );
                // The ledger is pure virtual-time accounting, so it too is
                // thread-count invariant…
                assert_eq!(
                    serial.report.fleet, parallel.report.fleet,
                    "seed {seed} {routing:?} threads {threads}: ledger diverged"
                );
                // …and with it nulled, the whole report is bit-identical.
                assert_eq!(
                    serde_json::to_string(&comparable(&serial.report)).unwrap(),
                    serde_json::to_string(&comparable(&parallel.report)).unwrap(),
                    "seed {seed} {routing:?} threads {threads}: report diverged"
                );
            }
        }
    }
}

/// A 120 s control-plane partition of shard 1: both directions severed.
fn partition_plan(seed: u64) -> FaultPlan {
    let chans = ["alloc.report_drop@shard1", "alloc.directive_drop@shard1"];
    let mut fp = FaultPlan::new(0xF1EE7 ^ seed);
    for c in chans {
        fp = fp.with_channel(c, FaultSpec::rate(1.0));
    }
    fp.with_track(ChaosTrack::windows(
        &chans,
        &[(SimDuration::from_secs(110), SimDuration::from_secs(230))],
    ))
}

#[test]
fn partitioned_shard_degrades_to_fallback_and_peers_hold_slo() {
    let mut artifact_rows = Vec::new();
    for seed in 0..8u64 {
        for routing in [
            RoutingPolicy::Hash,
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::ClassAffinity,
        ] {
            let threads = 1 + (seed as usize % 2);
            let mut cfg = fleet_config(seed, routing, threads, true);
            cfg.faults = Some(partition_plan(seed));
            // panic_on_violation is on: reaching the assertions below means
            // the fleet oracle saw zero violations.
            let out = run_experiment(&cfg);
            let ledger = out.report.fleet.as_ref().expect("ledger");
            let spec = cfg.shard.as_ref().expect("sharded");
            let ttl = spec.lease_ttl();
            let budget = match &cfg.controller {
                ControllerSpec::QueryScheduler(sc) => sc.system_limit.get(),
                _ => unreachable!(),
            };
            let floor = spec.fallback() * budget / 3.0;

            assert_eq!(ledger.oracle_violations, 0, "seed {seed} {routing:?}");
            assert!(
                ledger.reports_dropped > 0 && ledger.directives_dropped > 0,
                "seed {seed} {routing:?}: the partition must actually drop traffic"
            );
            assert!(
                ledger.stale_solves > 0,
                "seed {seed} {routing:?}: the staleness guard must hold the silent shard"
            );
            assert!(
                ledger.lease_expiries >= 1,
                "seed {seed} {routing:?}: the partitioned shard's lease must lapse"
            );
            let windows: Vec<_> = ledger.autonomy.iter().filter(|w| w.shard == 1).collect();
            assert!(
                !windows.is_empty(),
                "seed {seed} {routing:?}: shard 1 must enter autonomy"
            );
            let first = windows[0];
            assert!(
                first.start.as_secs_f64() <= 110.0 + ttl.as_secs_f64(),
                "seed {seed} {routing:?}: autonomy must begin within one TTL of the cut, \
                 started at {:.1}s",
                first.start.as_secs_f64()
            );
            assert!(
                first.fallback_limit <= floor + 1e-9,
                "seed {seed} {routing:?}: fallback {:.3} above the floor {floor:.3}",
                first.fallback_limit
            );
            let end = first.end.expect("the healed partition re-leases shard 1");
            assert!(end > first.start, "seed {seed} {routing:?}");

            // Healthy peers stay within one goal cell (1/9 here) of the
            // fault-free twin.
            let mut twin_cfg = cfg.clone();
            twin_cfg.faults = None;
            let twin = run_experiment(&twin_cfg);
            let rows = &out.report.shards.as_ref().expect("rows").rows;
            let twin_rows = &twin.report.shards.as_ref().expect("rows").rows;
            let cell = 1.0 / 9.0 + 1e-9;
            for k in [0usize, 2] {
                let delta = (rows[k].slo_attainment - twin_rows[k].slo_attainment).abs();
                assert!(
                    delta <= cell,
                    "seed {seed} {routing:?}: peer shard {k} drifted {delta:.3} \
                     (> one goal cell) from the fault-free twin"
                );
            }

            artifact_rows.push(serde_json::json!({
                "seed": seed,
                "routing": format!("{routing:?}"),
                "worker_threads": threads,
                "ledger": ledger,
            }));
        }
    }
    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create artifact dir");
    std::fs::write(
        dir.join("fleet-swarm.json"),
        serde_json::to_string_pretty(&serde_json::json!({
            "swarm": "fleet-partition",
            "combos": artifact_rows.len(),
            "rows": artifact_rows,
        }))
        .expect("serialize artifact"),
    )
    .expect("write artifact");
}

/// Kill the allocator at the 90 s barrier (the flash crowd's onset) and
/// delay shard 1's barrier-60 report and directive by 70 s, so an epoch-1
/// directive lands after the epoch-2 restart has fenced it.
fn crash_plan(seed: u64) -> FaultPlan {
    let delayed = FaultSpec {
        delay: Some(SimDuration::from_secs(70)),
        ..FaultSpec::rate(1.0).limited(2)
    };
    FaultPlan::new(0xA110C ^ seed)
        .with_channel("allocator.crash", FaultSpec::rate(1.0).limited(1))
        .with_channel("alloc.delay@shard1", delayed)
        .with_track(ChaosTrack::windows(
            &["allocator.crash"],
            &[(SimDuration::from_secs(85), SimDuration::from_secs(95))],
        ))
        .with_track(ChaosTrack::windows(
            &["alloc.delay@shard1"],
            &[(SimDuration::from_secs(55), SimDuration::from_secs(65))],
        ))
}

#[test]
fn allocator_crash_recovers_with_finite_mttr_and_fences_stale_directives() {
    for seed in [3u64, 11] {
        let mut cfg = fleet_config(seed, RoutingPolicy::Hash, 2, true);
        if let Some(spec) = &mut cfg.shard {
            spec.allocation_interval = SimDuration::from_secs(30);
        }
        cfg.resilience.measure_mttr = true;
        cfg.faults = Some(crash_plan(seed));
        let out = run_experiment(&cfg);
        let ledger = out.report.fleet.as_ref().expect("ledger");

        assert_eq!(ledger.allocator_crashes, 1, "seed {seed}");
        assert_eq!(ledger.oracle_violations, 0, "seed {seed}");
        let crash = &ledger.crashes[0];
        assert_eq!(crash.at.as_secs_f64(), 90.0, "seed {seed}: crash barrier");
        assert_eq!(
            crash.restarted_at.map(|t| t.as_secs_f64()),
            Some(120.0),
            "seed {seed}: cold restart at the next barrier"
        );
        assert!(
            ledger.reports_lost_downtime >= 1,
            "seed {seed}: reports addressed to the dead allocator are lost"
        );
        assert!(
            ledger.epoch >= 2,
            "seed {seed}: the restart must bump the epoch past the fence"
        );
        assert!(
            ledger.stale_rejected > 0,
            "seed {seed}: the delayed epoch-1 directive must be fenced as stale"
        );
        assert!(
            ledger.lease_expiries >= 1,
            "seed {seed}: the delayed renewal must cost shard 1 its lease"
        );
        assert!(
            ledger.all_reconverged(),
            "seed {seed}: the rebuilt allocator must reconverge to the twin's plan"
        );
        let mttr = ledger.max_mttr_secs().expect("reconverged implies MTTR");
        assert!(
            mttr > 0.0 && mttr <= 180.0,
            "seed {seed}: fleet MTTR {mttr:.1}s out of range"
        );

        let dir = std::path::Path::new("target/chaos");
        std::fs::create_dir_all(dir).expect("create artifact dir");
        std::fs::write(
            dir.join(format!("fleet-crash-ledger-{seed}.json")),
            serde_json::to_string_pretty(ledger).expect("serialize ledger"),
        )
        .expect("write ledger artifact");
    }
}
