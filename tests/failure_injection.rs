//! Failure injection: the system must stay live and self-consistent when
//! components misbehave — grossly wrong optimizer estimates, a controller
//! that never releases anything, degenerate queries, and arrival storms.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::controller::{Controller, CtrlEvent};
use query_scheduler::core::scheduler::{QueryScheduler, SchedulerConfig};
use query_scheduler::dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use query_scheduler::dbms::patroller::InterceptPolicy;
use query_scheduler::dbms::query::{ClassId, ClientId, ExecShape, Query, QueryId, QueryKind};
use query_scheduler::dbms::{DbmsConfig, Timerons};
use query_scheduler::sim::{Ctx, Engine, SimDuration, SimTime, World};

/// A controller that never releases anything — a wedged operator.
struct Wedged;

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for Wedged {
    fn name(&self) -> &'static str {
        "wedged"
    }
    fn start(&mut self, _ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {}
    fn on_notice(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _notice: &DbmsNotice,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
    fn on_event(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
}

/// Minimal world: a DBMS, a controller, a batch of queries at t=0.
struct Rig<C> {
    dbms: Dbms,
    controller: C,
    to_submit: Vec<Query>,
    completed: u64,
    held_seen: u64,
}

enum Ev {
    Kick,
    Db(DbmsEvent),
    Ctrl(CtrlEvent),
}
impl From<DbmsEvent> for Ev {
    fn from(e: DbmsEvent) -> Self {
        Ev::Db(e)
    }
}
impl From<CtrlEvent> for Ev {
    fn from(e: CtrlEvent) -> Self {
        Ev::Ctrl(e)
    }
}

impl<C: Controller<Ev>> World for Rig<C> {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let mut out = Vec::new();
        match ev {
            Ev::Kick => {
                self.controller.start(ctx, &mut self.dbms);
                for q in self.to_submit.drain(..) {
                    self.dbms.submit(ctx, q, &mut out);
                }
            }
            Ev::Db(e) => self.dbms.handle(ctx, e, &mut out),
            Ev::Ctrl(e) => self.controller.on_event(ctx, &mut self.dbms, e, &mut out),
        }
        let mut i = 0;
        while i < out.len() {
            let n = out[i].clone();
            i += 1;
            match &n {
                DbmsNotice::Intercepted(_) => self.held_seen += 1,
                DbmsNotice::Completed(_) => self.completed += 1,
                DbmsNotice::Rejected(_) => {}
            }
            self.controller.on_notice(ctx, &mut self.dbms, &n, &mut out);
        }
    }
}

fn olap_query(id: u64, est: f64, true_cost: f64) -> Query {
    let cfg = DbmsConfig::default();
    Query {
        id: QueryId(id),
        client: ClientId(id as u32),
        class: ClassId(1),
        kind: QueryKind::Olap,
        template: 1,
        estimated_cost: Timerons::new(est),
        true_cost: Timerons::new(true_cost),
        shape: cfg.shape(Timerons::new(true_cost), 0.75, 4),
    }
}

#[test]
fn wedged_controller_never_deadlocks_the_engine() {
    // Every query is intercepted and nothing ever releases them: the run
    // must terminate cleanly (no events left), with all queries held.
    let dbms =
        Dbms::new(DbmsConfig::default(), InterceptPolicy::intercept_all(), SimTime::ZERO);
    let queries: Vec<Query> = (0..50).map(|i| olap_query(i, 1_000.0, 1_000.0)).collect();
    let mut e = Engine::new(Rig {
        dbms,
        controller: Wedged,
        to_submit: queries,
        completed: 0,
        held_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    e.run_until(SimTime::from_secs(3_600));
    let w = e.world();
    assert_eq!(w.completed, 0);
    assert_eq!(w.held_seen, 50);
    assert_eq!(w.dbms.patroller().held_count(), 50);
    assert_eq!(w.dbms.executing_count(), 0);
}

#[test]
fn grossly_wrong_estimates_do_not_wedge_the_scheduler() {
    // Optimizer estimates off by 100× in both directions. The Query
    // Scheduler's budget is in estimates, so its plan arithmetic is way off
    // reality — but every query must still complete (the oversize-when-idle
    // guard prevents starvation) and the dispatcher's books must balance.
    let dbms = Dbms::new(
        DbmsConfig::default(),
        InterceptPolicy::intercept_all().with_bypass(ClassId(3)),
        SimTime::ZERO,
    );
    let mut queries = Vec::new();
    for i in 0..40u64 {
        let (est, true_cost) = if i % 2 == 0 {
            (100_000.0, 1_000.0) // 100× over-estimated
        } else {
            (50.0, 5_000.0) // 100× under-estimated
        };
        queries.push(olap_query(i, est, true_cost));
    }
    let qs = QueryScheduler::paper_default(
        ServiceClass::paper_classes(),
        SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        },
    );
    let mut e = Engine::new(Rig {
        dbms,
        controller: qs,
        to_submit: queries,
        completed: 0,
        held_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    // The QS reschedules its ticks forever; run to a generous horizon.
    e.run_until(SimTime::from_secs(7_200));
    let w = e.world();
    assert_eq!(w.completed, 40, "all queries complete despite bogus estimates");
    assert_eq!(w.controller.queued(), 0, "no query left behind in class queues");
    assert_eq!(w.dbms.executing_count(), 0);
}

#[test]
fn degenerate_queries_flow_through() {
    // Minimum-cost queries with 1 cycle, zero I/O, weight 1 — and a single
    // enormous one — on the same engine.
    let dbms =
        Dbms::new(DbmsConfig::default(), InterceptPolicy::intercept_none(), SimTime::ZERO);
    let mut queries: Vec<Query> = (0..100)
        .map(|i| Query {
            id: QueryId(i),
            client: ClientId(i as u32),
            class: ClassId(3),
            kind: QueryKind::Oltp,
            template: 1,
            estimated_cost: Timerons::new(1.0),
            true_cost: Timerons::new(1.0),
            shape: ExecShape::new(SimDuration::from_micros(10), SimDuration::ZERO, 1),
        })
        .collect();
    queries.push(olap_query(999, 60_000.0, 60_000.0)); // far past the knee alone
    let mut e = Engine::new(Rig {
        dbms,
        controller: Wedged, // nothing intercepted, controller irrelevant
        to_submit: queries,
        completed: 0,
        held_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    e.run_until(SimTime::from_secs(86_400));
    assert_eq!(e.world().completed, 101);
    assert!(e.world().dbms.admitted_true_cost().abs() < 1e-6);
}

#[test]
fn submission_storm_drains_completely() {
    // 5 000 simultaneous OLTP submissions (agent pool is 512): the pool
    // queue must hand agents over until everything drains.
    let dbms =
        Dbms::new(DbmsConfig::default(), InterceptPolicy::intercept_none(), SimTime::ZERO);
    let queries: Vec<Query> = (0..5_000)
        .map(|i| Query {
            id: QueryId(i),
            client: ClientId(i as u32),
            class: ClassId(3),
            kind: QueryKind::Oltp,
            template: 1,
            estimated_cost: Timerons::new(50.0),
            true_cost: Timerons::new(50.0),
            shape: ExecShape::new(
                SimDuration::from_millis(5),
                SimDuration::from_millis(2),
                2,
            ),
        })
        .collect();
    let mut e = Engine::new(Rig {
        dbms,
        controller: Wedged,
        to_submit: queries,
        completed: 0,
        held_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    e.run_until(SimTime::from_secs(86_400));
    assert_eq!(e.world().completed, 5_000);
    assert_eq!(e.world().dbms.executing_count(), 0);
}
