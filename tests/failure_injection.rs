//! Failure injection: the system must stay live and self-consistent when
//! components misbehave — grossly wrong optimizer estimates, a controller
//! that never releases anything, degenerate queries, arrival storms, and
//! every fault channel of the deterministic fault-injection harness
//! (snapshot loss, corrupted estimates, solver failures, dropped/delayed
//! release commands, controller stalls).

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::controller::{Controller, CtrlEvent};
use query_scheduler::core::scheduler::{QueryScheduler, SchedulerConfig};
use query_scheduler::dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use query_scheduler::dbms::patroller::InterceptPolicy;
use query_scheduler::dbms::query::{ClassId, ClientId, ExecShape, Query, QueryId, QueryKind};
use query_scheduler::dbms::{DbmsConfig, Timerons, WatchdogConfig};
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::world::{run_experiment, RunOutput};
use query_scheduler::sim::{Ctx, Engine, FaultPlan, FaultSpec, SimDuration, SimTime, World};
use query_scheduler::workload::Schedule;

/// A controller that never releases anything — a wedged operator.
struct Wedged;

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for Wedged {
    fn name(&self) -> &'static str {
        "wedged"
    }
    fn start(&mut self, _ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {}
    fn on_notice(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _notice: &DbmsNotice,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
    fn on_event(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
}

/// Minimal world: a DBMS, a controller, a batch of queries at t=0.
struct Rig<C> {
    dbms: Dbms,
    controller: C,
    to_submit: Vec<Query>,
    completed: u64,
    held_seen: u64,
    starved_seen: u64,
}

enum Ev {
    Kick,
    Db(DbmsEvent),
    Ctrl(CtrlEvent),
}
impl From<DbmsEvent> for Ev {
    fn from(e: DbmsEvent) -> Self {
        Ev::Db(e)
    }
}
impl From<CtrlEvent> for Ev {
    fn from(e: CtrlEvent) -> Self {
        Ev::Ctrl(e)
    }
}

impl<C: Controller<Ev>> World for Rig<C> {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let mut out = Vec::new();
        match ev {
            Ev::Kick => {
                self.controller.start(ctx, &mut self.dbms);
                for q in self.to_submit.drain(..) {
                    self.dbms.submit(ctx, q, &mut out);
                }
            }
            Ev::Db(e) => self.dbms.handle(ctx, e, &mut out),
            Ev::Ctrl(e) => self.controller.on_event(ctx, &mut self.dbms, e, &mut out),
        }
        let mut i = 0;
        while i < out.len() {
            let n = out[i].clone();
            i += 1;
            match &n {
                DbmsNotice::Intercepted(_) => self.held_seen += 1,
                DbmsNotice::Completed(_) => self.completed += 1,
                DbmsNotice::Starved(_) => self.starved_seen += 1,
                DbmsNotice::Rejected(_) => {}
            }
            self.controller.on_notice(ctx, &mut self.dbms, &n, &mut out);
        }
    }
}

fn olap_query(id: u64, est: f64, true_cost: f64) -> Query {
    let cfg = DbmsConfig::default();
    Query {
        id: QueryId(id),
        client: ClientId(id as u32),
        class: ClassId(1),
        kind: QueryKind::Olap,
        template: 1,
        estimated_cost: Timerons::new(est),
        true_cost: Timerons::new(true_cost),
        shape: cfg.shape(Timerons::new(true_cost), 0.75, 4),
    }
}

#[test]
fn wedged_controller_is_backstopped_by_the_watchdog() {
    // Every query is intercepted and the controller never releases anything.
    // The starvation watchdog must notice the held queries rotting, emit a
    // Starved notice for each, and trickle them into execution: the run
    // terminates with everything completed, not deadlocked.
    let dbms = Dbms::new(
        DbmsConfig::default(),
        InterceptPolicy::intercept_all(),
        SimTime::ZERO,
    );
    let queries: Vec<Query> = (0..50).map(|i| olap_query(i, 1_000.0, 1_000.0)).collect();
    let mut e = Engine::new(Rig {
        dbms,
        controller: Wedged,
        to_submit: queries,
        completed: 0,
        held_seen: 0,
        starved_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    e.run_until(SimTime::from_secs(14_400));
    let w = e.world();
    assert_eq!(w.held_seen, 50);
    assert_eq!(
        w.starved_seen, 50,
        "every held query must produce a Starved notice"
    );
    assert_eq!(
        w.completed, 50,
        "force-released queries must run to completion"
    );
    assert_eq!(w.dbms.metrics().degradation.starvation_releases, 50);
    assert_eq!(w.dbms.patroller().held_count(), 0);
    assert_eq!(w.dbms.executing_count(), 0);
}

#[test]
fn wedged_controller_never_deadlocks_even_without_the_watchdog() {
    // With the watchdog disabled nothing ever releases the held queries:
    // the run must still terminate cleanly (no events left), all queries
    // held — wedged, but not a livelock.
    let cfg = DbmsConfig {
        watchdog: WatchdogConfig::disabled(),
        ..DbmsConfig::default()
    };
    let dbms = Dbms::new(cfg, InterceptPolicy::intercept_all(), SimTime::ZERO);
    let queries: Vec<Query> = (0..50).map(|i| olap_query(i, 1_000.0, 1_000.0)).collect();
    let mut e = Engine::new(Rig {
        dbms,
        controller: Wedged,
        to_submit: queries,
        completed: 0,
        held_seen: 0,
        starved_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    e.run_until(SimTime::from_secs(3_600));
    let w = e.world();
    assert_eq!(w.completed, 0);
    assert_eq!(w.held_seen, 50);
    assert_eq!(w.starved_seen, 0);
    assert_eq!(w.dbms.patroller().held_count(), 50);
    assert_eq!(w.dbms.executing_count(), 0);
}

#[test]
fn grossly_wrong_estimates_do_not_wedge_the_scheduler() {
    // Optimizer estimates off by 100× in both directions. The Query
    // Scheduler's budget is in estimates, so its plan arithmetic is way off
    // reality — but every query must still complete (the oversize-when-idle
    // guard prevents starvation) and the dispatcher's books must balance.
    let dbms = Dbms::new(
        DbmsConfig::default(),
        InterceptPolicy::intercept_all().with_bypass(ClassId(3)),
        SimTime::ZERO,
    );
    let mut queries = Vec::new();
    for i in 0..40u64 {
        let (est, true_cost) = if i % 2 == 0 {
            (100_000.0, 1_000.0) // 100× over-estimated
        } else {
            (50.0, 5_000.0) // 100× under-estimated
        };
        queries.push(olap_query(i, est, true_cost));
    }
    let qs = QueryScheduler::paper_default(
        ServiceClass::paper_classes(),
        SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        },
    );
    let mut e = Engine::new(Rig {
        dbms,
        controller: qs,
        to_submit: queries,
        completed: 0,
        held_seen: 0,
        starved_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    // The QS reschedules its ticks forever; run to a generous horizon.
    e.run_until(SimTime::from_secs(7_200));
    let w = e.world();
    assert_eq!(
        w.completed, 40,
        "all queries complete despite bogus estimates"
    );
    assert_eq!(
        w.controller.queued(),
        0,
        "no query left behind in class queues"
    );
    assert_eq!(w.dbms.executing_count(), 0);
}

#[test]
fn degenerate_queries_flow_through() {
    // Minimum-cost queries with 1 cycle, zero I/O, weight 1 — and a single
    // enormous one — on the same engine.
    let dbms = Dbms::new(
        DbmsConfig::default(),
        InterceptPolicy::intercept_none(),
        SimTime::ZERO,
    );
    let mut queries: Vec<Query> = (0..100)
        .map(|i| Query {
            id: QueryId(i),
            client: ClientId(i as u32),
            class: ClassId(3),
            kind: QueryKind::Oltp,
            template: 1,
            estimated_cost: Timerons::new(1.0),
            true_cost: Timerons::new(1.0),
            shape: ExecShape::new(SimDuration::from_micros(10), SimDuration::ZERO, 1),
        })
        .collect();
    queries.push(olap_query(999, 60_000.0, 60_000.0)); // far past the knee alone
    let mut e = Engine::new(Rig {
        dbms,
        controller: Wedged, // nothing intercepted, controller irrelevant
        to_submit: queries,
        completed: 0,
        held_seen: 0,
        starved_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    e.run_until(SimTime::from_secs(86_400));
    assert_eq!(e.world().completed, 101);
    assert!(e.world().dbms.admitted_true_cost().abs() < 1e-6);
}

#[test]
fn submission_storm_drains_completely() {
    // 5 000 simultaneous OLTP submissions (agent pool is 512): the pool
    // queue must hand agents over until everything drains.
    let dbms = Dbms::new(
        DbmsConfig::default(),
        InterceptPolicy::intercept_none(),
        SimTime::ZERO,
    );
    let queries: Vec<Query> = (0..5_000)
        .map(|i| Query {
            id: QueryId(i),
            client: ClientId(i as u32),
            class: ClassId(3),
            kind: QueryKind::Oltp,
            template: 1,
            estimated_cost: Timerons::new(50.0),
            true_cost: Timerons::new(50.0),
            shape: ExecShape::new(SimDuration::from_millis(5), SimDuration::from_millis(2), 2),
        })
        .collect();
    let mut e = Engine::new(Rig {
        dbms,
        controller: Wedged,
        to_submit: queries,
        completed: 0,
        held_seen: 0,
        starved_seen: 0,
    });
    e.schedule_at(SimTime::ZERO, Ev::Kick);
    e.run_until(SimTime::from_secs(86_400));
    assert_eq!(e.world().completed, 5_000);
    assert_eq!(e.world().dbms.executing_count(), 0);
}

// ---------------------------------------------------------------------------
// Fault channels: one deterministic seeded scenario per fault kind. Every
// test asserts liveness (the mixed workload keeps completing) and that the
// DegradationStats agree exactly with the injector's own counts.
// ---------------------------------------------------------------------------

/// The end-to-end rig: the paper's three classes under the Query Scheduler
/// on a small three-period schedule.
fn qs_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    }
}

fn run_with_faults(seed: u64, faults: FaultPlan) -> RunOutput {
    let mut cfg = qs_config(seed);
    cfg.faults = Some(faults);
    run_experiment(&cfg)
}

fn assert_live(out: &RunOutput) {
    assert!(out.summary.olap_completed > 0, "OLAP starved under faults");
    assert!(out.summary.oltp_completed > 0, "OLTP starved under faults");
}

fn injected(out: &RunOutput, channel: &str) -> u64 {
    out.fault_counts.get(channel).copied().unwrap_or(0)
}

#[test]
fn snapshot_loss_falls_back_to_the_last_known_good_plan() {
    // Every monitor snapshot is lost: once the inputs go stale past the
    // bound, replans must reuse the last-known-good plan instead of solving
    // over garbage — and the workload keeps flowing.
    let out = run_with_faults(31, FaultPlan::new(1).channel("snapshot.drop", 1.0));
    assert_live(&out);
    let n = injected(&out, "snapshot.drop");
    assert!(n > 0, "snapshot ticks must have fired");
    assert_eq!(out.degradation.snapshots_lost, n);
    assert!(
        out.degradation.stale_intervals > 0,
        "staleness must be detected"
    );
    assert!(
        out.degradation.plan_fallbacks > 0,
        "stale replans must fall back"
    );
    assert_eq!(
        out.degradation.stale_intervals,
        out.degradation.plan_fallbacks
    );
}

#[test]
fn corrupted_estimates_are_flagged_and_survived() {
    // Every optimizer estimate is corrupted by ×1000 / ÷1000 alternately.
    // Implausibly large estimates must be flagged (clamping the next plan
    // delta), and the oversize-when-idle guard must keep queries flowing.
    let out = run_with_faults(32, FaultPlan::new(2).channel("cost.corrupt", 1.0));
    assert_live(&out);
    let n = injected(&out, "cost.corrupt");
    assert!(n > 0);
    assert_eq!(out.degradation.estimates_corrupted, n);
    assert!(
        out.degradation.estimates_implausible > 0,
        "×1000 OLAP estimates must trip the plausibility check"
    );
}

#[test]
fn dropped_release_commands_are_retried() {
    // Half of all patroller release commands vanish in flight. The
    // scheduler must detect each drop (the query is still held) and retry
    // with backoff until it sticks.
    let out = run_with_faults(33, FaultPlan::new(3).channel("release.drop", 0.5));
    assert_live(&out);
    let n = injected(&out, "release.drop");
    assert!(n > 0, "drops must have fired at rate 0.5");
    assert_eq!(out.degradation.releases_dropped, n);
    assert!(
        out.degradation.release_retries > 0,
        "drops must trigger retries"
    );
}

#[test]
fn delayed_release_commands_still_complete() {
    // Half of all release commands are delayed by 2 s instead of applying
    // immediately. Everything still completes; the delay is only latency.
    let out = run_with_faults(
        34,
        FaultPlan::new(4).with_channel(
            "release.delay",
            FaultSpec::rate(0.5).with_delay(SimDuration::from_secs(2)),
        ),
    );
    assert_live(&out);
    let n = injected(&out, "release.delay");
    assert!(n > 0);
    assert_eq!(out.degradation.releases_delayed, n);
}

#[test]
fn solver_failures_freeze_the_plan_at_last_known_good() {
    // The solver times out on every replan: the scheduler must keep the
    // last-known-good plan, so the plan log stays flat at the initial plan
    // while the workload keeps completing.
    let out = run_with_faults(35, FaultPlan::new(5).channel("solver.fail", 1.0));
    assert_live(&out);
    let n = injected(&out, "solver.fail");
    assert!(n > 0, "replans must have consulted the solver channel");
    assert_eq!(out.degradation.solver_failures, n);
    assert_eq!(out.degradation.plan_fallbacks, n);
    let log = out
        .plan_log
        .as_ref()
        .expect("the Query Scheduler keeps a plan log");
    for (class, series) in log.all() {
        let first = series
            .points()
            .first()
            .expect("initial plan recorded")
            .value;
        for p in series.points() {
            assert_eq!(
                p.value, first,
                "plan for {class} moved despite a dead solver"
            );
        }
    }
}

#[test]
fn controller_stalls_degrade_but_do_not_kill_the_loop() {
    // 30 % of controller timer deliveries stall for 3 s before being
    // re-delivered. The control loop limps but never dies.
    let out = run_with_faults(
        36,
        FaultPlan::new(6).with_channel(
            "ctrl.stall",
            FaultSpec::rate(0.3).with_delay(SimDuration::from_secs(3)),
        ),
    );
    assert_live(&out);
    let n = injected(&out, "ctrl.stall");
    assert!(n > 0, "stalls must have fired at rate 0.3");
    assert_eq!(out.degradation.controller_stalls, n);
}

#[test]
fn zero_rate_fault_plan_is_bit_identical_to_no_plan() {
    // The acceptance bar for the harness: a configured-but-inert fault plan
    // must not perturb a single bit of the run — plans, SLO metrics, or
    // event counts.
    let healthy = run_experiment(&qs_config(77));
    let mut cfg = qs_config(77);
    let mut inert = FaultPlan::new(99);
    for ch in [
        "snapshot.drop",
        "cost.corrupt",
        "solver.fail",
        "release.drop",
        "release.delay",
        "ctrl.stall",
    ] {
        inert = inert.channel(ch, 0.0);
    }
    assert!(inert.is_inert());
    cfg.faults = Some(inert);
    let guarded = run_experiment(&cfg);
    assert_eq!(
        serde_json::to_string(&healthy.report).unwrap(),
        serde_json::to_string(&guarded.report).unwrap(),
        "an inert fault plan must leave the report bit-identical"
    );
    assert_eq!(healthy.summary, guarded.summary);
    assert_eq!(
        format!("{:?}", healthy.plan_log),
        format!("{:?}", guarded.plan_log),
        "an inert fault plan must leave every plan bit-identical"
    );
    assert!(!healthy.degradation.any());
    assert!(!guarded.degradation.any());
    assert!(guarded.fault_counts.values().all(|&n| n == 0));
    // The strongest form of "bit-identical": the flight recorder digests
    // every delivered event and every control decision, and the two streams
    // must agree byte for byte.
    let h = healthy.oracle.as_ref().expect("oracle on by default");
    let g = guarded.oracle.as_ref().expect("oracle on by default");
    assert_eq!(h.events_recorded, g.events_recorded);
    assert_eq!(
        h.recorder_digest, g.recorder_digest,
        "an inert fault plan must leave the full event stream bit-identical"
    );
    assert_eq!(h.stats, g.stats, "and the oracle sees identical runs");
}
