//! Cross-crate integration tests: every controller runs end to end on the
//! composed world, and the run outputs satisfy global invariants.

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::dbms::query::ClassId;
use query_scheduler::dbms::Timerons;
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::world::{run_experiment, RunOutput};
use query_scheduler::sim::SimDuration;
use query_scheduler::workload::Schedule;

fn tiny_config(seed: u64, controller: ControllerSpec) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_secs(90),
            vec![vec![3, 3, 15], vec![2, 5, 25], vec![5, 2, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller,
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    }
}

fn all_controllers() -> Vec<ControllerSpec> {
    vec![
        ControllerSpec::Uncontrolled,
        ControllerSpec::NoControl {
            system_limit: Timerons::new(30_000.0),
        },
        ControllerSpec::QpStatic {
            system_limit: Timerons::new(30_000.0),
            priority: true,
            max_cost: None,
        },
        ControllerSpec::QpStatic {
            system_limit: Timerons::new(30_000.0),
            priority: false,
            max_cost: None,
        },
        ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(30),
            ..SchedulerConfig::default()
        }),
        ControllerSpec::MplStatic { per_class_cap: 4 },
        ControllerSpec::MplAdaptive(query_scheduler::core::mpl::MplAdaptiveConfig {
            control_interval: SimDuration::from_secs(30),
            ..Default::default()
        }),
        ControllerSpec::PiFeedback(query_scheduler::core::feedback::PiConfig {
            control_interval: SimDuration::from_secs(30),
            ..Default::default()
        }),
    ]
}

fn check_invariants(out: &RunOutput) {
    let r = &out.report;
    // Every class made progress.
    for class in &r.classes {
        assert!(
            r.total_completions(class.id) > 0,
            "[{}] class {} completed nothing",
            r.controller,
            class.id
        );
    }
    // Velocities are in (0, 1]; response times positive and ≥ execution.
    for cell in &r.periods {
        for (c, cp) in cell {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&cp.mean_velocity),
                "[{}] {c} velocity {} out of range",
                r.controller,
                cp.mean_velocity
            );
            assert!(cp.mean_response_secs >= cp.mean_execution_secs - 1e-9);
            assert!(cp.mean_response_secs > 0.0);
        }
    }
    // Engine totals agree with the per-period breakdown.
    let total: u64 = r.classes.iter().map(|c| r.total_completions(c.id)).sum();
    assert_eq!(
        total,
        out.summary.olap_completed + out.summary.oltp_completed,
        "[{}] period cells disagree with engine totals",
        r.controller
    );
    // OLTP dominates the completion count (sub-second vs multi-second).
    assert!(out.summary.oltp_completed > out.summary.olap_completed * 10);
}

#[test]
fn every_controller_runs_the_mixed_workload() {
    for spec in all_controllers() {
        let out = run_experiment(&tiny_config(11, spec.clone()));
        check_invariants(&out);
        assert_eq!(out.report.controller, spec.name());
    }
}

#[test]
fn runs_are_bit_reproducible() {
    for spec in [
        ControllerSpec::NoControl {
            system_limit: Timerons::new(30_000.0),
        },
        ControllerSpec::QueryScheduler(SchedulerConfig::default()),
    ] {
        let a = run_experiment(&tiny_config(77, spec.clone()));
        let b = run_experiment(&tiny_config(77, spec));
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap(),
            "identical seeds must reproduce identical reports"
        );
        assert_eq!(a.summary.events, b.summary.events);
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let spec = ControllerSpec::NoControl {
        system_limit: Timerons::new(30_000.0),
    };
    let a = run_experiment(&tiny_config(1, spec.clone()));
    let b = run_experiment(&tiny_config(2, spec));
    assert_ne!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "different seeds should explore different randomness"
    );
}

#[test]
fn uncontrolled_engine_never_holds_queries() {
    // With interception off, velocity ≡ 1 for every completed query: no
    // held time exists anywhere in the system.
    let out = run_experiment(&tiny_config(5, ControllerSpec::Uncontrolled));
    for cell in &out.report.periods {
        for (c, cp) in cell {
            assert!(
                cp.mean_velocity > 0.999,
                "{c} velocity {} implies held time without a controller",
                cp.mean_velocity
            );
        }
    }
}

#[test]
fn interception_controllers_delay_olap_but_not_oltp() {
    let out = run_experiment(&tiny_config(
        5,
        ControllerSpec::QueryScheduler(SchedulerConfig::default()),
    ));
    // OLTP bypasses the patroller: velocity stays 1.
    for cell in &out.report.periods {
        if let Some(cp) = cell.get(&ClassId(3)) {
            assert!(cp.mean_velocity > 0.999, "OLTP must never be held");
        }
    }
    // At least one OLAP period experienced queueing (velocity < 1).
    let queued = out.report.periods.iter().any(|cell| {
        [ClassId(1), ClassId(2)]
            .iter()
            .any(|c| cell.get(c).is_some_and(|cp| cp.mean_velocity < 0.999))
    });
    assert!(
        queued,
        "cost-based control should delay at least some OLAP queries"
    );
}

#[test]
fn qp_priority_beats_no_priority_for_the_favoured_class() {
    let with = run_experiment(&tiny_config(
        9,
        ControllerSpec::QpStatic {
            system_limit: Timerons::new(30_000.0),
            priority: true,
            max_cost: None,
        },
    ));
    let without = run_experiment(&tiny_config(
        9,
        ControllerSpec::QpStatic {
            system_limit: Timerons::new(30_000.0),
            priority: false,
            max_cost: None,
        },
    ));
    let mean_v2 = |out: &RunOutput| {
        let vals: Vec<f64> = (0..out.report.periods.len())
            .filter_map(|p| out.report.metric(p, ClassId(2)))
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    assert!(
        mean_v2(&with) >= mean_v2(&without) - 0.02,
        "priority must not hurt the favoured class: {} vs {}",
        mean_v2(&with),
        mean_v2(&without)
    );
}

#[test]
fn configured_behaviors_shape_the_load() {
    use query_scheduler::workload::Behavior;
    // Same schedule; think time on the OLTP class must cut its throughput
    // roughly in proportion to think/(think+service).
    let mut eager = tiny_config(21, ControllerSpec::Uncontrolled);
    let mut relaxed = eager.clone();
    relaxed.behaviors = Some(vec![
        Behavior::paper(),
        Behavior::paper(),
        Behavior::ClosedLoop {
            mean_think: SimDuration::from_millis(400),
        },
    ]);
    eager.seed = 21;
    let fast = run_experiment(&eager);
    let slow = run_experiment(&relaxed);
    // Think time lengthens each client cycle; contention relief partially
    // offsets it, so expect a ~30-60 % throughput cut.
    assert!(
        (slow.summary.oltp_completed as f64) < 0.7 * fast.summary.oltp_completed as f64,
        "think time must cut OLTP throughput: {} vs {}",
        slow.summary.oltp_completed,
        fast.summary.oltp_completed
    );
    // OLAP classes are untouched by the OLTP think time... up to the extra
    // CPU headroom the idle OLTP clients free up.
    assert!(slow.summary.olap_completed >= fast.summary.olap_completed);
}

#[test]
fn open_loop_class_submits_independently_of_completions() {
    use query_scheduler::workload::Behavior;
    let mut cfg = tiny_config(33, ControllerSpec::Uncontrolled);
    cfg.behaviors = Some(vec![
        Behavior::OpenLoop {
            mean_interarrival: SimDuration::from_secs(30),
        },
        Behavior::paper(),
        Behavior::paper(),
    ]);
    let out = run_experiment(&cfg);
    // 3..5 clients × 1 arrival/30 s over 270 s ⇒ roughly 30 class-1 queries.
    let n = out.report.total_completions(ClassId(1));
    assert!(
        (10..=80).contains(&n),
        "open-loop arrival count {n} far from the configured rate"
    );
}

#[test]
fn trace_replay_reproduces_the_recorded_arrivals() {
    use query_scheduler::dbms::query::{ClientId, QueryKind};
    use query_scheduler::workload::{Trace, TraceEvent};
    // A hand-written trace: 20 OLTP arrivals at 100 ms spacing and 3 OLAP
    // queries, replayed against the uncontrolled engine.
    let mut events = Vec::new();
    for i in 0..20u64 {
        events.push(TraceEvent {
            at: SimDuration::from_millis(100 * i),
            class: ClassId(3),
            kind: QueryKind::Oltp,
            client: ClientId(300 + (i % 5) as u32),
            template: 1,
            estimated_cost: 50.0,
            true_cost: 55.0,
            io_fraction: 0.2,
        });
    }
    for i in 0..3u64 {
        events.push(TraceEvent {
            at: SimDuration::from_millis(500 * i),
            class: ClassId(1),
            kind: QueryKind::Olap,
            client: ClientId(100 + i as u32),
            template: 9,
            estimated_cost: 3_000.0,
            true_cost: 3_000.0,
            io_fraction: 0.75,
        });
    }
    let trace = Trace::new(events);
    // The trace round-trips through CSV before the run.
    let trace = Trace::from_csv(&trace.to_csv()).expect("round trip");
    let mut cfg = tiny_config(1, ControllerSpec::Uncontrolled);
    cfg.trace = Some(trace);
    let out = run_experiment(&cfg);
    assert_eq!(out.summary.oltp_completed, 20);
    assert_eq!(out.summary.olap_completed, 3);
    // Determinism: replaying the same trace yields an identical report.
    let mut cfg2 = tiny_config(999, ControllerSpec::Uncontrolled); // seed ignored
    cfg2.trace = cfg.trace.clone();
    let out2 = run_experiment(&cfg2);
    assert_eq!(
        serde_json::to_string(&out.report).unwrap(),
        serde_json::to_string(&out2.report).unwrap()
    );
}

#[test]
fn trace_replay_respects_controllers() {
    use query_scheduler::dbms::query::{ClientId, QueryKind};
    use query_scheduler::workload::{Trace, TraceEvent};
    // A burst of expensive OLAP queries at t=0: the no-control budget admits
    // only ~30 K timerons at a time, so completions serialise.
    let events: Vec<TraceEvent> = (0..10u64)
        .map(|i| TraceEvent {
            at: SimDuration::ZERO,
            class: ClassId(1),
            kind: QueryKind::Olap,
            client: ClientId(i as u32),
            template: 1,
            estimated_cost: 10_000.0,
            true_cost: 10_000.0,
            io_fraction: 0.75,
        })
        .collect();
    let mut cfg = tiny_config(
        1,
        ControllerSpec::NoControl {
            system_limit: Timerons::new(30_000.0),
        },
    );
    cfg.trace = Some(Trace::new(events));
    let out = run_experiment(&cfg);
    assert_eq!(out.summary.olap_completed, 10);
    // Velocity < 1 proves the controller actually held trace queries.
    let any_held = out.report.periods.iter().any(|cell| {
        cell.get(&ClassId(1))
            .is_some_and(|c| c.mean_velocity < 0.999)
    });
    assert!(any_held, "the cost limit must delay part of the burst");
}
