//! SLO tuning: explore what the Query Scheduler does when *you* change the
//! goals, the importance levels, or the solver strategy.
//!
//! Three studies on a scaled-down paper workload:
//!
//! * **Tighter OLTP SLO** — halve the Class 3 response-time goal and watch
//!   the scheduler divert more budget from the OLAP classes.
//! * **Importance inversion** — make Class 1 the most important OLAP class
//!   and verify it now outperforms Class 2 (importance is only honoured
//!   under violation, so the velocities must actually be under pressure).
//! * **Solver comparison** — grid search vs. hill climbing vs. the naive
//!   importance-proportional split.
//!
//! Run with:
//! ```sh
//! cargo run --release --example slo_tuning
//! ```

use query_scheduler::core::class::{Goal, ServiceClass};
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::core::solver::SolverKind;
use query_scheduler::dbms::query::ClassId;
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::SimDuration;

const SEED: u64 = 42;
const SCALE: f64 = 0.1;

fn base_config(classes: Vec<ServiceClass>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(
        SEED,
        ControllerSpec::QueryScheduler(SchedulerConfig::default()),
    );
    let schedule = cfg.schedule.clone();
    let period = SimDuration::from_secs_f64(schedule.period_len().as_secs_f64() * SCALE);
    cfg.schedule = query_scheduler::workload::Schedule::new(
        period,
        (0..schedule.periods())
            .map(|p| schedule.counts_at(p).to_vec())
            .collect(),
    );
    cfg.classes = classes;
    cfg
}

fn summarize(label: &str, cfg: &ExperimentConfig) {
    let out = run_experiment(cfg);
    println!("--- {label} ---");
    for class in &out.report.classes {
        let violations = out.report.violations(class.id);
        let mean: f64 = (0..out.report.periods.len())
            .filter_map(|p| out.report.metric(p, class.id))
            .sum::<f64>()
            / out.report.periods.len() as f64;
        println!(
            "  {:<18} importance {}  mean metric {:.3}  violations {}/18",
            class.name, class.importance, mean, violations
        );
    }
    if let Some(log) = &out.plan_log {
        let final_plan: Vec<String> = log
            .all()
            .iter()
            .map(|(c, s)| format!("{c}={:.0}", s.last_value().unwrap_or(f64::NAN)))
            .collect();
        println!("  final cost limits: {}", final_plan.join("  "));
    }
    println!();
}

fn main() {
    // Study 1: the paper's goals vs a twice-as-tight OLTP SLO.
    summarize("paper goals", &base_config(ServiceClass::paper_classes()));

    let mut tight = ServiceClass::paper_classes();
    tight[2].goal = Goal::AvgResponseAtMost(SimDuration::from_millis(125));
    summarize("OLTP SLO tightened to 125 ms", &base_config(tight));

    // Study 2: invert the OLAP importance levels.
    let mut inverted = ServiceClass::paper_classes();
    inverted[0].importance = 2;
    inverted[0].goal = Goal::VelocityAtLeast(0.6);
    inverted[1].importance = 1;
    inverted[1].goal = Goal::VelocityAtLeast(0.4);
    summarize(
        "OLAP importance inverted (Class 1 now matters more)",
        &base_config(inverted),
    );

    // Study 3: solver strategies on the same workload, end to end.
    for kind in [
        SolverKind::Grid,
        SolverKind::HillClimb,
        SolverKind::Proportional,
    ] {
        let mut cfg = base_config(ServiceClass::paper_classes());
        cfg.controller = ControllerSpec::QueryScheduler(SchedulerConfig {
            solver: kind,
            ..SchedulerConfig::default()
        });
        summarize(&format!("solver {kind:?}"), &cfg);
    }
    println!(
        "Note: class {} is never intercepted — its budget is enforced by shrinking the others.",
        ClassId(3)
    );
}
