//! Server consolidation: the paper's §1 motivation scenario.
//!
//! "The emerging trend of server consolidation results in a set of workloads
//! with diverse and dynamic resource demands and competing performance
//! objectives." Here five tenants share one simulated DBMS:
//!
//! * three OLAP tenants with different velocity SLOs and importance levels
//!   (an internal BI team, a paying analytics customer, a best-effort
//!   data-science sandbox),
//! * one interactive OLTP tenant with a hard response-time SLO,
//! * one open-loop reporting feed whose arrival rate doubles mid-day.
//!
//! The Query Scheduler re-divides the same 30 K-timeron budget among all
//! five as their demands shift.
//!
//! Run with:
//! ```sh
//! cargo run --release --example server_consolidation
//! ```

use query_scheduler::core::class::{Goal, ServiceClass};
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::dbms::query::{ClassId, QueryKind};
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::figures::render_main_report;
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::SimDuration;
use query_scheduler::workload::{Behavior, Schedule};

fn main() {
    let classes = vec![
        ServiceClass::new(
            ClassId(1),
            "BI team",
            QueryKind::Olap,
            1,
            Goal::VelocityAtLeast(0.3),
        ),
        ServiceClass::new(
            ClassId(2),
            "analytics customer",
            QueryKind::Olap,
            2,
            Goal::VelocityAtLeast(0.6),
        ),
        ServiceClass::new(
            ClassId(3),
            "data-science sandbox",
            QueryKind::Olap,
            1,
            Goal::VelocityAtLeast(0.2),
        ),
        ServiceClass::new(
            ClassId(4),
            "reporting feed",
            QueryKind::Olap,
            1,
            Goal::VelocityAtLeast(0.3),
        ),
        ServiceClass::new(
            ClassId(5),
            "order entry",
            QueryKind::Oltp,
            3,
            Goal::AvgResponseAtMost(SimDuration::from_millis(250)),
        ),
    ];

    // Six 15-minute periods; the reporting feed's population doubles and the
    // OLTP tenant ramps from 10 to 25 clients.
    let schedule = Schedule::new(
        SimDuration::from_mins(15),
        vec![
            vec![2, 3, 2, 2, 10],
            vec![2, 3, 2, 2, 15],
            vec![3, 3, 2, 4, 20],
            vec![3, 4, 2, 4, 25],
            vec![2, 4, 1, 4, 25],
            vec![2, 3, 2, 2, 15],
        ],
    );

    let behaviors = vec![
        Behavior::paper(),
        Behavior::ClosedLoop {
            mean_think: SimDuration::from_secs(5),
        },
        Behavior::paper(),
        Behavior::OpenLoop {
            mean_interarrival: SimDuration::from_secs(20),
        },
        Behavior::paper(),
    ];

    let cfg = ExperimentConfig {
        seed: 42,
        dbms: Default::default(),
        schedule,
        classes,
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(60),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: None,
        behaviors: Some(behaviors),
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    let out = run_experiment(&cfg);
    println!(
        "{}",
        render_main_report(
            "Five consolidated tenants under one Query Scheduler",
            &out.report
        )
    );
    if let Some(log) = &out.plan_log {
        println!("final cost limits:");
        for (class, series) in log.all() {
            let name = out
                .report
                .class(*class)
                .map(|c| c.name.as_str())
                .unwrap_or("?");
            println!(
                "  {class} ({name}): {:.0} timerons",
                series.last_value().unwrap_or(f64::NAN)
            );
        }
    }
    println!(
        "\nthe OLTP tenant violated its SLO in {} of 6 periods; total {} OLAP + {} OLTP completions.",
        out.report.violations(ClassId(5)),
        out.summary.olap_completed,
        out.summary.oltp_completed
    );
}
