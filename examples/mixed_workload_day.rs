//! The paper's main experiment: a 24-hour mixed TPC-H/TPC-C day under the
//! three controllers of §4 — no class control (Figure 4), static DB2 Query
//! Patroller with priorities (Figure 5), and the adaptive Query Scheduler
//! (Figures 6 and 7).
//!
//! Run with:
//! ```sh
//! cargo run --release --example mixed_workload_day           # full 24 h
//! cargo run --release --example mixed_workload_day -- 0.2    # scaled day
//! cargo run --release --example mixed_workload_day -- 0.2 99 # custom seed
//! ```

use query_scheduler::dbms::query::ClassId;
use query_scheduler::experiments::figures::{
    fig3_render, fig7, figure_controller, main_config, main_figure, render_main_report,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(1.0);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    println!("{}", fig3_render());

    let mut qs_violations = usize::MAX;
    for fig in [4u8, 5, 6] {
        let started = std::time::Instant::now();
        let out = main_figure(fig, seed, scale);
        let title = format!(
            "Figure {fig}: per-period performance under {} (seed {seed}, scale {scale})",
            out.report.controller
        );
        println!("{}", render_main_report(&title, &out.report));
        println!(
            "completions: {} OLAP, {} OLTP | mean admitted cost {:.0} timerons | \
             class2>=class1 velocity in {:.0}% of periods | wall {:?}\n",
            out.summary.olap_completed,
            out.summary.oltp_completed,
            out.summary.mean_admitted_cost,
            100.0
                * out
                    .report
                    .differentiation_fraction(ClassId(2), ClassId(1), 1),
            started.elapsed()
        );
        if fig == 6 {
            qs_violations = out.report.violations(ClassId(3));
            if let Some(log) = &out.plan_log {
                let schedule = main_config(seed, figure_controller(fig), scale).schedule;
                println!("{}", fig7(log, &schedule).render());
            }
        }
    }
    println!(
        "Query Scheduler left Class 3 (OLTP, most important) violating its SLO in {qs_violations} of 18 periods."
    );
}
