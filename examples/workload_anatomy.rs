//! Workload anatomy: what actually runs when the Query Scheduler manages a
//! mixed day — per-template costs, execution times and velocities, and how
//! the three client behaviours (the paper's zero-think closed loop, a
//! think-time loop, an open-loop arrival stream) shape the load.
//!
//! Run with:
//! ```sh
//! cargo run --release --example workload_anatomy
//! ```

use query_scheduler::core::class::ServiceClass;
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::dbms::query::QueryKind;
use query_scheduler::experiments::analysis::{per_template_stats, render_template_stats};
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::SimDuration;
use query_scheduler::workload::templates::{tpcc_templates, tpch_templates};
use query_scheduler::workload::Schedule;

fn main() {
    // A one-hour slice of the paper workload, retaining every OLAP record
    // and every 50th OLTP record for post-hoc analysis.
    let cfg = ExperimentConfig {
        seed: 42,
        dbms: Default::default(),
        schedule: Schedule::new(
            SimDuration::from_mins(20),
            vec![vec![4, 4, 15], vec![3, 5, 25], vec![5, 3, 20]],
        ),
        classes: ServiceClass::paper_classes(),
        controller: ControllerSpec::QueryScheduler(SchedulerConfig {
            control_interval: SimDuration::from_secs(60),
            ..SchedulerConfig::default()
        }),
        warmup_periods: 0,
        record_sample: Some(50),
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    let out = run_experiment(&cfg);
    let stats = per_template_stats(&out.records);

    let olap: Vec<_> = stats
        .iter()
        .filter(|t| t.kind == QueryKind::Olap)
        .cloned()
        .collect();
    let oltp: Vec<_> = stats
        .iter()
        .filter(|t| t.kind == QueryKind::Oltp)
        .cloned()
        .collect();
    println!(
        "{}",
        render_template_stats(
            "TPC-H-like templates under Query Scheduler control (every record)",
            &olap
        )
    );
    println!(
        "{}",
        render_template_stats("TPC-C-like transactions (1-in-50 sample)", &oltp)
    );

    // Cross-check the anatomy against the template catalog.
    let catalog: Vec<(u16, f64)> = tpch_templates()
        .iter()
        .map(|t| (t.template_id, t.mean_cost))
        .collect();
    let mut mismatches = 0;
    for t in &olap {
        if let Some((_, mean)) = catalog.iter().find(|(id, _)| *id == t.template) {
            if (t.mean_cost - mean).abs() / mean > 0.35 {
                mismatches += 1;
            }
        }
    }
    println!(
        "observed mean costs match the catalog for {}/{} OLAP templates (±35 %).",
        olap.len() - mismatches,
        olap.len()
    );
    println!(
        "catalog sizes: {} TPC-H templates (4 excluded by the paper), {} TPC-C types.",
        tpch_templates().len(),
        tpcc_templates().len()
    );
    println!(
        "\n{} records retained out of {} completions.",
        out.records.len(),
        out.summary.olap_completed + out.summary.oltp_completed
    );
}
