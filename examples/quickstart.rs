//! Quickstart: put the Query Scheduler in front of a simulated DBMS and
//! watch it enforce per-class SLOs on a mixed OLAP/OLTP workload.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use query_scheduler::core::class::{Goal, ServiceClass};
use query_scheduler::core::scheduler::SchedulerConfig;
use query_scheduler::dbms::query::{ClassId, QueryKind};
use query_scheduler::experiments::config::{ControllerSpec, ExperimentConfig};
use query_scheduler::experiments::figures::render_main_report;
use query_scheduler::experiments::world::run_experiment;
use query_scheduler::sim::SimDuration;
use query_scheduler::workload::Schedule;

fn main() {
    // 1. Define the service classes: two OLAP report classes with query-
    //    velocity goals, one OLTP class with a response-time SLO. Importance
    //    matters only when a goal is violated.
    let classes = vec![
        ServiceClass::new(
            ClassId(1),
            "ad-hoc reports",
            QueryKind::Olap,
            1,
            Goal::VelocityAtLeast(0.4),
        ),
        ServiceClass::new(
            ClassId(2),
            "dashboards",
            QueryKind::Olap,
            2,
            Goal::VelocityAtLeast(0.6),
        ),
        ServiceClass::new(
            ClassId(3),
            "order entry",
            QueryKind::Oltp,
            3,
            Goal::AvgResponseAtMost(SimDuration::from_millis(250)),
        ),
    ];

    // 2. A workload schedule: client counts per class over four periods of
    //    ten virtual minutes (OLTP intensity ramps up).
    let schedule = Schedule::new(
        SimDuration::from_mins(10),
        vec![
            vec![4, 4, 15],
            vec![4, 4, 20],
            vec![4, 4, 25],
            vec![2, 6, 25],
        ],
    );

    // 3. The Query Scheduler: 30 K-timeron system cost limit, re-planning
    //    every two minutes, sampling the snapshot monitor every 10 s.
    let controller = ControllerSpec::QueryScheduler(SchedulerConfig {
        control_interval: SimDuration::from_secs(120),
        ..SchedulerConfig::default()
    });

    // 4. Run — deterministically, from a single seed.
    let cfg = ExperimentConfig {
        seed: 7,
        dbms: Default::default(),
        schedule,
        classes,
        controller,
        warmup_periods: 0,
        record_sample: None,
        behaviors: None,
        trace: None,
        faults: None,
        oracle: Default::default(),
        resilience: Default::default(),
        flips: Vec::new(),
        shard: None,
    };
    let out = run_experiment(&cfg);

    // 5. Inspect: per-period performance against the goals, and how the
    //    scheduler moved cost limits between classes.
    println!(
        "{}",
        render_main_report(
            "Quickstart: Query Scheduler on a mixed workload",
            &out.report
        )
    );
    if let Some(log) = &out.plan_log {
        println!("final plan:");
        for (class, series) in log.all() {
            println!(
                "  {class}: {:.0} timerons",
                series.last_value().unwrap_or(f64::NAN)
            );
        }
    }
    println!(
        "\n{} OLAP + {} OLTP queries completed in {:.1} virtual hours ({} events).",
        out.summary.olap_completed,
        out.summary.oltp_completed,
        out.summary.hours,
        out.summary.events
    );
}
