//! Capacity planning with the simulated DBMS: reproduce the two calibration
//! studies behind the paper's configuration choices.
//!
//! 1. **The system cost limit** (§2): sweep the limit, plot OLAP throughput,
//!    and pick the knee — "to ensure the system running in a healthy state
//!    or under-saturated". The paper lands on 30 K timerons.
//! 2. **The OLTP linear model** (§3.2, Figure 2): sweep the OLAP cost limit
//!    under fixed client populations and check that OLTP response time is
//!    ~linear in the admitted OLAP cost while under-saturated.
//!
//! Run with:
//! ```sh
//! cargo run --release --example capacity_planning            # full sweeps
//! cargo run --release --example capacity_planning -- quick   # reduced
//! ```

use query_scheduler::experiments::figures::{calibration, fig2, CalibrationOpts, Fig2Opts};

fn main() {
    let quick = std::env::args().nth(1).as_deref() == Some("quick");

    let cal_opts = if quick {
        CalibrationOpts {
            limits: vec![5e3, 10e3, 20e3, 30e3, 40e3, 50e3],
            clients: 20,
            minutes: 15,
        }
    } else {
        CalibrationOpts::default()
    };
    let curve = calibration(42, &cal_opts);
    println!("{}", curve.render());
    println!(
        "Throughput peaks at a system cost limit of {:.0} timerons — the paper's 30 K choice.\n",
        curve.knee()
    );

    let fig2_opts = if quick {
        Fig2Opts {
            limits: vec![4e3, 12e3, 20e3, 28e3, 36e3],
            minutes_per_period: 5,
            ..Fig2Opts::default()
        }
    } else {
        Fig2Opts::default()
    };
    let f2 = fig2(42, &fig2_opts);
    println!("{}", f2.render());
    for (i, s) in f2.series.iter().enumerate() {
        if let Some((slope, r2)) = f2.linear_fit(i, 30_000.0) {
            println!(
                "series ({},{}): slope {slope:.2e} s/timeron, R² {r2:.3} below the 30 K knee",
                s.oltp_clients, s.olap_clients
            );
        }
    }
    println!(
        "\nThe ~linear dependence justifies the paper's OLTP model t_k = t_(k-1) + s·ΔC (§3.2)."
    );
}
