//! Vendored shim exposing `crossbeam::thread::scope` over `std::thread::scope`.
//!
//! Only the scoped-spawn API the workspace uses is provided. Semantics match
//! crossbeam's: `scope` returns `Err` with the panic payload if any spawned
//! thread panicked and its handle was not joined; joined handles report their
//! own panics through `join()`.

pub mod thread {
    //! Scoped threads (subset of `crossbeam::thread`).

    use std::any::Any;

    /// Spawn handle scope passed to the closure and to each spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before return.
    ///
    /// Unjoined-thread panics surface as `Err(payload)`; std's scope would
    /// propagate them, so we catch to preserve crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawn_join_round_trip() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().expect("no panic")
        })
        .expect("scope ok");
        assert_eq!(sum, 6);
    }

    #[test]
    fn panics_surface_via_join() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .expect("scope itself succeeds when handles are joined");
        assert!(r.is_err());
    }
}
