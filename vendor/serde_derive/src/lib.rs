//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which are not
//! available offline). The parser handles the shapes this workspace
//! declares: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like, with `#[serde(default)]` and
//! `#[serde(skip)]` on named fields (a skipped field is omitted when
//! serializing and filled from `Default` when deserializing, like real
//! serde). Enums use serde's externally-tagged representation.
//! Anything else (generics, lifetimes, unions) produces a compile error
//! naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

enum StructShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct(String, StructShape),
    Enum(String, Vec<Variant>),
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == s {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

/// Attribute flags recognized on a named field.
#[derive(Default, Clone, Copy)]
struct FieldAttrs {
    default: bool,
    skip: bool,
}

/// Consume leading attributes; report any `#[serde(default)]` /
/// `#[serde(skip)]` markers.
fn parse_attrs(cur: &mut Cursor) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match cur.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                cur.bump();
                if let Some(TokenTree::Group(g)) = cur.bump() {
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(head)) = toks.first() {
                        if head.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = toks.get(1) {
                                for t in args.stream() {
                                    if let TokenTree::Ident(i) = &t {
                                        match i.to_string().as_str() {
                                            "default" => attrs.default = true,
                                            "skip" => attrs.skip = true,
                                            _ => {}
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => break,
        }
    }
    attrs
}

fn skip_visibility(cur: &mut Cursor) {
    if cur.eat_ident("pub") {
        if let Some(TokenTree::Group(g)) = cur.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                cur.bump();
            }
        }
    }
}

/// Skip one type expression: consume until a comma at angle-bracket depth 0.
fn skip_type(cur: &mut Cursor) {
    let mut depth = 0i32;
    while let Some(t) = cur.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                cur.bump();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                cur.bump();
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {
                cur.bump();
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = parse_attrs(&mut cur);
        skip_visibility(&mut cur);
        let name = cur.expect_ident()?;
        if !cur.eat_punct(':') {
            return Err(format!("expected ':' after field `{name}`"));
        }
        skip_type(&mut cur);
        cur.eat_punct(',');
        fields.push(Field {
            name,
            default: attrs.default,
            skip: attrs.skip,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut n = 0;
    while cur.peek().is_some() {
        parse_attrs(&mut cur);
        skip_visibility(&mut cur);
        skip_type(&mut cur);
        cur.eat_punct(',');
        n += 1;
    }
    n
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    parse_attrs(&mut cur);
    skip_visibility(&mut cur);
    if cur.eat_ident("struct") {
        let name = cur.expect_ident()?;
        match cur.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
                "derive(Serialize/Deserialize) shim: generic struct `{name}` unsupported"
            )),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::Struct(name, StructShape::Named(fields)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                Ok(Item::Struct(name, StructShape::Tuple(n)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item::Struct(name, StructShape::Unit))
            }
            other => Err(format!("unexpected token after struct name: {other:?}")),
        }
    } else if cur.eat_ident("enum") {
        let name = cur.expect_ident()?;
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == '<' {
                return Err(format!("derive shim: generic enum `{name}` unsupported"));
            }
        }
        let body = match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        let mut vcur = Cursor::new(body);
        let mut variants = Vec::new();
        while vcur.peek().is_some() {
            parse_attrs(&mut vcur);
            let vname = vcur.expect_ident()?;
            let shape = match vcur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    vcur.bump();
                    VariantShape::Tuple(n)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream())?;
                    vcur.bump();
                    VariantShape::Named(fields)
                }
                _ => VariantShape::Unit,
            };
            if vcur.eat_punct('=') {
                // Skip an explicit discriminant expression.
                while let Some(t) = vcur.peek() {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    vcur.bump();
                }
            }
            vcur.eat_punct(',');
            variants.push(Variant { name: vname, shape });
        }
        Ok(Item::Enum(name, variants))
    } else {
        Err("derive shim supports only structs and enums".into())
    }
}

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut pushes = String::new();
    for f in fields {
        if f.skip {
            continue; // skipped fields never appear in the output
        }
        pushes.push_str(&format!(
            "(::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::serialize_value({p}{n})),",
            n = f.name,
            p = access_prefix,
        ));
    }
    format!("::serde::Value::Object(::std::vec![{pushes}])")
}

/// Deserialization of one named field set out of the object `src_expr`.
fn de_named_fields(ty_label: &str, fields: &[Field], src_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            // A skipped field is never read from the input.
            inits.push_str(&format!(
                "{n}: ::std::default::Default::default(),",
                n = f.name,
            ));
            continue;
        }
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            // Mirror serde: a missing field still succeeds if the type
            // accepts "nothing" (e.g. Option<T> from null); otherwise error.
            format!(
                "match ::serde::Deserialize::deserialize_value(&::serde::Value::Null) {{ \
                   ::std::result::Result::Ok(x) => x, \
                   ::std::result::Result::Err(_) => return ::std::result::Result::Err(\
                     ::serde::DeError(::std::format!(\
                       \"missing field `{n}` of {t}\"))), \
                 }}",
                n = f.name,
                t = ty_label,
            )
        };
        inits.push_str(&format!(
            "{n}: match ::serde::Value::get({src}, \"{n}\") {{ \
               ::std::option::Option::Some(x) => ::serde::Deserialize::deserialize_value(x)?, \
               ::std::option::Option::None => {missing}, \
             }},",
            n = f.name,
            src = src_expr,
        ));
    }
    inits
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct(name, StructShape::Unit) => format!(
            "impl ::serde::Serialize for {name} {{ \
               fn serialize_value(&self) -> ::serde::Value {{ ::serde::Value::Null }} }}"
        ),
        Item::Struct(name, StructShape::Tuple(1)) => format!(
            "impl ::serde::Serialize for {name} {{ \
               fn serialize_value(&self) -> ::serde::Value {{ \
                 ::serde::Serialize::serialize_value(&self.0) }} }}"
        ),
        Item::Struct(name, StructShape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize_value(&self) -> ::serde::Value {{ \
                     ::serde::Value::Array(::std::vec![{}]) }} }}",
                elems.join(",")
            )
        }
        Item::Struct(name, StructShape::Named(fields)) => {
            let body = ser_named_fields(fields, "&self.");
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                           ::std::string::String::from(\"{vn}\")),"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![\
                           (::std::string::String::from(\"{vn}\"), \
                            ::serde::Serialize::serialize_value(x0))]),"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize_value(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                               (::std::string::String::from(\"{vn}\"), \
                                ::serde::Value::Array(::std::vec![{elems}]))]),",
                            binds = binders.join(","),
                            elems = elems.join(","),
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let body = ser_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => \
                               ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {body})]),",
                            binds = binders.join(","),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize_value(&self) -> ::serde::Value {{ \
                     match self {{ {arms} }} }} }}"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct(name, StructShape::Unit) => format!(
            "impl ::serde::Deserialize for {name} {{ \
               fn deserialize_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ \
                 match v {{ \
                   ::serde::Value::Null => ::std::result::Result::Ok({name}), \
                   other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"null\", \"{name}\", other)), }} }} }}"
        ),
        Item::Struct(name, StructShape::Tuple(1)) => format!(
            "impl ::serde::Deserialize for {name} {{ \
               fn deserialize_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ \
                 ::std::result::Result::Ok({name}(\
                   ::serde::Deserialize::deserialize_value(v)?)) }} }}"
        ),
        Item::Struct(name, StructShape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&xs[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{ \
                     match v {{ \
                       ::serde::Value::Array(xs) if xs.len() == {n} => \
                         ::std::result::Result::Ok({name}({elems})), \
                       other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"array of {n}\", \"{name}\", other)), }} }} }}",
                elems = elems.join(","),
            )
        }
        Item::Struct(name, StructShape::Named(fields)) => {
            let inits = de_named_fields(name, fields, "v");
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{ \
                     if ::serde::Value::as_object(v).is_none() {{ \
                       return ::std::result::Result::Err(::serde::DeError::expected(\
                         \"object\", \"{name}\", v)); }} \
                     ::std::result::Result::Ok({name} {{ {inits} }}) }} }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                           ::serde::Deserialize::deserialize_value(inner)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize_value(&xs[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{ \
                               ::serde::Value::Array(xs) if xs.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vn}({elems})), \
                               other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\
                                   \"array of {n}\", \"{name}::{vn}\", other)), }},",
                            elems = elems.join(","),
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits = de_named_fields(&format!("{name}::{vn}"), fields, "inner");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               if ::serde::Value::as_object(inner).is_none() {{ \
                                 return ::std::result::Result::Err(\
                                   ::serde::DeError::expected(\
                                     \"object\", \"{name}::{vn}\", inner)); }} \
                               ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{ \
                     match v {{ \
                       ::serde::Value::Str(s) => match s.as_str() {{ \
                         {unit_arms} \
                         other => ::std::result::Result::Err(::serde::DeError(\
                           ::std::format!(\"unknown variant `{{other}}` of {name}\"))), }}, \
                       ::serde::Value::Object(fields) if fields.len() == 1 => {{ \
                         let (tag, inner) = &fields[0]; \
                         match tag.as_str() {{ \
                           {tagged_arms} \
                           other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))), }} }}, \
                       other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"string or single-key object\", \"{name}\", other)), }} }} }}"
            )
        }
    }
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            return format!("compile_error!(\"{escaped}\");").parse().unwrap();
        }
    };
    let code = if serialize {
        generate_serialize(&item)
    } else {
        generate_deserialize(&item)
    };
    code.parse()
        .expect("serde_derive shim generated invalid Rust")
}

/// Derive `serde::Serialize` (shimmed, Value-based).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive `serde::Deserialize` (shimmed, Value-based).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}
