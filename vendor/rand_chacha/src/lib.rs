//! Vendored ChaCha12 generator for offline builds.
//!
//! Implements the ChaCha stream cipher core (D. J. Bernstein) with 12
//! rounds, exposed through the same `ChaCha12Rng` / `rand_core` paths the
//! real `rand_chacha` crate provides. Output is a fully specified, portable
//! function of the seed — which is the property `qsched_sim::rng` relies on
//! (the workspace pins determinism, not upstream's exact byte stream).

pub mod rand_core {
    //! Re-exports mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

/// A deterministic RNG driven by the ChaCha12 block function.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key words (seed), constant across blocks.
    key: [u32; 8],
    /// 64-bit block counter | 64-bit stream id, words 12..16 of the state.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // stream id low
        state[15] = 0; // stream id high
        let mut w = state;
        for _ in 0..ROUNDS / 2 {
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = w[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha12Rng::from_seed([7u8; 32]);
        let mut b = ChaCha12Rng::from_seed([7u8; 32]);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::from_seed([1u8; 32]);
        let mut b = ChaCha12Rng::from_seed([2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn words_are_well_distributed() {
        // Crude sanity: mean of scaled u64 draws near 0.5.
        let mut r = ChaCha12Rng::from_seed([9u8; 32]);
        let mean: f64 = (0..10_000)
            .map(|_| (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
