//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in offline sandboxes with no crates.io access, so
//! the external `rand` crate is replaced by this shim. It implements exactly
//! the surface the workspace uses — [`RngCore`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `sample_iter`), [`SeedableRng`], and the
//! [`distributions::Standard`] distribution — with the same value semantics
//! as upstream `rand` (53-bit uniform floats, Lemire-style integer ranges).
//! It is *not* a cryptographic library and must never be used as one.

/// A low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from an explicit seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, splitmixed across the full seed width.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut z = state;
        for chunk in bytes.chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            let le = x.to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&le[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The subset of `rand::distributions` the workspace touches.

    use super::{Rng, RngCore};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

        /// Iterator of draws, consuming the generator.
        fn sample_iter<R: Rng + Sized>(self, rng: R) -> DistIter<Self, R, T>
        where
            Self: Sized,
        {
            DistIter {
                dist: self,
                rng,
                _marker: core::marker::PhantomData,
            }
        }
    }

    /// Iterator returned by [`Distribution::sample_iter`].
    pub struct DistIter<D, R, T> {
        dist: D,
        rng: R,
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.dist.sample(&mut self.rng))
        }
    }

    /// The "natural" uniform distribution for a type (full integer range,
    /// `[0, 1)` for floats) — mirrors `rand::distributions::Standard`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty => $via:ident),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                  i8 => next_u32, i16 => next_u32, i32 => next_u32,
                  u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits, uniform in [0, 1) — identical to upstream rand.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl RngCore for super::rngs::SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

pub mod rngs {
    //! Minimal generators, for completeness of the shim.

    /// A small fast non-cryptographic generator (xorshift*-style).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }

    impl SmallRng {
        pub(crate) fn next(&mut self) -> u64 {
            // xorshift64* — adequate for simulation workloads.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl super::SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            let s = u64::from_le_bytes(seed);
            SmallRng {
                state: if s == 0 { 0x9E37_79B9_7F4A_7C15 } else { s },
            }
        }
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range: {:?}", self);
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Same scheme as rand's UniformFloat: scale then offset.
        let v = u * (self.end - self.start) + self.start;
        if v < self.end {
            v
        } else {
            // Guard against rounding up to the excluded endpoint.
            f64::from_bits(self.end.to_bits() - 1)
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range: {:?}", self);
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = u * (self.end - self.start) + self.start;
        if v < self.end {
            v
        } else {
            f32::from_bits(self.end.to_bits() - 1)
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Unbiased via rejection on the widened multiply.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if x <= zone {
                        return (self.start as i128 + (x % span) as i128) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                if lo == hi {
                    return lo;
                }
                if let Some(end) = hi.checked_add(1) {
                    (lo..end).sample_single(rng)
                } else {
                    // Full-width inclusive range: no rejection needed.
                    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (lo as i128).wrapping_add((x % (hi as u128 - lo as u128 + 1)) as i128) as $t
                }
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any type `Standard` supports.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Draw from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }

    /// Iterator of draws from `dist`, consuming the generator.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        dist: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        dist.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn float_draws_are_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn sample_iter_streams() {
        let r = SmallRng::seed_from_u64(9);
        let v: Vec<u64> = r.sample_iter(Standard).take(4).collect();
        assert_eq!(v.len(), 4);
    }
}
