//! Vendored, dependency-free benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — median of per-sample mean iteration
//! times after a short warm-up — but real: benches still produce usable
//! relative numbers offline.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    /// Time `f`, called in batches, collecting `sample_count` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: target ~5 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        self.iters_per_sample = per_sample as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let total = start.elapsed().as_secs_f64();
            self.samples.push(total / self.iters_per_sample as f64);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(group: &str, name: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_count,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    b.samples
        .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{group}/{name}: median {} (min {}, max {}, {} samples × {} iters)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        b.samples.len(),
        b.iters_per_sample,
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Upper bound on measurement time — accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_count, &mut f);
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility with criterion's CLI plumbing.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Default samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(1);
        self
    }

    /// Open a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one("bench", &id.into(), self.sample_count, &mut f);
        self
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&self) {}
}

/// Define a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
