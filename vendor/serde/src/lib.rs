//! Vendored serde facade for offline builds.
//!
//! Real serde streams through a `Serializer`/`Visitor` pair; this shim
//! instead round-trips every type through a self-describing [`Value`] tree
//! (the only consumer in this workspace is `serde_json`). The derive macros
//! in `serde_derive` generate [`Serialize::serialize_value`] and
//! [`Deserialize::deserialize_value`] impls with serde's externally-tagged
//! enum representation and support for `#[serde(default)]`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A self-describing JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (or any i64).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved (struct declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A stable, compact textual form used for canonical ordering of
    /// unordered collections (sets, map keys).
    fn canonical(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => format!("{f:?}"),
            Value::Str(s) => s.clone(),
            Value::Array(xs) => {
                let inner: Vec<String> = xs.iter().map(Value::canonical).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Object(fs) => {
                let inner: Vec<String> = fs
                    .iter()
                    .map(|(k, v)| format!("{k}:{}", v.canonical()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Deserialization error: a human-readable message with no further structure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, found Y while deserializing T" helper.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        DeError(format!("expected {what} for {ty}, found {found:?}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` as a value tree.
    fn serialize_value(&self) -> Value;
}

/// Construction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool", v)),
        }
    }
}

macro_rules! serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

macro_rules! serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // serde_json serializes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", stringify!($t), v)),
                }
            }
        }
    )*};
}
serde_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // A Value tree owns its strings, so a borrowed result must leak.
            // This path only runs for config/template loading — a handful of
            // short names per process — so the leak is bounded and harmless.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", "&'static str", v)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", "char", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::expected("array", "Vec", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) if xs.len() == N => {
                let items: Vec<T> = xs
                    .iter()
                    .map(T::deserialize_value)
                    .collect::<Result<_, _>>()?;
                items
                    .try_into()
                    .map_err(|_| DeError("array length mismatch".into()))
            }
            _ => Err(DeError::expected("fixed-size array", "[T; N]", v)),
        }
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(xs) if xs.len() == LEN => {
                        Ok(($($name::deserialize_value(&xs[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("fixed-size array", "tuple", v)),
                }
            }
        }
    )*};
}
serde_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Render a map key: string keys pass through; any other scalar uses its
/// canonical text (serde_json requires object keys to be strings).
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.serialize_value() {
        Value::Str(s) => s,
        other => other.canonical(),
    }
}

/// Recover a map key from its string form, trying numeric shapes first.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::deserialize_value(&Value::Float(f)) {
            return Ok(k);
        }
    }
    K::deserialize_value(&Value::Str(s.to_string()))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap", v)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.serialize_value()))
            .collect();
        // Hash iteration order is unstable; sort for deterministic output.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "HashMap", v)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        items.sort_by_key(|v| v.canonical());
        Value::Array(items)
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::expected("array", "HashSet", v)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::expected("array", "BTreeSet", v)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let v = Some(3u32).serialize_value();
        assert_eq!(v, Value::UInt(3));
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(7u16, 1.5f64);
        let v = m.serialize_value();
        assert_eq!(v.get("7"), Some(&Value::Float(1.5)));
        let back: BTreeMap<u16, f64> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back[&7], 1.5);
    }

    #[test]
    fn hashset_output_is_sorted() {
        let mut s = HashSet::new();
        for x in [9u64, 1, 5] {
            s.insert(x);
        }
        match s.serialize_value() {
            Value::Array(xs) => {
                assert_eq!(xs, vec![Value::UInt(1), Value::UInt(5), Value::UInt(9)])
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
