//! Vendored JSON front-end for the serde shim: `to_string`,
//! `to_string_pretty`, `from_str`, `to_value` and the `json!` macro over
//! [`serde::Value`]. Output formatting follows serde_json's conventions
//! (compact `{"k":v}`, pretty two-space indent, shortest-round-trip floats,
//! non-finite floats as `null`).

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error with a readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.serialize_value()
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    if !f.is_finite() {
        return "null".into();
    }
    // `{}` prints the shortest string that round-trips; mirror serde_json by
    // keeping integral floats distinguishable (serde_json prints 1.0 as 1.0).
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&float_repr(*f)),
        Value::Str(s) => escape_into(s, out),
        Value::Array(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(x, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(x, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(xs) if !xs.is_empty() => {
            out.push_str("[\n");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&v.serialize_value(), &mut out);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&v.serialize_value(), 0, &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat(b'\\') && self.eat(b'u') {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let low = std::str::from_utf8(hex2)
                                        .ok()
                                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                                        .ok_or_else(|| self.err("bad surrogate"))?;
                                    self.pos += 4;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 256 {
            return Err(self.err("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Value::Array(items));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected `,` or `]`"));
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return Err(self.err("expected `:`"));
                    }
                    let val = self.parse_value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Value::Object(fields));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected `,` or `}`"));
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::deserialize_value(&v)?)
}

/// Build a [`Value`] with JSON-literal syntax. Supports the shapes the
/// workspace uses: object literals whose values are serializable
/// expressions, array literals, and bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&30000.0f64).unwrap(), "30000.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        let x: f64 = from_str("2.5e3").unwrap();
        assert_eq!(x, 2500.0);
    }

    #[test]
    fn round_trip_collections() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let m: std::collections::BTreeMap<String, f64> =
            from_str(r#"{"a": 1.0, "b": 2.5}"#).unwrap();
        assert_eq!(m["b"], 2.5);
    }

    #[test]
    fn pretty_format_is_indented() {
        let v = json!({ "a": 1u32, "b": [true, false] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with("{\n  \"a\": 1,\n  \"b\": [\n    true,\n    false\n  ]\n}"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s: String = from_str(r#""a\"b\\cA\n""#).unwrap();
        assert_eq!(s, "a\"b\\cA\n");
    }
}
