//! Vendored property-testing harness for offline builds.
//!
//! Provides the subset of the `proptest` surface this workspace's tests use:
//! the `proptest!` macro, `prop_assert!` family, `any::<T>()`, numeric range
//! strategies, tuple strategies and `prop::collection::vec`. Cases are
//! generated from a seed derived deterministically from the test name, so
//! every run replays the identical case sequence. Shrinking is not
//! implemented; on failure the offending inputs are printed verbatim.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Number of generated cases per property.
pub const CASES: u32 = 128;

/// Deterministic case generator handed to strategies.
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// A runner seeded from an arbitrary string (typically the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { state: h | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rt: &mut TestRunner) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rt: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rt.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rt: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rt.next_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            f64::from_bits(self.end.to_bits() - 1)
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rt: &mut TestRunner) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (rt.next_f64() as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            f32::from_bits(self.end.to_bits() - 1)
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rt: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(rt),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

/// The `proptest::prelude::any::<T>()` entry point.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rt: &mut TestRunner) -> $t {
                rt.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rt: &mut TestRunner) -> bool {
        rt.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rt: &mut TestRunner) -> f64 {
        // Finite floats over a wide range, biased toward moderate magnitudes.
        let m = rt.next_f64() * 2.0 - 1.0;
        let e = rt.below(61) as i32 - 30;
        m * 2f64.powi(e)
    }
}

pub mod collection {
    //! `prop::collection` strategies.

    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rt: &mut TestRunner) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rt.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rt)).collect()
        }
    }
}

/// Per-block configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to generate for each property in the block.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// Mirror of `proptest::test_runner::Config::with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker payload used by `prop_assume!` to discard a case without failing.
#[derive(Debug)]
pub struct Rejected;

thread_local! {
    static QUIET_PANIC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once) a panic hook that stays silent for `prop_assume!` rejects
/// while delegating every real panic to the previous hook.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANIC.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Used by `prop_assume!`: raise the discard marker without console noise.
pub fn reject_case() -> ! {
    QUIET_PANIC.with(|q| q.set(true));
    std::panic::panic_any(Rejected);
}

/// Drive one property: `CASES` deterministic cases; on panic, print the
/// case's rendered inputs and re-panic. Cases discarded by `prop_assume!`
/// are skipped (they do not count as failures).
pub fn run_property(name: &str, case: impl FnMut(&mut TestRunner) -> String) {
    run_property_with(ProptestConfig::default(), name, case);
}

/// [`run_property`] with an explicit [`ProptestConfig`].
pub fn run_property_with(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRunner) -> String,
) {
    install_quiet_hook();
    let cases = config.cases;
    let mut rt = TestRunner::from_name(name);
    for i in 0..cases {
        let mut described = String::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            described = case(&mut rt);
        }));
        QUIET_PANIC.with(|q| q.set(false));
        if let Err(payload) = result {
            if payload.downcast_ref::<Rejected>().is_some() {
                continue;
            }
            eprintln!("proptest '{name}' failed at case {i}/{cases}: {described}");
            resume_unwind(payload);
        }
    }
}

/// The `proptest!` macro: each enclosed `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property_with($cfg, stringify!($name), |__rt| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rt);)*
                    let __desc = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", $arg));
                        )*
                        s
                    };
                    $body
                    __desc
                });
            }
        )*
    };
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__rt| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rt);)*
                    let __desc = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", $arg));
                        )*
                        s
                    };
                    $body
                    __desc
                });
            }
        )*
    };
}

/// `prop_assume!` — discard the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            $crate::reject_case();
        }
    };
}

/// `prop_assert!` — plain assert (no shrinking machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain assert_ne.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! The glob-import surface tests rely on.

    pub use crate::{any, Any, ProptestConfig, Strategy, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_in_bounds(xs in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn tuples_compose(pairs in prop::collection::vec((1.0f64..2.0, 5u64..6), 1..3)) {
            for (f, u) in pairs {
                prop_assert!((1.0..2.0).contains(&f));
                prop_assert_eq!(u, 5);
            }
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRunner::from_name("t");
        let mut b = TestRunner::from_name("t");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
