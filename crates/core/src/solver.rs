//! The Performance Solver: chooses the cost-limit vector maximising total
//! utility, subject to `Σ Cᵢ = system cost limit` and a per-class floor.
//!
//! The planner formulates a [`PlanProblem`] from current measurements and
//! models; a [`Solver`] returns the optimal [`Plan`]. Three strategies are
//! provided (compared in the ablation benches):
//!
//! * [`GridSolver`] — exhaustive search over a discretised simplex; optimal
//!   up to the grid step, and cheap for the paper's 3-class problem.
//! * [`HillClimbSolver`] — local search moving budget between class pairs
//!   with a shrinking step; scales to many classes.
//! * [`ProportionalSolver`] — importance-proportional static split; a naive
//!   baseline that ignores models and goals.

use crate::class::Goal;
use crate::model::{OlapVelocityModel, OltpLinearModel};
use crate::plan::Plan;
use crate::utility::UtilityFn;
use qsched_dbms::query::{ClassId, QueryKind};
use qsched_dbms::Timerons;
use std::collections::BTreeMap;

/// Solver view of one service class.
#[derive(Debug, Clone)]
pub struct ClassState {
    /// The class.
    pub class: ClassId,
    /// Workload type (selects the model).
    pub kind: QueryKind,
    /// Business importance.
    pub importance: u8,
    /// Performance goal.
    pub goal: Goal,
    /// Limit currently in effect.
    pub current_limit: Timerons,
}

/// The optimisation problem handed to a [`Solver`].
pub struct PlanProblem<'a> {
    /// Total budget: `Σ limits` must equal this.
    pub system_limit: Timerons,
    /// Minimum limit per class (prevents starving a class of all budget,
    /// which would blind its model).
    pub floor: Timerons,
    /// The classes, in `ClassId` order.
    pub classes: Vec<ClassState>,
    /// Per-OLAP-class velocity models.
    pub olap_models: &'a BTreeMap<ClassId, OlapVelocityModel>,
    /// The (single) OLTP model, driven by the OLAP cost-limit total.
    pub oltp_model: &'a OltpLinearModel,
    /// The utility function.
    pub utility: &'a dyn UtilityFn,
}

impl PlanProblem<'_> {
    /// Total utility of a candidate limit vector (aligned with
    /// `self.classes`).
    pub fn evaluate(&self, limits: &[Timerons]) -> f64 {
        debug_assert_eq!(limits.len(), self.classes.len());
        let olap_total: Timerons = self
            .classes
            .iter()
            .zip(limits)
            .filter(|(c, _)| c.kind == QueryKind::Olap)
            .map(|(_, &l)| l)
            .sum();
        let mut total = 0.0;
        for (cs, &limit) in self.classes.iter().zip(limits) {
            let achievement = match cs.kind {
                QueryKind::Olap => {
                    let v = self
                        .olap_models
                        .get(&cs.class)
                        .map_or(0.5, |m| m.predict(limit));
                    cs.goal.achievement(v)
                }
                QueryKind::Oltp => {
                    let t = self.oltp_model.predict(olap_total);
                    cs.goal.achievement(t)
                }
            };
            total += self.utility.utility(cs.importance, achievement);
        }
        total
    }

    /// The vector of current limits, projected onto the feasible simplex.
    pub fn current_limits(&self) -> Vec<Timerons> {
        project_to_simplex(
            &self
                .classes
                .iter()
                .map(|c| c.current_limit)
                .collect::<Vec<_>>(),
            self.system_limit,
            self.floor,
        )
    }

    fn plan_from(&self, limits: Vec<Timerons>) -> Plan {
        Plan::new(self.classes.iter().map(|c| c.class).zip(limits).collect())
    }
}

/// Project a non-negative vector onto `{x : xᵢ ≥ floor, Σx = total}` by
/// clamping to the floor and scaling the surplus proportionally.
///
/// # Panics
/// Panics if `n·floor > total`.
pub fn project_to_simplex(x: &[Timerons], total: Timerons, floor: Timerons) -> Vec<Timerons> {
    let n = x.len();
    assert!(n > 0, "empty vector");
    let base = floor.get() * n as f64;
    assert!(
        base <= total.get() * (1.0 + 1e-9),
        "floors ({base}) exceed the budget ({})",
        total.get()
    );
    let spare = (total.get() - base).max(0.0);
    let surplus: f64 = x.iter().map(|v| (v.get() - floor.get()).max(0.0)).sum();
    if surplus <= 1e-12 {
        // Nothing above the floor: split the spare evenly.
        return x
            .iter()
            .map(|_| Timerons::new(floor.get() + spare / n as f64))
            .collect();
    }
    x.iter()
        .map(|v| {
            let over = (v.get() - floor.get()).max(0.0);
            Timerons::new(floor.get() + spare * over / surplus)
        })
        .collect()
}

/// Solver selection for configuration files (see
/// [`SchedulerConfig`](crate::scheduler::SchedulerConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SolverKind {
    /// Exhaustive grid search (the reproduction's default).
    #[default]
    Grid,
    /// Pairwise-transfer hill climbing.
    HillClimb,
    /// Importance-proportional static split (naive baseline).
    Proportional,
}

impl SolverKind {
    /// Instantiate the solver with default parameters.
    pub fn build(self) -> Box<dyn Solver> {
        match self {
            SolverKind::Grid => Box::new(GridSolver::default()),
            SolverKind::HillClimb => Box::new(HillClimbSolver::default()),
            SolverKind::Proportional => Box::new(ProportionalSolver),
        }
    }
}

/// A plan-search strategy.
pub trait Solver {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Find a (near-)optimal plan for the problem.
    fn solve(&self, problem: &PlanProblem<'_>) -> Plan;
}

/// Exhaustive search over a discretised simplex.
#[derive(Debug, Clone, Copy)]
pub struct GridSolver {
    /// Number of grid steps along each dimension.
    pub steps: u32,
}

impl Default for GridSolver {
    fn default() -> Self {
        GridSolver { steps: 60 }
    }
}

impl Solver for GridSolver {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn solve(&self, problem: &PlanProblem<'_>) -> Plan {
        let n = problem.classes.len();
        assert!(n >= 1);
        if n == 1 {
            return problem.plan_from(vec![problem.system_limit]);
        }
        let floor = problem.floor.get();
        let spare = problem.system_limit.get() - floor * n as f64;
        assert!(spare >= -1e-9, "floors exceed budget");
        let spare = spare.max(0.0);
        let step = spare / f64::from(self.steps);
        let current = problem.current_limits();

        let mut best: Option<(f64, f64, Vec<Timerons>)> = None; // (utility, -distance, limits)
        let mut candidate = vec![Timerons::ZERO; n];
        // Enumerate compositions of `steps` units into n parts.
        enumerate_compositions(self.steps, n, &mut vec![0u32; n], 0, &mut |units| {
            for (i, &u) in units.iter().enumerate() {
                candidate[i] = Timerons::new(floor + f64::from(u) * step);
            }
            let u = problem.evaluate(&candidate);
            let dist: f64 = candidate
                .iter()
                .zip(&current)
                .map(|(a, b)| (a.get() - b.get()).abs())
                .sum();
            let better = match &best {
                None => true,
                Some((bu, bd, _)) => u > bu + 1e-9 || (u > bu - 1e-9 && -dist > *bd + 1e-9),
            };
            if better {
                best = Some((u, -dist, candidate.clone()));
            }
        });
        problem.plan_from(best.expect("at least one candidate").2)
    }
}

/// Visit every way to split `units` across `n` slots.
fn enumerate_compositions(
    units: u32,
    n: usize,
    acc: &mut Vec<u32>,
    idx: usize,
    visit: &mut impl FnMut(&[u32]),
) {
    if idx == n - 1 {
        acc[idx] = units;
        visit(acc);
        return;
    }
    for u in 0..=units {
        acc[idx] = u;
        enumerate_compositions(units - u, n, acc, idx + 1, visit);
    }
}

/// Pairwise-transfer local search.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbSolver {
    /// Maximum improvement rounds.
    pub max_rounds: u32,
    /// Initial transfer size as a fraction of the system limit.
    pub initial_step_frac: f64,
    /// Stop when the transfer size falls below this fraction.
    pub min_step_frac: f64,
}

impl Default for HillClimbSolver {
    fn default() -> Self {
        HillClimbSolver {
            max_rounds: 200,
            initial_step_frac: 0.10,
            min_step_frac: 0.002,
        }
    }
}

impl Solver for HillClimbSolver {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn solve(&self, problem: &PlanProblem<'_>) -> Plan {
        let n = problem.classes.len();
        let mut limits = problem.current_limits();
        let mut best_u = problem.evaluate(&limits);
        let mut step = problem.system_limit.get() * self.initial_step_frac;
        let min_step = problem.system_limit.get() * self.min_step_frac;
        let floor = problem.floor.get();

        for _ in 0..self.max_rounds {
            let mut improved = false;
            let mut best_move: Option<(usize, usize, f64)> = None;
            for from in 0..n {
                if limits[from].get() - step < floor - 1e-9 {
                    continue;
                }
                for to in 0..n {
                    if to == from {
                        continue;
                    }
                    let mut cand = limits.clone();
                    cand[from] = Timerons::new(cand[from].get() - step);
                    cand[to] = Timerons::new(cand[to].get() + step);
                    let u = problem.evaluate(&cand);
                    if u > best_u + 1e-9 && best_move.is_none_or(|(_, _, bu)| u > bu) {
                        best_move = Some((from, to, u));
                    }
                }
            }
            if let Some((from, to, u)) = best_move {
                limits[from] = Timerons::new(limits[from].get() - step);
                limits[to] = Timerons::new(limits[to].get() + step);
                best_u = u;
                improved = true;
            }
            if !improved {
                step /= 2.0;
                if step < min_step {
                    break;
                }
            }
        }
        problem.plan_from(limits)
    }
}

/// Importance-proportional static split (naive ablation baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalSolver;

impl Solver for ProportionalSolver {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn solve(&self, problem: &PlanProblem<'_>) -> Plan {
        let total_imp: f64 = problem
            .classes
            .iter()
            .map(|c| f64::from(c.importance))
            .sum();
        let raw: Vec<Timerons> = problem
            .classes
            .iter()
            .map(|c| problem.system_limit * (f64::from(c.importance) / total_imp))
            .collect();
        problem.plan_from(project_to_simplex(
            &raw,
            problem.system_limit,
            problem.floor,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Goal;
    use crate::utility::GoalUtility;
    use qsched_sim::SimDuration;

    /// A canonical 3-class paper problem with controllable measurements.
    struct Fixture {
        olap_models: BTreeMap<ClassId, OlapVelocityModel>,
        oltp_model: OltpLinearModel,
        utility: GoalUtility,
    }

    impl Fixture {
        /// v1/v2 measured at 10K each; OLTP response measured at `t` secs
        /// with the OLAP total at 20 K and slope `s`.
        fn new(v1: f64, v2: f64, t: f64, s: f64) -> Self {
            let mut olap_models = BTreeMap::new();
            let mut m1 = OlapVelocityModel::new(Timerons::new(10_000.0));
            m1.observe(Some(v1), Timerons::new(10_000.0));
            let mut m2 = OlapVelocityModel::new(Timerons::new(10_000.0));
            m2.observe(Some(v2), Timerons::new(10_000.0));
            olap_models.insert(ClassId(1), m1);
            olap_models.insert(ClassId(2), m2);
            let mut oltp_model = OltpLinearModel::new(s, 1.0, Timerons::new(20_000.0));
            oltp_model.observe(Some(t), Timerons::new(20_000.0));
            Fixture {
                olap_models,
                oltp_model,
                utility: GoalUtility::default(),
            }
        }

        fn problem(&self) -> PlanProblem<'_> {
            PlanProblem {
                system_limit: Timerons::new(30_000.0),
                floor: Timerons::new(600.0),
                classes: vec![
                    ClassState {
                        class: ClassId(1),
                        kind: QueryKind::Olap,
                        importance: 1,
                        goal: Goal::VelocityAtLeast(0.4),
                        current_limit: Timerons::new(10_000.0),
                    },
                    ClassState {
                        class: ClassId(2),
                        kind: QueryKind::Olap,
                        importance: 2,
                        goal: Goal::VelocityAtLeast(0.6),
                        current_limit: Timerons::new(10_000.0),
                    },
                    ClassState {
                        class: ClassId(3),
                        kind: QueryKind::Oltp,
                        importance: 3,
                        goal: Goal::AvgResponseAtMost(SimDuration::from_millis(250)),
                        current_limit: Timerons::new(10_000.0),
                    },
                ],
                olap_models: &self.olap_models,
                oltp_model: &self.oltp_model,
                utility: &self.utility,
            }
        }
    }

    fn assert_sums_to_system(plan: &Plan) {
        assert!(
            (plan.total().get() - 30_000.0).abs() < 1.0,
            "total {}",
            plan.total().get()
        );
    }

    #[test]
    fn projection_respects_floor_and_total() {
        let x = vec![
            Timerons::new(0.0),
            Timerons::new(100.0),
            Timerons::new(300.0),
        ];
        let p = project_to_simplex(&x, Timerons::new(1_000.0), Timerons::new(50.0));
        let total: f64 = p.iter().map(|v| v.get()).sum();
        assert!((total - 1_000.0).abs() < 1e-6);
        for v in &p {
            assert!(v.get() >= 50.0 - 1e-9);
        }
        // Order preserved: bigger in, bigger out.
        assert!(p[2] > p[1]);
    }

    #[test]
    fn projection_handles_all_at_floor() {
        let x = vec![Timerons::ZERO, Timerons::ZERO];
        let p = project_to_simplex(&x, Timerons::new(100.0), Timerons::new(10.0));
        assert!((p[0].get() - 50.0).abs() < 1e-9);
        assert!((p[1].get() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn grid_solver_rescues_violated_oltp_class() {
        // OLTP at 0.5 s (goal 0.25 s), slope 2e-5 s/timeron: the solver must
        // cut the OLAP total by ≥ 12.5 K to bring OLTP to goal.
        let f = Fixture::new(0.8, 0.9, 0.5, 2e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        assert_sums_to_system(&plan);
        let olap_total = plan.total_where(|c| c != ClassId(3));
        assert!(
            olap_total.get() <= 8_000.0,
            "expected deep OLAP cut, got OLAP total {}",
            olap_total.get()
        );
    }

    #[test]
    fn grid_solver_returns_resources_when_oltp_is_comfortable() {
        // OLTP at 0.05 s — far under goal. OLAP classes are struggling
        // (v=0.2, 0.3): the solver should push budget to OLAP.
        let f = Fixture::new(0.2, 0.3, 0.05, 1e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        assert_sums_to_system(&plan);
        let olap_total = plan.total_where(|c| c != ClassId(3));
        assert!(
            olap_total.get() >= 22_000.0,
            "expected generous OLAP budget, got {}",
            olap_total.get()
        );
    }

    #[test]
    fn grid_solver_favours_more_important_olap_class_under_scarcity() {
        // Both OLAP classes violated and OLTP needs most of the budget:
        // class 2 (importance 2) must not end up worse off than class 1.
        let f = Fixture::new(0.2, 0.2, 0.3, 2e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        let c1 = plan.limit(ClassId(1)).unwrap();
        let c2 = plan.limit(ClassId(2)).unwrap();
        assert!(
            c2.get() >= c1.get() - 1.0,
            "class 2 ({}) should not trail class 1 ({})",
            c2.get(),
            c1.get()
        );
    }

    #[test]
    fn solvers_agree_on_the_easy_problem() {
        let f = Fixture::new(0.5, 0.6, 0.5, 2e-5);
        let p = f.problem();
        let grid = GridSolver::default().solve(&p);
        let hill = HillClimbSolver::default().solve(&p);
        let gu = p.evaluate(&grid.limits().iter().map(|&(_, l)| l).collect::<Vec<_>>());
        let hu = p.evaluate(&hill.limits().iter().map(|&(_, l)| l).collect::<Vec<_>>());
        // Hill climbing must reach within a small margin of the grid optimum.
        assert!(hu >= gu - 0.05, "hill {hu} far below grid {gu}");
        assert_sums_to_system(&hill);
    }

    #[test]
    fn proportional_solver_splits_by_importance() {
        let f = Fixture::new(0.5, 0.5, 0.2, 1e-5);
        let p = f.problem();
        let plan = ProportionalSolver.solve(&p);
        assert_sums_to_system(&plan);
        let c1 = plan.limit(ClassId(1)).unwrap().get();
        let c3 = plan.limit(ClassId(3)).unwrap().get();
        assert!(
            (c3 / c1 - 3.0).abs() < 0.2,
            "importance ratio should be ~3, got {}",
            c3 / c1
        );
    }

    #[test]
    fn grid_plans_always_respect_floor() {
        let f = Fixture::new(0.9, 0.9, 0.9, 5e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        for &(_, l) in plan.limits() {
            assert!(l.get() >= 600.0 - 1e-6, "limit {l:?} below floor");
        }
    }
}
