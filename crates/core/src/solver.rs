//! The Performance Solver: chooses the cost-limit vector maximising total
//! utility, subject to `Σ Cᵢ = system cost limit` and a per-class floor.
//!
//! The planner formulates a [`PlanProblem`] from current measurements and
//! models; a [`Solver`] returns the optimal [`Plan`]. Four strategies are
//! provided (compared in the ablation benches):
//!
//! * [`GridSolver`] — exhaustive search over a discretised simplex; optimal
//!   up to the grid step, and cheap for the paper's 3-class problem. It is
//!   the executable spec: combinatorially explosive past ~5 classes, but the
//!   oracle the scalable solvers are proven against.
//! * [`MarginalSolver`] — greedy marginal-utility water-filling over the
//!   same discretised simplex: O(steps · n log n), memoized model
//!   evaluations, warm-started from the previous plan. The many-class
//!   default.
//! * [`HillClimbSolver`] — local search moving budget between class pairs
//!   with a shrinking step; scales to many classes but converges to coarser
//!   optima than the marginal solver.
//! * [`ProportionalSolver`] — importance-proportional static split; a naive
//!   baseline that ignores models and goals.

use crate::class::Goal;
use crate::model::{OlapVelocityModel, OltpLinearModel};
use crate::plan::Plan;
use crate::utility::UtilityFn;
use qsched_dbms::query::{ClassId, QueryKind};
use qsched_dbms::Timerons;
use std::cell::RefCell;
use std::collections::{BTreeMap, BinaryHeap};

/// Solver view of one service class.
#[derive(Debug, Clone)]
pub struct ClassState {
    /// The class.
    pub class: ClassId,
    /// Workload type (selects the model).
    pub kind: QueryKind,
    /// Business importance.
    pub importance: u8,
    /// Performance goal.
    pub goal: Goal,
    /// Limit currently in effect.
    pub current_limit: Timerons,
}

/// The optimisation problem handed to a [`Solver`].
pub struct PlanProblem<'a> {
    /// Total budget: `Σ limits` must equal this.
    pub system_limit: Timerons,
    /// Minimum limit per class (prevents starving a class of all budget,
    /// which would blind its model).
    pub floor: Timerons,
    /// The classes, in `ClassId` order. Borrowed so a steady-state caller
    /// (the scheduler's replan path) can refill one scratch buffer per
    /// interval instead of allocating a fresh vector.
    pub classes: &'a [ClassState],
    /// Per-OLAP-class velocity models.
    pub olap_models: &'a BTreeMap<ClassId, OlapVelocityModel>,
    /// The (single) OLTP model, driven by the OLAP cost-limit total.
    pub oltp_model: &'a OltpLinearModel,
    /// The utility function.
    pub utility: &'a dyn UtilityFn,
}

impl PlanProblem<'_> {
    /// Total utility of a candidate limit vector (aligned with
    /// `self.classes`).
    pub fn evaluate(&self, limits: &[Timerons]) -> f64 {
        debug_assert_eq!(limits.len(), self.classes.len());
        let olap_total: Timerons = self
            .classes
            .iter()
            .zip(limits)
            .filter(|(c, _)| c.kind == QueryKind::Olap)
            .map(|(_, &l)| l)
            .sum();
        let mut total = 0.0;
        for (cs, &limit) in self.classes.iter().zip(limits) {
            let achievement = match cs.kind {
                QueryKind::Olap => {
                    let v = self
                        .olap_models
                        .get(&cs.class)
                        .map_or(0.5, |m| m.predict(limit));
                    cs.goal.achievement(v)
                }
                QueryKind::Oltp => {
                    let t = self.oltp_model.predict(olap_total);
                    cs.goal.achievement(t)
                }
            };
            total += self.utility.utility(cs.importance, achievement);
        }
        total
    }

    /// The vector of current limits, projected onto the feasible simplex.
    pub fn current_limits(&self) -> Vec<Timerons> {
        project_to_simplex(
            &self
                .classes
                .iter()
                .map(|c| c.current_limit)
                .collect::<Vec<_>>(),
            self.system_limit,
            self.floor,
        )
    }

    fn plan_from(&self, limits: Vec<Timerons>) -> Plan {
        Plan::new(self.classes.iter().map(|c| c.class).zip(limits).collect())
    }
}

/// Project a non-negative vector onto `{x : xᵢ ≥ floor, Σx = total}` by
/// clamping to the floor and scaling the surplus proportionally.
///
/// # Panics
/// Panics if `n·floor > total`.
pub fn project_to_simplex(x: &[Timerons], total: Timerons, floor: Timerons) -> Vec<Timerons> {
    let n = x.len();
    assert!(n > 0, "empty vector");
    let base = floor.get() * n as f64;
    assert!(
        base <= total.get() * (1.0 + 1e-9),
        "floors ({base}) exceed the budget ({})",
        total.get()
    );
    let spare = (total.get() - base).max(0.0);
    let surplus: f64 = x.iter().map(|v| (v.get() - floor.get()).max(0.0)).sum();
    if surplus <= 1e-12 {
        // Nothing above the floor: split the spare evenly.
        return x
            .iter()
            .map(|_| Timerons::new(floor.get() + spare / n as f64))
            .collect();
    }
    x.iter()
        .map(|v| {
            let over = (v.get() - floor.get()).max(0.0);
            Timerons::new(floor.get() + spare * over / surplus)
        })
        .collect()
}

/// Solver selection for configuration files (see
/// [`SchedulerConfig`](crate::scheduler::SchedulerConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SolverKind {
    /// Exhaustive grid search (the reproduction's default).
    #[default]
    Grid,
    /// Greedy marginal-utility water-filling (the many-class solver).
    Marginal,
    /// Pairwise-transfer hill climbing.
    HillClimb,
    /// Importance-proportional static split (naive baseline).
    Proportional,
}

impl SolverKind {
    /// Instantiate the solver with default parameters.
    pub fn build(self) -> Box<dyn Solver> {
        match self {
            SolverKind::Grid => Box::new(GridSolver::default()),
            SolverKind::Marginal => Box::new(MarginalSolver::default()),
            SolverKind::HillClimb => Box::new(HillClimbSolver::default()),
            SolverKind::Proportional => Box::new(ProportionalSolver),
        }
    }

    /// Short name, matching [`Solver::name`] of the built solver.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Grid => "grid",
            SolverKind::Marginal => "marginal",
            SolverKind::HillClimb => "hill-climb",
            SolverKind::Proportional => "proportional",
        }
    }
}

/// A plan-search strategy.
///
/// `Send` because a controller (and the engine that owns it) may be handed
/// to a worker thread between allocation barriers in a sharded run.
pub trait Solver: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Find a (near-)optimal plan for the problem.
    fn solve(&self, problem: &PlanProblem<'_>) -> Plan;
}

/// Exhaustive search over a discretised simplex.
#[derive(Debug, Clone, Copy)]
pub struct GridSolver {
    /// Number of grid steps along each dimension.
    pub steps: u32,
}

impl Default for GridSolver {
    fn default() -> Self {
        GridSolver { steps: 60 }
    }
}

impl Solver for GridSolver {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn solve(&self, problem: &PlanProblem<'_>) -> Plan {
        let n = problem.classes.len();
        assert!(n >= 1);
        if n == 1 {
            return problem.plan_from(vec![problem.system_limit]);
        }
        let floor = problem.floor.get();
        let spare = problem.system_limit.get() - floor * n as f64;
        assert!(spare >= -1e-9, "floors exceed budget");
        let spare = spare.max(0.0);
        let step = spare / f64::from(self.steps);
        let current = problem.current_limits();

        let mut best: Option<(f64, f64, Vec<Timerons>)> = None; // (utility, -distance, limits)
        let mut candidate = vec![Timerons::ZERO; n];
        // Enumerate compositions of `steps` units into n parts.
        enumerate_compositions(self.steps, n, &mut vec![0u32; n], 0, &mut |units| {
            for (i, &u) in units.iter().enumerate() {
                candidate[i] = Timerons::new(floor + f64::from(u) * step);
            }
            let u = problem.evaluate(&candidate);
            let dist: f64 = candidate
                .iter()
                .zip(&current)
                .map(|(a, b)| (a.get() - b.get()).abs())
                .sum();
            let better = match &best {
                None => true,
                Some((bu, bd, _)) => u > bu + 1e-9 || (u > bu - 1e-9 && -dist > *bd + 1e-9),
            };
            if better {
                best = Some((u, -dist, candidate.clone()));
            }
        });
        problem.plan_from(best.expect("at least one candidate").2)
    }
}

/// Visit every way to split `units` across `n` slots.
fn enumerate_compositions(
    units: u32,
    n: usize,
    acc: &mut Vec<u32>,
    idx: usize,
    visit: &mut impl FnMut(&[u32]),
) {
    if idx == n - 1 {
        acc[idx] = units;
        visit(acc);
        return;
    }
    for u in 0..=units {
        acc[idx] = u;
        enumerate_compositions(units - u, n, acc, idx + 1, visit);
    }
}

/// Greedy marginal-utility water-filling over the discretised simplex.
///
/// Works on the same `steps`-unit lattice as [`GridSolver`] but exploits the
/// separability of the objective: each OLAP class's utility depends only on
/// its own limit, and every OLTP class's utility depends only on the total
/// budget withheld from the OLAP classes (the paper's indirect control), so
/// the OLTP classes collapse into a single *pool* slot. The solve is then
///
/// 1. **Greedy prefix fill** — allocate budget units one at a time to the
///    OLAP slot with the highest marginal utility (max-heap of marginals),
///    recording the optimal OLAP utility `G(m)` for every prefix budget `m`.
///    Exact for concave per-slot utilities, which is what the paper's goal
///    utility yields.
/// 2. **Pool scan** — pick the OLTP pool size `U` maximising
///    `f_pool(U) + G(steps − U)`. This sidesteps the local-optimum trap of
///    pure single-unit moves: the OLTP response-time utility is convex in
///    its own budget, so a deep OLAP cut can pay off even when the first
///    unit does not.
/// 3. **Warm start + polish** — the previous plan (the problem's current
///    limits) is quantised onto the lattice; the better of {scan candidate,
///    warm start} is polished by single-unit transfers from the
///    lowest-marginal-loss slot to the highest-marginal-gain slot until no
///    improving move remains (two lazily-invalidated heaps).
///
/// Every model evaluation — `OlapVelocityModel::predict`,
/// `OltpLinearModel::predict`, `Goal::achievement`, the utility function —
/// is memoized per `(slot, units)` per solve, so no point of the lattice is
/// evaluated twice. Total work is O(steps · log n + moves · log n) per
/// solve; in steady state the warm start is already optimal and the polish
/// exits after one no-improving-move check.
///
/// Scratch buffers (memo tables, heaps, unit vectors) live in a `RefCell`
/// and are reused across solves, so a long-running scheduler allocates only
/// on the first replan or when the class count grows.
#[derive(Debug)]
pub struct MarginalSolver {
    /// Base number of budget units along the simplex (same lattice as
    /// [`GridSolver::steps`]). The effective resolution is
    /// `max(steps, 8·n)`: a fixed lattice starves most classes of
    /// above-floor budget once `n` approaches `steps`, so the lattice
    /// refines with the class count (the solve stays O(steps · log n)).
    pub steps: u32,
    scratch: RefCell<MarginalScratch>,
}

impl Default for MarginalSolver {
    /// Base lattice of 480 = 8 × the grid's 60 steps: every grid lattice
    /// point is also a marginal lattice point, so the marginal optimum can
    /// only match or beat the grid optimum, and there is enough resolution
    /// to out-place the continuous hill climber. A solve is O(steps · log n)
    /// — still microseconds.
    fn default() -> Self {
        MarginalSolver::with_steps(8 * GridSolver::default().steps)
    }
}

#[derive(Debug, Default)]
struct MarginalScratch {
    /// Per-slot memoized slot utility; `NaN` = not yet computed this solve.
    memo: Vec<Vec<f64>>,
    /// Working allocation, in slot order.
    units: Vec<u32>,
    /// Warm-start allocation quantised from the problem's current limits.
    warm: Vec<u32>,
    /// `g_prefix[m]` = greedy OLAP utility with `m` units across OLAP slots.
    g_prefix: Vec<f64>,
    /// Slot that received OLAP unit `m` during the greedy prefix fill.
    fill_slot: Vec<usize>,
    /// Class indices of the OLAP classes, and of the pooled OLTP classes.
    olap: Vec<usize>,
    oltp: Vec<usize>,
    /// Real-valued quantisation targets (largest-remainder scratch).
    targets: Vec<f64>,
    gain_heap: BinaryHeap<Cand>,
    loss_heap: BinaryHeap<Cand>,
    /// Final limits, aligned with the problem's class order.
    limits: Vec<Timerons>,
}

/// A heap candidate: `val` is the marginal (negated for the loss heap so the
/// max-heap pops the *smallest* loss). Ties break towards the lowest slot
/// index so solves are deterministic.
#[derive(Debug, Clone, Copy)]
struct Cand {
    val: f64,
    slot: usize,
    /// The allocation the marginal was computed at; a popped entry is stale
    /// when the slot has moved since.
    at: u32,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.val
            .total_cmp(&other.val)
            .then_with(|| other.slot.cmp(&self.slot))
            .then_with(|| other.at.cmp(&self.at))
    }
}

/// Memoized per-slot utility evaluation for one solve.
struct SlotEval<'a, 'b> {
    problem: &'a PlanProblem<'b>,
    olap: &'a [usize],
    oltp: &'a [usize],
    floor: f64,
    step: f64,
    steps: u32,
    /// `Σ floors` of the OLAP classes: the OLAP total at zero OLAP units.
    olap_base: f64,
}

impl SlotEval<'_, '_> {
    /// Number of slots: each OLAP class, plus one pooled OLTP slot.
    fn n_slots(&self) -> usize {
        self.olap.len() + usize::from(!self.oltp.is_empty())
    }

    fn is_pool(&self, slot: usize) -> bool {
        slot == self.olap.len()
    }

    /// Slot utility at `u` units, memoized per `(slot, u)`.
    fn value(&self, memo: &mut [Vec<f64>], slot: usize, u: u32) -> f64 {
        let cached = memo[slot][u as usize];
        if !cached.is_nan() {
            return cached;
        }
        let v = if self.is_pool(slot) {
            // All OLTP classes see the same OLAP total: the budget the pool
            // holds is exactly the budget withheld from the OLAP classes.
            let olap_total = Timerons::new(self.olap_base + f64::from(self.steps - u) * self.step);
            let t = self.problem.oltp_model.predict(olap_total);
            self.oltp
                .iter()
                .map(|&ci| {
                    let cs = &self.problem.classes[ci];
                    self.problem
                        .utility
                        .utility(cs.importance, cs.goal.achievement(t))
                })
                .sum()
        } else {
            let cs = &self.problem.classes[self.olap[slot]];
            let limit = Timerons::new(self.floor + f64::from(u) * self.step);
            let vel = self
                .problem
                .olap_models
                .get(&cs.class)
                .map_or(0.5, |m| m.predict(limit));
            self.problem
                .utility
                .utility(cs.importance, cs.goal.achievement(vel))
        };
        memo[slot][u as usize] = v;
        v
    }

    /// Marginal gain of the `u → u+1` move for `slot`.
    fn gain(&self, memo: &mut [Vec<f64>], slot: usize, u: u32) -> f64 {
        self.value(memo, slot, u + 1) - self.value(memo, slot, u)
    }

    /// Total utility of an allocation (sum of slot utilities).
    fn total(&self, memo: &mut [Vec<f64>], units: &[u32]) -> f64 {
        units
            .iter()
            .enumerate()
            .map(|(s, &u)| self.value(memo, s, u))
            .sum()
    }
}

impl MarginalSolver {
    /// A solver with an explicit lattice resolution.
    ///
    /// # Panics
    /// Panics if `steps == 0`.
    pub fn with_steps(steps: u32) -> Self {
        assert!(steps >= 1, "need at least one budget unit");
        MarginalSolver {
            steps,
            scratch: RefCell::new(MarginalScratch::default()),
        }
    }

    /// Quantise real-valued above-floor budgets onto the unit lattice with
    /// the largest-remainder method, so `Σ units == steps` exactly.
    fn quantize(targets: &[f64], steps: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend(targets.iter().map(|&t| t.max(0.0) as u32));
        let mut assigned: u32 = out.iter().sum();
        // Guard against float overshoot: shave the largest slots first.
        while assigned > steps {
            let i = (0..out.len())
                .max_by_key(|&i| (out[i], usize::MAX - i))
                .expect("slots");
            out[i] -= 1;
            assigned -= 1;
        }
        let mut rem = steps - assigned;
        while rem > 0 {
            // Largest fractional remainder; ties towards the lowest slot.
            let i = (0..out.len())
                .max_by(|&a, &b| {
                    let fa = (targets[a].max(0.0) - f64::from(out[a])).min(1.0);
                    let fb = (targets[b].max(0.0) - f64::from(out[b])).min(1.0);
                    fa.total_cmp(&fb).then_with(|| b.cmp(&a))
                })
                .expect("slots");
            out[i] += 1;
            rem -= 1;
        }
    }
}

impl Solver for MarginalSolver {
    fn name(&self) -> &'static str {
        "marginal"
    }

    fn solve(&self, problem: &PlanProblem<'_>) -> Plan {
        let n = problem.classes.len();
        assert!(n >= 1);
        if n == 1 {
            return problem.plan_from(vec![problem.system_limit]);
        }
        // Refine the lattice with the class count: 60 units across 32
        // classes would hold most classes at the floor no matter what the
        // models say. At small n this equals the grid's lattice exactly.
        let steps = self.steps.max(8 * n as u32);
        let floor = problem.floor.get();
        let spare = problem.system_limit.get() - floor * n as f64;
        assert!(spare >= -1e-9, "floors exceed budget");
        let step = spare.max(0.0) / f64::from(steps);

        let s = &mut *self.scratch.borrow_mut();
        // Partition classes into OLAP slots and the OLTP pool.
        s.olap.clear();
        s.oltp.clear();
        for (i, c) in problem.classes.iter().enumerate() {
            match c.kind {
                QueryKind::Olap => s.olap.push(i),
                QueryKind::Oltp => s.oltp.push(i),
            }
        }
        let eval = SlotEval {
            problem,
            olap: &s.olap,
            oltp: &s.oltp,
            floor,
            step,
            steps,
            olap_base: floor * s.olap.len() as f64,
        };
        let n_slots = eval.n_slots();
        // Reset the memo in place (reuse allocations across solves; values
        // must be recomputed every solve because the models moved).
        s.memo.resize(n_slots, Vec::new());
        for m in &mut s.memo {
            m.clear();
            m.resize(steps as usize + 1, f64::NAN);
        }

        // Warm start: the previous plan, projected and quantised.
        let current = problem.current_limits();
        s.targets.clear();
        s.targets.resize(n_slots, 0.0);
        if step > 0.0 {
            for (slot, &ci) in s.olap.iter().enumerate() {
                s.targets[slot] = (current[ci].get() - floor) / step;
            }
            if !s.oltp.is_empty() {
                s.targets[s.olap.len()] = s
                    .oltp
                    .iter()
                    .map(|&ci| (current[ci].get() - floor) / step)
                    .sum();
            }
        }
        let targets = std::mem::take(&mut s.targets);
        Self::quantize(&targets, steps, &mut s.warm);
        s.targets = targets;

        // Phase 1: greedy prefix fill over the OLAP slots, recording G(m).
        let n_olap = s.olap.len();
        s.g_prefix.clear();
        s.fill_slot.clear();
        s.units.clear();
        s.units.resize(n_slots, 0);
        if n_olap > 0 {
            s.gain_heap.clear();
            let mut g0 = 0.0;
            for slot in 0..n_olap {
                g0 += eval.value(&mut s.memo, slot, 0);
                if steps >= 1 {
                    s.gain_heap.push(Cand {
                        val: eval.gain(&mut s.memo, slot, 0),
                        slot,
                        at: 0,
                    });
                }
            }
            s.g_prefix.push(g0);
            for m in 1..=steps {
                let cand = loop {
                    let c = s.gain_heap.pop().expect("an OLAP slot can always grow");
                    if c.at == s.units[c.slot] {
                        break c;
                    }
                };
                s.units[cand.slot] += 1;
                s.fill_slot.push(cand.slot);
                s.g_prefix.push(s.g_prefix[m as usize - 1] + cand.val);
                if s.units[cand.slot] < steps {
                    s.gain_heap.push(Cand {
                        val: eval.gain(&mut s.memo, cand.slot, s.units[cand.slot]),
                        slot: cand.slot,
                        at: s.units[cand.slot],
                    });
                }
            }
        }

        // Phase 2: scan the OLTP pool size. Ties prefer the pool size
        // closest to the warm start (plan stability), then the smaller pool.
        let pool = n_olap; // slot index of the pool, when it exists
        let best_pool_units = if s.oltp.is_empty() {
            0
        } else if n_olap == 0 {
            steps
        } else {
            let warm_pool = s.warm[pool];
            let mut best = (f64::NEG_INFINITY, 0u32);
            for u in 0..=steps {
                let total = eval.value(&mut s.memo, pool, u) + s.g_prefix[(steps - u) as usize];
                let better = total > best.0 + 1e-12
                    || (total > best.0 - 1e-12
                        && u.abs_diff(warm_pool) < best.1.abs_diff(warm_pool));
                if better {
                    best = (total, u);
                }
            }
            best.1
        };
        // Rebuild the unit vector for the chosen split from the fill order.
        s.units.iter_mut().for_each(|u| *u = 0);
        if !s.oltp.is_empty() {
            s.units[pool] = best_pool_units;
        }
        for m in 0..(steps - best_pool_units) as usize {
            s.units[s.fill_slot[m]] += 1;
        }

        // Phase 3: start from the better of {scan candidate, warm start},
        // then polish with single-unit transfers until no move improves.
        let cand_total = eval.total(&mut s.memo, &s.units);
        let warm_total = eval.total(&mut s.memo, &s.warm);
        if warm_total > cand_total + 1e-12 {
            s.units.copy_from_slice(&s.warm);
        }
        s.gain_heap.clear();
        s.loss_heap.clear();
        for slot in 0..n_slots {
            let u = s.units[slot];
            if u < steps {
                s.gain_heap.push(Cand {
                    val: eval.gain(&mut s.memo, slot, u),
                    slot,
                    at: u,
                });
            }
            if u > 0 {
                s.loss_heap.push(Cand {
                    val: -eval.gain(&mut s.memo, slot, u - 1),
                    slot,
                    at: u,
                });
            }
        }
        let move_cap = 4 * steps as usize + 16;
        for _ in 0..move_cap {
            // Top-2 valid receivers and donors (the best pair may collide).
            let mut recv = [None, None];
            while recv[1].is_none() {
                match s.gain_heap.pop() {
                    Some(c) if c.at == s.units[c.slot] && c.at < steps => {
                        if recv[0].is_none() {
                            recv[0] = Some(c);
                        } else {
                            recv[1] = Some(c);
                        }
                    }
                    Some(_) => continue, // stale
                    None => break,
                }
            }
            let mut don = [None, None];
            while don[1].is_none() {
                match s.loss_heap.pop() {
                    Some(c) if c.at == s.units[c.slot] && c.at > 0 => {
                        if don[0].is_none() {
                            don[0] = Some(c);
                        } else {
                            don[1] = Some(c);
                        }
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            // Best non-colliding (receiver, donor) pair by net improvement.
            let mut best: Option<(Cand, Cand)> = None;
            for r in recv.iter().flatten() {
                for d in don.iter().flatten() {
                    if r.slot == d.slot {
                        continue;
                    }
                    let net = r.val + d.val; // d.val is the negated loss
                    if best.is_none_or(|(br, bd)| net > br.val + bd.val) {
                        best = Some((*r, *d));
                    }
                }
            }
            // Re-seed the heaps with every still-valid popped entry.
            for c in recv.iter().flatten() {
                s.gain_heap.push(*c);
            }
            for c in don.iter().flatten() {
                s.loss_heap.push(*c);
            }
            let Some((r, d)) = best else { break };
            if r.val + d.val <= 1e-12 {
                break;
            }
            s.units[r.slot] += 1;
            s.units[d.slot] -= 1;
            for &slot in &[r.slot, d.slot] {
                let u = s.units[slot];
                if u < steps {
                    s.gain_heap.push(Cand {
                        val: eval.gain(&mut s.memo, slot, u),
                        slot,
                        at: u,
                    });
                }
                if u > 0 {
                    s.loss_heap.push(Cand {
                        val: -eval.gain(&mut s.memo, slot, u - 1),
                        slot,
                        at: u,
                    });
                }
            }
        }

        // Materialise limits in class order. Pool units are split across the
        // OLTP classes by largest remainder of their current shares.
        s.limits.clear();
        s.limits.resize(n, Timerons::ZERO);
        for (slot, &ci) in s.olap.iter().enumerate() {
            s.limits[ci] = Timerons::new(floor + f64::from(s.units[slot]) * step);
        }
        if !s.oltp.is_empty() {
            let pool_units = s.units[pool];
            let cur_above: f64 = s
                .oltp
                .iter()
                .map(|&ci| (current[ci].get() - floor).max(0.0))
                .sum();
            s.targets.clear();
            if cur_above > 1e-12 {
                let scale = f64::from(pool_units) / cur_above;
                s.targets.extend(
                    s.oltp
                        .iter()
                        .map(|&ci| (current[ci].get() - floor).max(0.0) * scale),
                );
            } else {
                s.targets.extend(
                    s.oltp
                        .iter()
                        .map(|_| f64::from(pool_units) / s.oltp.len() as f64),
                );
            }
            let targets = std::mem::take(&mut s.targets);
            let mut split = Vec::new();
            Self::quantize(&targets, pool_units, &mut split);
            s.targets = targets;
            for (&ci, &u) in s.oltp.iter().zip(&split) {
                s.limits[ci] = Timerons::new(floor + f64::from(u) * step);
            }
        }
        problem.plan_from(s.limits.clone())
    }
}

/// Pairwise-transfer local search.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbSolver {
    /// Maximum improvement rounds.
    pub max_rounds: u32,
    /// Initial transfer size as a fraction of the system limit.
    pub initial_step_frac: f64,
    /// Stop when the transfer size falls below this fraction.
    pub min_step_frac: f64,
}

impl Default for HillClimbSolver {
    fn default() -> Self {
        HillClimbSolver {
            max_rounds: 200,
            initial_step_frac: 0.10,
            min_step_frac: 0.002,
        }
    }
}

impl Solver for HillClimbSolver {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn solve(&self, problem: &PlanProblem<'_>) -> Plan {
        let n = problem.classes.len();
        let mut limits = problem.current_limits();
        let mut best_u = problem.evaluate(&limits);
        let mut step = problem.system_limit.get() * self.initial_step_frac;
        let min_step = problem.system_limit.get() * self.min_step_frac;
        let floor = problem.floor.get();

        for _ in 0..self.max_rounds {
            let mut improved = false;
            let mut best_move: Option<(usize, usize, f64)> = None;
            for from in 0..n {
                if limits[from].get() - step < floor - 1e-9 {
                    continue;
                }
                for to in 0..n {
                    if to == from {
                        continue;
                    }
                    let mut cand = limits.clone();
                    cand[from] = Timerons::new(cand[from].get() - step);
                    cand[to] = Timerons::new(cand[to].get() + step);
                    let u = problem.evaluate(&cand);
                    if u > best_u + 1e-9 && best_move.is_none_or(|(_, _, bu)| u > bu) {
                        best_move = Some((from, to, u));
                    }
                }
            }
            if let Some((from, to, u)) = best_move {
                limits[from] = Timerons::new(limits[from].get() - step);
                limits[to] = Timerons::new(limits[to].get() + step);
                best_u = u;
                improved = true;
            }
            if !improved {
                step /= 2.0;
                if step < min_step {
                    break;
                }
            }
        }
        problem.plan_from(limits)
    }
}

/// Importance-proportional static split (naive ablation baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalSolver;

impl Solver for ProportionalSolver {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn solve(&self, problem: &PlanProblem<'_>) -> Plan {
        let total_imp: f64 = problem
            .classes
            .iter()
            .map(|c| f64::from(c.importance))
            .sum();
        let raw: Vec<Timerons> = problem
            .classes
            .iter()
            .map(|c| problem.system_limit * (f64::from(c.importance) / total_imp))
            .collect();
        problem.plan_from(project_to_simplex(
            &raw,
            problem.system_limit,
            problem.floor,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Goal;
    use crate::utility::GoalUtility;
    use qsched_sim::SimDuration;

    /// A canonical 3-class paper problem with controllable measurements.
    struct Fixture {
        classes: Vec<ClassState>,
        olap_models: BTreeMap<ClassId, OlapVelocityModel>,
        oltp_model: OltpLinearModel,
        utility: GoalUtility,
    }

    impl Fixture {
        /// v1/v2 measured at 10K each; OLTP response measured at `t` secs
        /// with the OLAP total at 20 K and slope `s`.
        fn new(v1: f64, v2: f64, t: f64, s: f64) -> Self {
            let mut olap_models = BTreeMap::new();
            let mut m1 = OlapVelocityModel::new(Timerons::new(10_000.0));
            m1.observe(Some(v1), Timerons::new(10_000.0));
            let mut m2 = OlapVelocityModel::new(Timerons::new(10_000.0));
            m2.observe(Some(v2), Timerons::new(10_000.0));
            olap_models.insert(ClassId(1), m1);
            olap_models.insert(ClassId(2), m2);
            let mut oltp_model = OltpLinearModel::new(s, 1.0, Timerons::new(20_000.0));
            oltp_model.observe(Some(t), Timerons::new(20_000.0));
            Fixture {
                classes: vec![
                    ClassState {
                        class: ClassId(1),
                        kind: QueryKind::Olap,
                        importance: 1,
                        goal: Goal::VelocityAtLeast(0.4),
                        current_limit: Timerons::new(10_000.0),
                    },
                    ClassState {
                        class: ClassId(2),
                        kind: QueryKind::Olap,
                        importance: 2,
                        goal: Goal::VelocityAtLeast(0.6),
                        current_limit: Timerons::new(10_000.0),
                    },
                    ClassState {
                        class: ClassId(3),
                        kind: QueryKind::Oltp,
                        importance: 3,
                        goal: Goal::AvgResponseAtMost(SimDuration::from_millis(250)),
                        current_limit: Timerons::new(10_000.0),
                    },
                ],
                olap_models,
                oltp_model,
                utility: GoalUtility::default(),
            }
        }

        fn problem(&self) -> PlanProblem<'_> {
            PlanProblem {
                system_limit: Timerons::new(30_000.0),
                floor: Timerons::new(600.0),
                classes: &self.classes,
                olap_models: &self.olap_models,
                oltp_model: &self.oltp_model,
                utility: &self.utility,
            }
        }
    }

    fn assert_sums_to_system(plan: &Plan) {
        assert!(
            (plan.total().get() - 30_000.0).abs() < 1.0,
            "total {}",
            plan.total().get()
        );
    }

    #[test]
    fn projection_respects_floor_and_total() {
        let x = vec![
            Timerons::new(0.0),
            Timerons::new(100.0),
            Timerons::new(300.0),
        ];
        let p = project_to_simplex(&x, Timerons::new(1_000.0), Timerons::new(50.0));
        let total: f64 = p.iter().map(|v| v.get()).sum();
        assert!((total - 1_000.0).abs() < 1e-6);
        for v in &p {
            assert!(v.get() >= 50.0 - 1e-9);
        }
        // Order preserved: bigger in, bigger out.
        assert!(p[2] > p[1]);
    }

    #[test]
    fn projection_handles_all_at_floor() {
        let x = vec![Timerons::ZERO, Timerons::ZERO];
        let p = project_to_simplex(&x, Timerons::new(100.0), Timerons::new(10.0));
        assert!((p[0].get() - 50.0).abs() < 1e-9);
        assert!((p[1].get() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn grid_solver_rescues_violated_oltp_class() {
        // OLTP at 0.5 s (goal 0.25 s), slope 2e-5 s/timeron: the solver must
        // cut the OLAP total by ≥ 12.5 K to bring OLTP to goal.
        let f = Fixture::new(0.8, 0.9, 0.5, 2e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        assert_sums_to_system(&plan);
        let olap_total = plan.total_where(|c| c != ClassId(3));
        assert!(
            olap_total.get() <= 8_000.0,
            "expected deep OLAP cut, got OLAP total {}",
            olap_total.get()
        );
    }

    #[test]
    fn grid_solver_returns_resources_when_oltp_is_comfortable() {
        // OLTP at 0.05 s — far under goal. OLAP classes are struggling
        // (v=0.2, 0.3): the solver should push budget to OLAP.
        let f = Fixture::new(0.2, 0.3, 0.05, 1e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        assert_sums_to_system(&plan);
        let olap_total = plan.total_where(|c| c != ClassId(3));
        assert!(
            olap_total.get() >= 22_000.0,
            "expected generous OLAP budget, got {}",
            olap_total.get()
        );
    }

    #[test]
    fn grid_solver_favours_more_important_olap_class_under_scarcity() {
        // Both OLAP classes violated and OLTP needs most of the budget:
        // class 2 (importance 2) must not end up worse off than class 1.
        let f = Fixture::new(0.2, 0.2, 0.3, 2e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        let c1 = plan.limit(ClassId(1)).unwrap();
        let c2 = plan.limit(ClassId(2)).unwrap();
        assert!(
            c2.get() >= c1.get() - 1.0,
            "class 2 ({}) should not trail class 1 ({})",
            c2.get(),
            c1.get()
        );
    }

    #[test]
    fn solvers_agree_on_the_easy_problem() {
        let f = Fixture::new(0.5, 0.6, 0.5, 2e-5);
        let p = f.problem();
        let grid = GridSolver::default().solve(&p);
        let hill = HillClimbSolver::default().solve(&p);
        let gu = p.evaluate(&grid.limits().iter().map(|&(_, l)| l).collect::<Vec<_>>());
        let hu = p.evaluate(&hill.limits().iter().map(|&(_, l)| l).collect::<Vec<_>>());
        // Hill climbing must reach within a small margin of the grid optimum.
        assert!(hu >= gu - 0.05, "hill {hu} far below grid {gu}");
        assert_sums_to_system(&hill);
    }

    #[test]
    fn proportional_solver_splits_by_importance() {
        let f = Fixture::new(0.5, 0.5, 0.2, 1e-5);
        let p = f.problem();
        let plan = ProportionalSolver.solve(&p);
        assert_sums_to_system(&plan);
        let c1 = plan.limit(ClassId(1)).unwrap().get();
        let c3 = plan.limit(ClassId(3)).unwrap().get();
        assert!(
            (c3 / c1 - 3.0).abs() < 0.2,
            "importance ratio should be ~3, got {}",
            c3 / c1
        );
    }

    /// Evaluate a plan's utility under the fixture problem.
    fn utility_of(p: &PlanProblem<'_>, plan: &Plan) -> f64 {
        p.evaluate(&plan.limits().iter().map(|&(_, l)| l).collect::<Vec<_>>())
    }

    #[test]
    fn marginal_matches_grid_on_the_paper_problems() {
        // Same lattice, separable objective: the marginal solver must reach
        // the grid optimum (not merely approach it) on every fixture shape.
        for (v1, v2, t, s) in [
            (0.8, 0.9, 0.5, 2e-5),  // OLTP violated: deep OLAP cut
            (0.2, 0.3, 0.05, 1e-5), // OLTP comfortable: budget back to OLAP
            (0.2, 0.2, 0.3, 2e-5),  // everyone hurting
            (0.5, 0.6, 0.5, 2e-5),  // easy
            (0.9, 0.9, 0.9, 5e-5),  // harsh slope
        ] {
            let f = Fixture::new(v1, v2, t, s);
            let p = f.problem();
            let grid = GridSolver::default().solve(&p);
            let marg = MarginalSolver::default().solve(&p);
            assert_sums_to_system(&marg);
            for &(_, l) in marg.limits() {
                assert!(l.get() >= 600.0 - 1e-6, "limit {l:?} below floor");
            }
            let (gu, mu) = (utility_of(&p, &grid), utility_of(&p, &marg));
            assert!(
                mu >= gu - 1e-9,
                "marginal ({mu}) below grid optimum ({gu}) for ({v1},{v2},{t},{s})"
            );
        }
    }

    #[test]
    fn marginal_rescues_violated_oltp_class() {
        // The OLTP utility is convex in the pool budget, so one-unit greedy
        // moves alone would stall; the pool scan must find the deep cut.
        let f = Fixture::new(0.8, 0.9, 0.5, 2e-5);
        let p = f.problem();
        let plan = MarginalSolver::default().solve(&p);
        let olap_total = plan.total_where(|c| c != ClassId(3));
        assert!(
            olap_total.get() <= 8_000.0,
            "expected deep OLAP cut, got OLAP total {}",
            olap_total.get()
        );
    }

    #[test]
    fn marginal_is_deterministic_across_repeat_solves() {
        // Scratch reuse across solves must not leak state between problems.
        let f1 = Fixture::new(0.8, 0.9, 0.5, 2e-5);
        let f2 = Fixture::new(0.2, 0.3, 0.05, 1e-5);
        let solver = MarginalSolver::default();
        let a1 = solver.solve(&f1.problem());
        let _ = solver.solve(&f2.problem());
        let a2 = solver.solve(&f1.problem());
        assert_eq!(a1, a2, "repeat solve diverged after scratch reuse");
    }

    #[test]
    fn marginal_handles_olap_only_and_single_class() {
        let f = Fixture::new(0.3, 0.9, 0.5, 2e-5);
        let olap_only: Vec<ClassState> = f.classes[..2].to_vec();
        let p = PlanProblem {
            system_limit: Timerons::new(30_000.0),
            floor: Timerons::new(600.0),
            classes: &olap_only,
            olap_models: &f.olap_models,
            oltp_model: &f.oltp_model,
            utility: &f.utility,
        };
        let plan = MarginalSolver::default().solve(&p);
        assert!((plan.total().get() - 30_000.0).abs() < 1.0);
        // Class 1 is starving (v=0.3, goal 0.4) and class 2 is over-achieving
        // (0.9 vs 0.6): budget must flow towards class 1.
        assert!(plan.limit(ClassId(1)).unwrap() > plan.limit(ClassId(2)).unwrap());

        let single = &f.classes[..1];
        let p1 = PlanProblem {
            system_limit: Timerons::new(30_000.0),
            floor: Timerons::new(600.0),
            classes: single,
            olap_models: &f.olap_models,
            oltp_model: &f.oltp_model,
            utility: &f.utility,
        };
        let plan1 = MarginalSolver::default().solve(&p1);
        assert!((plan1.limit(ClassId(1)).unwrap().get() - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn grid_plans_always_respect_floor() {
        let f = Fixture::new(0.9, 0.9, 0.9, 5e-5);
        let p = f.problem();
        let plan = GridSolver::default().solve(&p);
        for &(_, l) in plan.limits() {
            assert!(l.get() >= 600.0 - 1e-6, "limit {l:?} below floor");
        }
    }
}
