//! The Query Scheduler: the paper's full adaptive controller.
//!
//! Wires together the Monitor, Classifier, class queues, Dispatcher,
//! performance models, utility function and Performance Solver (Figure 1).
//! Every control interval it measures each class, updates the models,
//! re-optimises the class cost limits and lets the Dispatcher act on the new
//! plan. The OLTP class is *indirectly* controlled: it is never intercepted,
//! its "cost limit" is the budget withheld from the OLAP classes, and its
//! performance is observed through snapshot sampling.

use crate::checkpoint::{Checkpoint, RestartStats, CHECKPOINT_SCHEMA};
use crate::class::ServiceClass;
use crate::classify::{ByClassTag, Classifier};
use crate::controller::{Controller, CtrlEvent};
use crate::detect::{DetectorConfig, WorkloadDetector};
use crate::dispatch::{Dispatcher, ReleaseList};
use crate::model::{OlapVelocityModel, OltpLinearModel};
use crate::monitor::{ClassMeasurement, IntervalMonitor};
use crate::plan::{Plan, PlanLog};
use crate::queue::{ClassQueues, QueueDiscipline};
use crate::solver::{ClassState, PlanProblem, Solver};
use crate::transport::{
    ReleaseTransport, RetryPolicy, SendOutcome, SenderSnapshot, Transport, TransportConfig,
    TransportMode,
};
use crate::utility::{GoalUtility, UtilityFn};
use qsched_dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use qsched_dbms::metrics::DegradationStats;
use qsched_dbms::query::{ClassId, QueryId, QueryKind};
use qsched_dbms::Timerons;
use qsched_sim::{Ctx, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tunables of the Query Scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// The system cost limit (Σ class limits). The paper uses 30 K timerons,
    /// determined from the throughput-vs-limit curve.
    pub system_limit: Timerons,
    /// Length of a control interval (re-planning period).
    pub control_interval: SimDuration,
    /// Snapshot-monitor sampling interval (§3.3; the paper uses 10 s).
    pub snapshot_interval: SimDuration,
    /// Per-class minimum share of the system limit (keeps models observable).
    pub floor_fraction: f64,
    /// Exponential decay of the OLTP regression (1.0 = plain least squares).
    pub model_decay: f64,
    /// Which Performance Solver strategy to use.
    pub solver: crate::solver::SolverKind,
    /// Intra-class ordering of held queries (the paper uses FIFO).
    pub queue_discipline: QueueDiscipline,
    /// Learn the OLTP slope online (the paper's §3.2 regression). When
    /// false the model keeps its prior slope — the ablation baseline.
    pub learn_oltp_slope: bool,
    /// Scale factor on the OLTP model's prior slope (`goal / system_limit`).
    /// 1.0 is the calibrated prior; the model ablation uses miscalibrated
    /// values to show that online learning recovers where a frozen prior
    /// cannot.
    pub oltp_prior_scale: f64,
    /// Control the OLTP class *directly*: intercept its statements and give
    /// it a real (not virtual) cost limit. The paper rejects this because
    /// the interception overhead dwarfs sub-second statements (§3); the
    /// `ablation_direct_oltp` bench quantifies that.
    pub direct_oltp: bool,
    /// Bound how fast limits can move: each class limit changes by at most
    /// this fraction of the system limit per re-plan (`None` = unbounded,
    /// the paper's behaviour). Smoothing damps plan oscillation driven by
    /// measurement noise at the cost of slower adaptation.
    pub max_step_fraction: Option<f64>,
    /// Re-plan immediately when the workload detector flags an intensity
    /// change, instead of waiting for the next control interval.
    pub reactive_replanning: bool,
    /// Workload-detector tuning (used when `reactive_replanning` is on).
    pub detector: DetectorConfig,
    /// Graceful-degradation tuning (see [`RobustnessConfig`]).
    #[serde(default)]
    pub robustness: RobustnessConfig,
    /// How release commands travel to the Patroller (see
    /// [`TransportConfig`]): a perfect inline call by default, or enveloped
    /// messages over the DES engine with `transport.*` fault channels.
    #[serde(default)]
    pub transport: TransportConfig,
}

/// Tunables of the scheduler's degraded modes. All of these only change
/// behaviour when an anomaly is actually detected — a healthy run takes
/// bit-identical decisions whatever these values are.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Re-use the last-known-good plan instead of re-solving when the
    /// newest successful snapshot is older than this at replan time
    /// (`None` = never treat inputs as stale). Only monitored-OLTP
    /// configurations check this; OLAP-only schedulers measure through
    /// completions, not snapshots.
    pub staleness_bound: Option<SimDuration>,
    /// Backoff schedule for re-issuing a release command the engine lost in
    /// flight (the transport's ack-timeout schedule is configured
    /// separately, in [`TransportConfig::retry`]).
    #[serde(default)]
    pub release_retry: RetryPolicy,
    /// An intercepted query's cost estimate is *implausible* when it exceeds
    /// `implausible_factor × system_limit` — no single query should dwarf
    /// the whole machine's admission budget.
    pub implausible_factor: f64,
    /// When an implausible estimate was seen during an interval and no
    /// `max_step_fraction` smoothing is configured, the next plan's movement
    /// is clamped to this fraction of the system limit per class, so one
    /// corrupt observation cannot swing the whole allocation.
    pub implausible_step_fraction: f64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            // Six missed 10 s snapshots in a row ≈ a dead monitor.
            staleness_bound: Some(SimDuration::from_secs(60)),
            release_retry: RetryPolicy::default(),
            implausible_factor: 2.0,
            implausible_step_fraction: 0.2,
        }
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            system_limit: Timerons::new(30_000.0),
            control_interval: SimDuration::from_secs(240),
            snapshot_interval: SimDuration::from_secs(10),
            floor_fraction: 0.02,
            model_decay: 0.9,
            solver: crate::solver::SolverKind::Grid,
            queue_discipline: QueueDiscipline::Fifo,
            learn_oltp_slope: true,
            oltp_prior_scale: 1.0,
            direct_oltp: false,
            max_step_fraction: None,
            reactive_replanning: false,
            detector: DetectorConfig::default(),
            robustness: RobustnessConfig::default(),
            transport: TransportConfig::default(),
        }
    }
}

/// The adaptive controller (paper §2–3).
pub struct QueryScheduler {
    cfg: SchedulerConfig,
    classes: Vec<ServiceClass>,
    class_ids: Vec<ClassId>,
    /// The OLAP class ids, sorted (membership tests in O(log n)).
    olap_ids: Vec<ClassId>,
    queues: ClassQueues,
    dispatcher: Dispatcher,
    monitor: IntervalMonitor,
    olap_models: BTreeMap<ClassId, OlapVelocityModel>,
    oltp_model: OltpLinearModel,
    solver: Box<dyn Solver>,
    classifier: Box<dyn Classifier>,
    utility: Box<dyn UtilityFn>,
    plan: Plan,
    plan_log: PlanLog,
    control_intervals: u64,
    detector: Option<WorkloadDetector>,
    /// Controller-side degraded-mode counters.
    degradation: DegradationStats,
    /// Whether any class is monitored through snapshots (OLTP present).
    has_oltp: bool,
    /// An implausible estimate arrived since the last replan.
    implausible_seen: bool,
    /// Queries whose release command was lost in flight and that have a
    /// `RetryRelease` pending. Part of the oracle's fault-book
    /// reconciliation: every held row is queued, retry-pending, or has a
    /// delayed release in flight.
    pending_retries: BTreeSet<QueryId>,
    /// The dispatcher's sub-plan (OLAP classes, or all classes under direct
    /// OLTP control), updated in place at each replan.
    dispatch_plan: Plan,
    /// After a cold restart (crash with no checkpoint) the controller runs
    /// the baseline plan without solving until this instant — the models
    /// are priors and the monitor has nothing yet, so a solve would react
    /// to noise. Cleared at the first replan past the deadline.
    cold_until: Option<SimTime>,
    /// The channel release commands travel over: a direct call (inline) or
    /// enveloped messages through the DES engine (sim).
    transport: ReleaseTransport,
    /// Restart incarnation number, stamped into every release envelope and
    /// persisted in checkpoints. The DBMS-side receiver rejects envelopes
    /// from dead epochs, so a pre-crash command cannot resurrect after a
    /// restart has re-queued its query.
    epoch: u64,
    /// Scratch reused across control intervals so the steady-state replan
    /// path is O(active classes) with no per-interval allocation.
    scratch_states: Vec<ClassState>,
    meas_buf: Vec<(ClassId, ClassMeasurement)>,
    release_buf: ReleaseList,
}

impl QueryScheduler {
    /// Build a scheduler with explicit strategy objects.
    ///
    /// # Panics
    /// Panics if `classes` is empty, contains duplicate ids, or has more
    /// than one OLTP class (the paper's indirect-control model drives a
    /// single OLTP class from the OLAP total).
    pub fn new(
        classes: Vec<ServiceClass>,
        cfg: SchedulerConfig,
        solver: Box<dyn Solver>,
        classifier: Box<dyn Classifier>,
        utility: Box<dyn UtilityFn>,
    ) -> Self {
        assert!(!classes.is_empty(), "need at least one service class");
        let mut ids: Vec<ClassId> = classes.iter().map(|c| c.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate service class ids");
        let oltp_count = classes.iter().filter(|c| c.kind == QueryKind::Oltp).count();
        assert!(oltp_count <= 1, "at most one OLTP class is supported");
        for c in &classes {
            c.validate();
        }
        if let Err(e) = cfg.robustness.release_retry.validate() {
            panic!("release retry policy: {e}");
        }
        if let Err(e) = cfg.transport.validate() {
            panic!("{e}");
        }

        let plan = Plan::even_split(&ids, cfg.system_limit);
        let olap_models = classes
            .iter()
            .filter(|c| c.kind == QueryKind::Olap)
            .map(|c| {
                (
                    c.id,
                    OlapVelocityModel::new(plan.limit(c.id).expect("class in plan")),
                )
            })
            .collect();
        let olap_total = Self::olap_total_of(&classes, &plan);
        let oltp_model = Self::fresh_oltp_model(&classes, &cfg, olap_total);
        // The dispatcher controls the intercepted classes: only the OLAP
        // classes under the paper's indirect scheme, every class under
        // direct OLTP control.
        let dispatch_plan = if cfg.direct_oltp {
            plan.clone()
        } else {
            Self::olap_subplan(&classes, &plan)
        };
        let detector = cfg
            .reactive_replanning
            .then(|| WorkloadDetector::new(cfg.detector.clone(), SimTime::ZERO));
        let has_oltp = oltp_count > 0;
        let mut olap_ids: Vec<ClassId> = classes
            .iter()
            .filter(|c| c.kind == QueryKind::Olap)
            .map(|c| c.id)
            .collect();
        olap_ids.sort_unstable();
        let n_classes = classes.len();
        let transport = ReleaseTransport::from_config(&cfg.transport);
        QueryScheduler {
            dispatcher: Dispatcher::new(&dispatch_plan),
            dispatch_plan,
            monitor: IntervalMonitor::new(SimTime::ZERO),
            plan_log: PlanLog::new(&plan, SimTime::ZERO),
            queues: ClassQueues::with_discipline(cfg.queue_discipline),
            class_ids: ids,
            olap_ids,
            olap_models,
            oltp_model,
            solver,
            classifier,
            utility,
            plan,
            classes,
            cfg,
            control_intervals: 0,
            detector,
            degradation: DegradationStats::default(),
            has_oltp,
            implausible_seen: false,
            pending_retries: BTreeSet::new(),
            transport,
            epoch: 0,
            scratch_states: Vec::with_capacity(n_classes),
            meas_buf: Vec::with_capacity(n_classes),
            release_buf: Vec::new(),
            cold_until: None,
        }
    }

    /// A constructor-fresh OLTP model: the calibrated prior slope
    /// (`goal / system_limit`, scaled), frozen when online learning is
    /// disabled. Shared between construction and cold restart.
    fn fresh_oltp_model(
        classes: &[ServiceClass],
        cfg: &SchedulerConfig,
        olap_total: Timerons,
    ) -> OltpLinearModel {
        let default_slope = classes
            .iter()
            .find(|c| c.kind == QueryKind::Oltp)
            .map(|c| match c.goal {
                crate::class::Goal::AvgResponseAtMost(d) => {
                    d.as_secs_f64() / cfg.system_limit.get()
                }
                _ => 1e-5,
            })
            .unwrap_or(0.0)
            * cfg.oltp_prior_scale;
        let mut oltp_model = OltpLinearModel::new(default_slope, cfg.model_decay, olap_total);
        if !cfg.learn_oltp_slope {
            oltp_model = oltp_model.frozen();
        }
        oltp_model
    }

    /// The paper's configuration: the solver named by `cfg.solver`,
    /// class-tag classifier, goal utility.
    pub fn paper_default(classes: Vec<ServiceClass>, cfg: SchedulerConfig) -> Self {
        let solver = cfg.solver.build();
        Self::new(
            classes,
            cfg,
            solver,
            Box::new(ByClassTag),
            Box::new(GoalUtility::default()),
        )
    }

    fn olap_total_of(classes: &[ServiceClass], plan: &Plan) -> Timerons {
        let olap: Vec<ClassId> = classes
            .iter()
            .filter(|c| c.kind == QueryKind::Olap)
            .map(|c| c.id)
            .collect();
        plan.total_where(|c| olap.contains(&c))
    }

    fn olap_subplan(classes: &[ServiceClass], plan: &Plan) -> Plan {
        Plan::new(
            classes
                .iter()
                .filter(|c| c.kind == QueryKind::Olap)
                .map(|c| (c.id, plan.limit(c.id).expect("class in plan")))
                .collect(),
        )
    }

    /// The currently active plan.
    pub fn current_plan(&self) -> &Plan {
        &self.plan
    }

    /// The service classes as currently ranked (importance flips show here).
    pub fn service_classes(&self) -> &[ServiceClass] {
        &self.classes
    }

    /// The plan history (Figure 7 data).
    pub fn plan_history(&self) -> &PlanLog {
        &self.plan_log
    }

    /// The OLTP model (exposed for analysis).
    pub fn oltp_model(&self) -> &OltpLinearModel {
        &self.oltp_model
    }

    /// Completed control intervals.
    pub fn control_intervals(&self) -> u64 {
        self.control_intervals
    }

    /// Queries currently waiting in class queues.
    pub fn queued(&self) -> usize {
        self.queues.total_len()
    }

    /// The workload detector, when reactive re-planning is enabled.
    pub fn detector(&self) -> Option<&WorkloadDetector> {
        self.detector.as_ref()
    }

    /// Controller-side degraded-mode counters.
    pub fn degradation(&self) -> &DegradationStats {
        &self.degradation
    }

    fn perform_releases<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        releases: &[(ClassId, QueryId)],
    ) {
        for &(_, id) in releases {
            self.attempt_release(ctx, dbms, id, 0);
        }
        // Batched transports buffer the sends above into wire messages; hand
        // them over now so a batch never straddles two control actions.
        // No-op on the inline and unbatched channels.
        self.transport.flush(ctx);
    }

    /// Run a dispatcher scan through the reusable release buffer, then issue
    /// the release commands. Keeps the hot enqueue/complete/replan paths
    /// free of per-event allocation.
    fn dispatch_and_release<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        scan: impl FnOnce(&mut Dispatcher, &mut ClassQueues, &mut ReleaseList),
    ) {
        let mut releases = std::mem::take(&mut self.release_buf);
        releases.clear();
        scan(&mut self.dispatcher, &mut self.queues, &mut releases);
        self.perform_releases(ctx, dbms, &releases);
        self.release_buf = releases;
    }

    /// Issue (or re-issue) one release command through the configured
    /// transport. Three things can keep the effect from landing now:
    ///
    /// * the engine lost the command (`Failed`) — re-send on the
    ///   release-retry backoff, as before the transport existed;
    /// * the envelope is in the network (`InFlight`: delayed, duplicated,
    ///   or silently dropped — the sender cannot tell) — an ack resolves
    ///   it, and an ack timeout on the transport retry schedule re-sends;
    /// * the query is no longer held (`Gone`) — it completed, the watchdog
    ///   force-released it, or a previous envelope landed without its ack:
    ///   nothing to do.
    ///
    /// Either retry path books the query in `pending_retries`, so the
    /// oracle's fault-book reconciliation covers it while unresolved.
    fn attempt_release<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        id: QueryId,
        attempt: u32,
    ) {
        self.pending_retries.remove(&id);
        let backoff = match self.transport.send_release(ctx, dbms, id) {
            SendOutcome::Delivered | SendOutcome::Gone => return,
            SendOutcome::Failed => {
                self.degradation.release_retries += 1;
                self.cfg.robustness.release_retry.delay_for(attempt)
            }
            SendOutcome::InFlight => self.cfg.transport.retry.delay_for(attempt),
        };
        self.pending_retries.insert(id);
        ctx.schedule_in(
            backoff,
            CtrlEvent::RetryRelease {
                id,
                attempt: attempt.saturating_add(1),
            }
            .into(),
        );
    }

    /// Clamp each class's movement to `frac · system_limit`, then re-project
    /// onto the budget simplex so the smoothed plan still sums exactly.
    fn smooth_towards(&self, target: &Plan, frac: f64) -> Plan {
        assert!(
            frac > 0.0 && frac <= 1.0,
            "invalid max_step_fraction {frac}"
        );
        let step = self.cfg.system_limit.get() * frac;
        let clamped: Vec<Timerons> = self
            .plan
            .limits()
            .iter()
            .map(|&(c, cur)| {
                let want = target.limit(c).expect("same classes").get();
                let delta = (want - cur.get()).clamp(-step, step);
                Timerons::new((cur.get() + delta).max(0.0))
            })
            .collect();
        let floor = self.cfg.system_limit * self.cfg.floor_fraction;
        let projected = crate::solver::project_to_simplex(&clamped, self.cfg.system_limit, floor);
        Plan::new(self.plan.classes().zip(projected).collect())
    }

    fn replan<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
    ) {
        let now = ctx.now();
        // 1. Measure the interval that just ended (reusable buffer, sorted
        // by class id because `class_ids` is sorted).
        let mut meas = std::mem::take(&mut self.meas_buf);
        self.monitor.end_interval_into(&self.class_ids, &mut meas);
        let meas_of = |buf: &[(ClassId, ClassMeasurement)], id: ClassId| {
            buf.binary_search_by_key(&id, |&(c, _)| c)
                .ok()
                .map(|i| buf[i].1)
        };
        // 2. Update the models against the limits that were in effect.
        let olap_total = self
            .plan
            .total_where(|c| self.olap_ids.binary_search(&c).is_ok());
        for c in &self.classes {
            match c.kind {
                QueryKind::Olap => {
                    let limit = self.plan.limit(c.id).expect("class in plan");
                    let v = meas_of(&meas, c.id).and_then(|m| m.velocity);
                    self.olap_models
                        .get_mut(&c.id)
                        .expect("model per OLAP class")
                        .observe(v, limit);
                }
                QueryKind::Oltp => {
                    let t = meas_of(&meas, c.id).and_then(|m| m.response_secs);
                    self.oltp_model.observe(t, olap_total);
                }
            }
        }
        meas.clear();
        self.meas_buf = meas;
        // 3. Solve for a new plan — or fall back to the last-known-good one
        // when the inputs are stale (monitor dead past the staleness bound)
        // or the solver fails (fault channel "solver.fail": timeout /
        // non-convergence). A fallback keeps the active limits: they were
        // feasible, and releasing under them preserves liveness.
        let stale = self.has_oltp
            && self.cfg.robustness.staleness_bound.is_some_and(|bound| {
                // A deliberately slow sampling cadence is not a fault: the
                // effective bound never drops below two snapshot intervals.
                let bound = bound.max(self.cfg.snapshot_interval.mul_f64(2.0));
                now.saturating_since(self.monitor.last_snapshot_time()) > bound
            });
        let solver_failed = ctx.should_inject("solver.fail");
        // Degraded cold-restart mode: hold the baseline plan until the
        // monitor has had time to re-warm (the models are bare priors, so a
        // solve would chase noise).
        let cold = match self.cold_until {
            Some(t) if now < t => true,
            Some(_) => {
                self.cold_until = None;
                false
            }
            None => false,
        };
        if stale {
            self.degradation.stale_intervals += 1;
        }
        if solver_failed {
            self.degradation.solver_failures += 1;
        }
        let implausible_seen = std::mem::take(&mut self.implausible_seen);
        let mut new_plan = if stale || solver_failed || cold {
            self.degradation.plan_fallbacks += 1;
            self.plan.clone()
        } else {
            // Refill the scratch class-state buffer (warm start: the solver
            // sees the active limits as the incumbent plan).
            self.scratch_states.clear();
            for c in &self.classes {
                self.scratch_states.push(ClassState {
                    class: c.id,
                    kind: c.kind,
                    importance: c.importance,
                    goal: c.goal,
                    current_limit: self.plan.limit(c.id).expect("class in plan"),
                });
            }
            let problem = PlanProblem {
                system_limit: self.cfg.system_limit,
                floor: self.cfg.system_limit * self.cfg.floor_fraction,
                classes: &self.scratch_states,
                olap_models: &self.olap_models,
                oltp_model: &self.oltp_model,
                utility: self.utility.as_ref(),
            };
            self.solver.solve(&problem)
        };
        if let Some(frac) = self.cfg.max_step_fraction {
            new_plan = self.smooth_towards(&new_plan, frac);
        } else if implausible_seen {
            // An implausible estimate polluted this interval's observations:
            // clamp the plan delta so one corrupt number cannot swing the
            // whole allocation in a single step.
            new_plan =
                self.smooth_towards(&new_plan, self.cfg.robustness.implausible_step_fraction);
        }
        debug_assert!(new_plan.respects(self.cfg.system_limit));
        // Flight-recorder annotation: the control decision, alongside the
        // event stream, so a replay artifact shows *why* releases followed.
        ctx.annotate(|| {
            let limits: Vec<String> = new_plan
                .limits()
                .iter()
                .map(|(c, l)| format!("{c}={:.1}", l.get()))
                .collect();
            format!(
                "replan#{} stale={stale} solver_failed={solver_failed} cold={cold} plan=[{}]",
                self.control_intervals,
                limits.join(" ")
            )
        });
        self.plan_log.record(&new_plan, now);
        self.plan = new_plan;
        self.control_intervals += 1;
        // 4. Let the dispatcher act on the new limits. The sub-plan covers
        // the controlled classes and is refreshed in place — no allocation.
        self.dispatch_plan.copy_limits_from(&self.plan);
        let mut releases = std::mem::take(&mut self.release_buf);
        releases.clear();
        self.dispatcher
            .apply_plan_into(&self.dispatch_plan, &mut self.queues, &mut releases);
        self.perform_releases(ctx, dbms, &releases);
        self.release_buf = releases;
    }

    /// Adopt a fleet-assigned system cost limit (sharded topologies: the
    /// global allocator re-divides the budget every allocation epoch). The
    /// active plan is re-projected onto the new budget simplex *in the same
    /// event* — the audit invariant (plan total == system limit) holds at
    /// every oracle boundary, so the rescale cannot wait for the next
    /// replan. A grown budget releases queued work immediately; a shrunk
    /// one lets executing queries drain down to the new limits. Checkpoints
    /// taken under a different budget fail `checkpoint_plan_ok` and fall
    /// back to a cold restart — by design: a dead incarnation's plan says
    /// nothing about the budget the allocator has since assigned.
    fn adopt_system_limit<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        new_limit: Timerons,
    ) {
        if new_limit.get() == self.cfg.system_limit.get() {
            return;
        }
        assert!(
            new_limit.get().is_finite() && new_limit.get() > 0.0,
            "allocator assigned a degenerate system limit {new_limit:?}"
        );
        let now = ctx.now();
        self.cfg.system_limit = new_limit;
        let floor = new_limit * self.cfg.floor_fraction;
        let limits: Vec<Timerons> = self.plan.limits().iter().map(|&(_, l)| l).collect();
        let projected = crate::solver::project_to_simplex(&limits, new_limit, floor);
        let new_plan = Plan::new(self.plan.classes().zip(projected).collect());
        debug_assert!(new_plan.respects(new_limit));
        ctx.annotate(|| format!("set-system-limit {:.1} plan rescaled", new_limit.get()));
        self.plan_log.record(&new_plan, now);
        self.plan = new_plan;
        self.dispatch_plan.copy_limits_from(&self.plan);
        let mut releases = std::mem::take(&mut self.release_buf);
        releases.clear();
        self.dispatcher
            .apply_plan_into(&self.dispatch_plan, &mut self.queues, &mut releases);
        self.perform_releases(ctx, dbms, &releases);
        self.release_buf = releases;
    }

    /// Snapshot the durable state: plan, learned models, queue book and
    /// pending-release fault book. Volatile state (monitor partial sums,
    /// dispatcher books, detector history) is deliberately left out — it is
    /// rebuilt at restart from the engine's authoritative view.
    fn make_checkpoint(&self, now: SimTime) -> Checkpoint {
        Checkpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            at: now,
            plan: self.plan.clone(),
            control_intervals: self.control_intervals,
            queued: self
                .queues
                .iter_all()
                .map(|(c, e)| (c, e.id, e.cost))
                .collect(),
            pending_retries: self.pending_retries.iter().copied().collect(),
            epoch: self.epoch,
            olap_models: self
                .olap_models
                .iter()
                .map(|(&c, m)| (c, m.clone()))
                .collect(),
            oltp_model: self.oltp_model.clone(),
        }
    }

    /// A usable checkpoint restores the plan only if it still describes
    /// this scheduler: same schema, same class set, within budget.
    fn checkpoint_plan_ok(&self, ckpt: &Checkpoint) -> bool {
        ckpt.schema_ok()
            && ckpt.plan.respects(self.cfg.system_limit)
            && ckpt.plan.classes().eq(self.class_ids.iter().copied())
    }

    /// The crash–restart path (see `Controller::restart_from`): wipe every
    /// volatile structure, restore the checkpointed plan and models (or
    /// fall back to the baseline even split and enter degraded cold mode),
    /// then **reconcile** with the engine:
    ///
    /// 1. the Patroller's control-table enumeration is the authoritative
    ///    list of blocked queries — each is re-queued in interception
    ///    order, classified against the checkpoint's books as recovered
    ///    (was queued), lost-release (was pending release: the command
    ///    never arrived), or adopted (arrived inside the crash window);
    /// 2. the engine's executing-intercepted enumeration re-seeds the
    ///    dispatcher's cost books, so completions balance and admission
    ///    headroom is correct from the first post-restart scan;
    /// 3. held rows with a release command still in transit (delayed by
    ///    the fault plan) are charged as executing — the `ReleaseDue`
    ///    event will admit them without any further controller action.
    ///
    /// Finally the restored plan is logged and a dispatcher scan re-issues
    /// whatever now fits — including the detected lost releases.
    fn restart<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        ckpt: Option<Checkpoint>,
    ) -> RestartStats {
        let now = ctx.now();
        let mut stats = RestartStats::default();

        // -- new incarnation: fence off the dead epoch's envelopes --------
        // The supervisor hands the restarted process an incarnation number
        // strictly above anything it ever used (checkpointed or not); every
        // in-flight pre-crash envelope becomes stale the moment the world
        // fences the receiver to it.
        self.epoch = self
            .epoch
            .max(ckpt.as_ref().map_or(0, |c| c.epoch))
            .saturating_add(1);
        self.transport.set_epoch(self.epoch);

        // -- wipe volatile state ------------------------------------------
        self.queues = ClassQueues::with_discipline(self.cfg.queue_discipline);
        self.pending_retries.clear();
        self.monitor = IntervalMonitor::new(now);
        self.implausible_seen = false;
        self.detector = self
            .cfg
            .reactive_replanning
            .then(|| WorkloadDetector::new(self.cfg.detector.clone(), now));
        self.cold_until = None;

        // -- restore durable state (or cold-start) ------------------------
        let warm = ckpt.as_ref().is_some_and(|c| self.checkpoint_plan_ok(c));
        stats.warm = warm;
        let (ckpt_queued, ckpt_pending) = match ckpt {
            Some(c) if warm => {
                self.plan = c.plan;
                self.control_intervals = c.control_intervals;
                // Models: start fresh, then overlay what the checkpoint
                // carries (a class missing from the snapshot keeps its
                // prior rather than stale garbage).
                self.olap_models = self
                    .classes
                    .iter()
                    .filter(|cl| cl.kind == QueryKind::Olap)
                    .map(|cl| {
                        (
                            cl.id,
                            OlapVelocityModel::new(self.plan.limit(cl.id).expect("class in plan")),
                        )
                    })
                    .collect();
                for (id, m) in c.olap_models {
                    if let Some(slot) = self.olap_models.get_mut(&id) {
                        *slot = m;
                    }
                }
                self.oltp_model = c.oltp_model;
                (
                    c.queued
                        .iter()
                        .map(|&(_, id, _)| id)
                        .collect::<BTreeSet<QueryId>>(),
                    c.pending_retries.into_iter().collect::<BTreeSet<QueryId>>(),
                )
            }
            _ => {
                // Cold start: baseline even split, prior models, and a
                // degraded window one control interval long for the
                // monitor to re-warm before the solver runs again.
                self.plan = Plan::even_split(&self.class_ids, self.cfg.system_limit);
                self.control_intervals = 0;
                self.olap_models = self
                    .classes
                    .iter()
                    .filter(|cl| cl.kind == QueryKind::Olap)
                    .map(|cl| {
                        (
                            cl.id,
                            OlapVelocityModel::new(self.plan.limit(cl.id).expect("class in plan")),
                        )
                    })
                    .collect();
                let olap_total = Self::olap_total_of(&self.classes, &self.plan);
                self.oltp_model = Self::fresh_oltp_model(&self.classes, &self.cfg, olap_total);
                let deadline = now + self.cfg.control_interval;
                self.cold_until = Some(deadline);
                stats.degraded_until = Some(deadline);
                (BTreeSet::new(), BTreeSet::new())
            }
        };

        // -- rebuild the dispatcher from the engine's view ----------------
        self.dispatch_plan.copy_limits_from(&self.plan);
        self.dispatcher = Dispatcher::new(&self.dispatch_plan);
        for (_, class, cost) in dbms.resync_executing() {
            self.dispatcher.restore_executing(class, cost);
        }

        // -- reconcile blocked queries against the control table ----------
        for row in dbms.patroller().resync_rows() {
            if dbms.delayed_release_pending(row.id) {
                // Release in transit: already counted against the books at
                // the original scan; ReleaseDue will admit it.
                let class = self.classifier.classify(&row).unwrap_or(row.class);
                self.dispatcher.restore_executing(class, row.estimated_cost);
                continue;
            }
            if ckpt_pending.contains(&row.id) {
                stats.lost_releases += 1; // issued, never arrived: re-queue + re-issue
            } else if ckpt_queued.contains(&row.id) {
                stats.recovered += 1;
            } else {
                stats.adopted += 1; // arrived inside the crash window
            }
            let class = self.classifier.classify(&row).unwrap_or(row.class);
            self.queues.enqueue(class, row.id, row.estimated_cost);
        }
        stats.resolved_externally = ckpt_queued
            .iter()
            .filter(|&&id| !dbms.patroller().is_held(id))
            .count() as u64;

        // -- log the restored plan and let the dispatcher act -------------
        self.plan_log.record(&self.plan, now);
        ctx.annotate(|| {
            format!(
                "restart warm={warm} epoch={} recovered={} adopted={} lost_releases={} resolved={}",
                self.epoch,
                stats.recovered,
                stats.adopted,
                stats.lost_releases,
                stats.resolved_externally
            )
        });
        let mut releases = std::mem::take(&mut self.release_buf);
        releases.clear();
        self.dispatcher
            .apply_plan_into(&self.dispatch_plan, &mut self.queues, &mut releases);
        self.perform_releases(ctx, dbms, &releases);
        self.release_buf = releases;
        stats
    }

    /// Full controller-book audit (the oracle's scheduler surface). This is
    /// the always-on promotion of the scheduler's debug assertions:
    ///
    /// * the active plan's limits are non-negative, finite, and sum to the
    ///   system limit within float tolerance (§2: the plan re-divides, never
    ///   grows, the admission budget);
    /// * class queues keep their discipline order (FIFO within class);
    /// * every queued query is actually held in the engine's control table;
    /// * every held row is covered by a book: queued here, retry-pending
    ///   here, or release-delayed in the engine — so nothing the watchdog
    ///   would have to rescue is untracked (fault-book reconciliation);
    /// * the dispatcher's executing books are internally consistent.
    pub fn audit(&self, dbms: &Dbms) -> Result<(), String> {
        let total = self.plan.total().get();
        let budget = self.cfg.system_limit.get();
        if !(total.is_finite() && (total - budget).abs() <= budget * 1e-9 + 1e-9) {
            return Err(format!(
                "plan total {total} drifted from system limit {budget}"
            ));
        }
        if let Some((c, l)) = self
            .plan
            .limits()
            .iter()
            .find(|(_, l)| !l.get().is_finite() || l.get() < 0.0)
        {
            return Err(format!("plan limit for {c} is not sane: {l:?}"));
        }
        self.queues.check_order()?;
        self.dispatcher.audit()?;
        let queued: BTreeSet<QueryId> = self.queues.iter_all().map(|(_, e)| e.id).collect();
        for id in &queued {
            if !dbms.patroller().is_held(*id) {
                return Err(format!(
                    "{id:?} is queued but not held in the control table"
                ));
            }
        }
        for row in dbms.patroller().held_rows() {
            let covered = queued.contains(&row.id)
                || self.pending_retries.contains(&row.id)
                || dbms.delayed_release_pending(row.id);
            if !covered {
                return Err(format!(
                    "held row {:?} (class {}) is in no book: not queued, no retry \
                     pending, no delayed release in flight",
                    row.id, row.class
                ));
            }
        }
        Ok(())
    }
}

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for QueryScheduler {
    fn name(&self) -> &'static str {
        "query-scheduler"
    }

    fn start(&mut self, ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {
        ctx.schedule_in(self.cfg.control_interval, CtrlEvent::ControlTick.into());
        ctx.schedule_in(self.cfg.snapshot_interval, CtrlEvent::SnapshotTick.into());
    }

    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        _out: &mut Vec<DbmsNotice>,
    ) {
        match notice {
            DbmsNotice::Intercepted(row) => {
                let class = self.classifier.classify(row).unwrap_or(row.class);
                if let Some(d) = self.detector.as_mut() {
                    d.on_arrival(class);
                }
                // Plausibility check on the optimizer's estimate: no single
                // query should exceed a multiple of the whole system limit.
                // The query is still queued (its real resource draw is what
                // it is), but the next plan's movement gets clamped.
                let cap = self.cfg.system_limit.get() * self.cfg.robustness.implausible_factor;
                if row.estimated_cost.get() > cap {
                    self.degradation.estimates_implausible += 1;
                    self.implausible_seen = true;
                }
                self.queues.enqueue(class, row.id, row.estimated_cost);
                self.dispatch_and_release(ctx, dbms, |d, q, out| {
                    d.on_enqueued_into(class, q, out);
                });
            }
            DbmsNotice::Rejected(_) => {}
            DbmsNotice::Starved(row) => {
                // The engine's watchdog force-released this query behind our
                // back. Reconcile: if we still had it queued, charge its
                // cost to the dispatcher books so the eventual completion
                // balances; if the dispatcher had already released it (the
                // command was lost in flight), the books are already right.
                let class = self.classifier.classify(row).unwrap_or(row.class);
                if let Some(q) = self.queues.remove(class, row.id) {
                    self.dispatcher.note_external_release(class, q.cost);
                }
                // A pending retry for it is now moot (it will no-op when it
                // fires); drop the book entry eagerly.
                self.pending_retries.remove(&row.id);
            }
            DbmsNotice::Completed(rec) => {
                self.monitor.on_completed(rec);
                if rec.kind == QueryKind::Oltp {
                    // OLTP arrivals are invisible (no interception); its
                    // completion rate is the closed-loop proxy.
                    if let Some(d) = self.detector.as_mut() {
                        d.on_arrival(rec.class);
                    }
                }
                self.dispatch_and_release(ctx, dbms, |d, q, out| {
                    d.on_completed_into(rec, q, out);
                });
            }
        }
    }

    fn on_event(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
        match ev {
            CtrlEvent::SnapshotTick => {
                // A lost snapshot (monitor connection failure) keeps the
                // previous observation; the replan staleness check notices
                // when losses persist past the bound.
                if let Some(samples) = dbms.take_snapshot(ctx) {
                    self.monitor.on_snapshot(ctx.now(), &samples);
                }
                // Workload detection rides the snapshot cadence; a flagged
                // intensity change triggers an immediate re-plan.
                let changed = match self.detector.as_mut() {
                    Some(d) => !d.advance(ctx.now()).is_empty(),
                    None => false,
                };
                if changed {
                    self.replan(ctx, dbms);
                }
                ctx.schedule_in(self.cfg.snapshot_interval, CtrlEvent::SnapshotTick.into());
            }
            CtrlEvent::ControlTick => {
                self.replan(ctx, dbms);
                ctx.schedule_in(self.cfg.control_interval, CtrlEvent::ControlTick.into());
            }
            CtrlEvent::RetryRelease { id, attempt } => {
                // Only act if the retry is still booked. A crash–restart
                // wipes the book and re-queues the query through normal
                // admission; a pre-crash retry timer firing afterwards must
                // not bypass that (and a moot retry must not touch the
                // engine's fault stream).
                if self.pending_retries.contains(&id) {
                    self.attempt_release(ctx, dbms, id, attempt);
                    self.transport.flush(ctx);
                }
            }
            CtrlEvent::ReleaseAcked { id, seq } => {
                // The envelope's effect is applied; close the in-flight
                // book. The armed retry timer is now moot and will be
                // swallowed by the `pending_retries` gate above. Acks from
                // a dead incarnation find no book entry and change nothing.
                if self.transport.on_ack(id, seq) {
                    self.pending_retries.remove(&id);
                }
            }
            CtrlEvent::ReleaseBatchAcked(batch) => {
                // One wire ack covers every envelope the batch carried; each
                // closes its own in-flight book entry exactly as a per-query
                // ack would.
                for env in batch.envelopes() {
                    if self.transport.on_ack(env.id, env.seq) {
                        self.pending_retries.remove(&env.id);
                    }
                }
            }
            CtrlEvent::SetSystemLimit { millitimerons } => {
                self.adopt_system_limit(ctx, dbms, CtrlEvent::decoded_limit(millitimerons));
            }
        }
    }

    fn checkpoint(&self, now: SimTime) -> Option<Checkpoint> {
        Some(self.make_checkpoint(now))
    }

    fn restart_from(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        ckpt: Option<Checkpoint>,
        _out: &mut Vec<DbmsNotice>,
    ) -> RestartStats {
        self.restart(ctx, dbms, ckpt)
    }

    fn plan_log(&self) -> Option<&PlanLog> {
        Some(&self.plan_log)
    }

    fn degradation_stats(&self) -> Option<DegradationStats> {
        Some(self.degradation)
    }

    fn transport_epoch(&self) -> u64 {
        self.epoch
    }

    fn transport_stats(&self) -> Option<SenderSnapshot> {
        match self.cfg.transport.mode {
            TransportMode::Inline => None,
            TransportMode::Sim => self.transport.snapshot(),
        }
    }

    fn offered_load(&self) -> Option<Timerons> {
        // Cost under management: released-and-executing plus queued for
        // release. This is what the global allocator equalizes across
        // backends — a backend with idle headroom reports low offered load
        // and donates budget to loaded peers.
        let queued: f64 = self.queues.iter_all().map(|(_, e)| e.cost.get()).sum();
        Some(Timerons::new(
            self.dispatcher.total_executing().get() + queued,
        ))
    }

    fn system_limit(&self) -> Option<Timerons> {
        Some(self.cfg.system_limit)
    }

    fn set_class_importance(&mut self, class: ClassId, importance: u8) {
        // Importance enters only through the utility function at solve
        // time, so updating the class table re-ranks every future plan;
        // queries already released keep running.
        for c in self.classes.iter_mut().filter(|c| c.id == class) {
            c.importance = importance;
        }
    }

    fn oracle_audit(&self, dbms: &Dbms) -> Result<(), String> {
        self.audit(dbms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_plan_is_even_and_within_budget() {
        let qs = QueryScheduler::paper_default(
            ServiceClass::paper_classes(),
            SchedulerConfig::default(),
        );
        let plan = qs.current_plan();
        assert!((plan.total().get() - 30_000.0).abs() < 1e-6);
        assert!((plan.limit(ClassId(1)).unwrap().get() - 10_000.0).abs() < 1e-6);
        assert_eq!(qs.queued(), 0);
        assert_eq!(qs.control_intervals(), 0);
    }

    #[test]
    fn oltp_default_slope_is_goal_over_system_limit() {
        let qs = QueryScheduler::paper_default(
            ServiceClass::paper_classes(),
            SchedulerConfig::default(),
        );
        let s = qs.oltp_model().slope();
        assert!((s - 0.25 / 30_000.0).abs() < 1e-12, "slope {s}");
    }

    #[test]
    fn checkpoint_captures_plan_and_queue_books() {
        let mut qs = QueryScheduler::paper_default(
            ServiceClass::paper_classes(),
            SchedulerConfig::default(),
        );
        qs.queues
            .enqueue(ClassId(1), QueryId(41), Timerons::new(900.0));
        qs.queues
            .enqueue(ClassId(2), QueryId(42), Timerons::new(500.0));
        qs.pending_retries.insert(QueryId(7));
        let ckpt = qs.make_checkpoint(SimTime::from_secs(90));
        assert!(ckpt.schema_ok());
        assert_eq!(ckpt.at, SimTime::from_secs(90));
        assert_eq!(ckpt.plan, *qs.current_plan());
        assert_eq!(
            ckpt.queued,
            vec![
                (ClassId(1), QueryId(41), Timerons::new(900.0)),
                (ClassId(2), QueryId(42), Timerons::new(500.0)),
            ]
        );
        assert_eq!(ckpt.pending_retries, vec![QueryId(7)]);
        assert!(qs.checkpoint_plan_ok(&ckpt));
    }

    #[test]
    fn mismatched_checkpoints_are_rejected_for_warm_restore() {
        let qs = QueryScheduler::paper_default(
            ServiceClass::paper_classes(),
            SchedulerConfig::default(),
        );
        let mut ckpt = qs.make_checkpoint(SimTime::ZERO);

        let mut stale_schema = ckpt.clone();
        stale_schema.schema = "qsched-ckpt-v0".into();
        assert!(!qs.checkpoint_plan_ok(&stale_schema));

        let mut wrong_classes = ckpt.clone();
        wrong_classes.plan = Plan::even_split(&[ClassId(1)], Timerons::new(30_000.0));
        assert!(!qs.checkpoint_plan_ok(&wrong_classes));

        ckpt.plan = Plan::even_split(
            &[ClassId(1), ClassId(2), ClassId(3)],
            Timerons::new(90_000.0),
        );
        assert!(!qs.checkpoint_plan_ok(&ckpt), "over-budget plan rejected");
    }

    #[test]
    #[should_panic(expected = "at most one OLTP class")]
    fn two_oltp_classes_panic() {
        let mut classes = ServiceClass::paper_classes();
        let mut extra = classes[2].clone();
        extra.id = ClassId(4);
        classes.push(extra);
        let _ = QueryScheduler::paper_default(classes, SchedulerConfig::default());
    }

    #[test]
    #[should_panic(expected = "duplicate service class ids")]
    fn duplicate_classes_panic() {
        let mut classes = ServiceClass::paper_classes();
        classes.push(classes[0].clone());
        let _ = QueryScheduler::paper_default(classes, SchedulerConfig::default());
    }

    #[test]
    fn importance_flip_re_ranks_the_class_table() {
        // A minimal concrete event type so the trait method is callable
        // outside the experiment world.
        #[derive(Debug)]
        enum Ev {
            #[allow(dead_code)]
            Ctrl(CtrlEvent),
            #[allow(dead_code)]
            Dbms(DbmsEvent),
        }
        impl From<CtrlEvent> for Ev {
            fn from(e: CtrlEvent) -> Self {
                Ev::Ctrl(e)
            }
        }
        impl From<DbmsEvent> for Ev {
            fn from(e: DbmsEvent) -> Self {
                Ev::Dbms(e)
            }
        }
        let mut qs = QueryScheduler::paper_default(
            ServiceClass::paper_classes(),
            SchedulerConfig::default(),
        );
        assert_eq!(qs.service_classes()[0].importance, 1);
        Controller::<Ev>::set_class_importance(&mut qs, ClassId(1), 5);
        assert_eq!(qs.service_classes()[0].importance, 5);
        // Other classes untouched; unknown ids are a no-op.
        assert_eq!(qs.service_classes()[1].importance, 2);
        Controller::<Ev>::set_class_importance(&mut qs, ClassId(99), 7);
        assert!(qs.service_classes().iter().all(|c| c.importance != 7));
    }
}
