//! Service classes: the unit of differentiated service.
//!
//! Each workload class has a *performance goal* and a *business importance*.
//! The paper's experiment uses three classes:
//!
//! | Class | Type | Importance | Goal |
//! |-------|------|------------|------|
//! | 1 | OLAP | 1 | query velocity ≥ 0.4 |
//! | 2 | OLAP | 2 | query velocity ≥ 0.6 |
//! | 3 | OLTP | 3 | average response time ≤ 0.25 s |
//!
//! Importance is **not** priority: it only takes effect when a class
//! violates its goal (§4.2).

use qsched_dbms::query::{ClassId, QueryKind};
use qsched_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A per-class performance goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Mean query velocity must be at least this value (OLAP classes).
    VelocityAtLeast(f64),
    /// Mean response time must be at most this duration (OLTP classes).
    AvgResponseAtMost(SimDuration),
}

impl Goal {
    /// Achievement ratio of a measured performance value against this goal:
    /// 1.0 means exactly at goal, above 1.0 exceeds it, below violates it.
    ///
    /// `measured` is a velocity for [`Goal::VelocityAtLeast`] and a response
    /// time in seconds for [`Goal::AvgResponseAtMost`].
    pub fn achievement(&self, measured: f64) -> f64 {
        match *self {
            Goal::VelocityAtLeast(g) => {
                debug_assert!(g > 0.0);
                (measured / g).max(0.0)
            }
            Goal::AvgResponseAtMost(g) => {
                let g = g.as_secs_f64();
                debug_assert!(g > 0.0);
                if measured <= 0.0 {
                    // Zero measured response: infinitely better than goal;
                    // clamp to a large, finite achievement.
                    100.0
                } else {
                    (g / measured).min(100.0)
                }
            }
        }
    }

    /// Is a measured value meeting the goal?
    pub fn is_met(&self, measured: f64) -> bool {
        self.achievement(measured) >= 1.0
    }
}

/// A service class definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceClass {
    /// Class identifier (matches the `ClassId` stamped on queries).
    pub id: ClassId,
    /// Human-readable name.
    pub name: String,
    /// Workload type — selects the performance metric and model.
    pub kind: QueryKind,
    /// Business importance (higher = more important). Takes effect only when
    /// the goal is violated.
    pub importance: u8,
    /// The performance goal.
    pub goal: Goal,
}

impl ServiceClass {
    /// Convenience constructor.
    pub fn new(
        id: ClassId,
        name: impl Into<String>,
        kind: QueryKind,
        importance: u8,
        goal: Goal,
    ) -> Self {
        let sc = ServiceClass {
            id,
            name: name.into(),
            kind,
            importance,
            goal,
        };
        sc.validate();
        sc
    }

    /// Validate the goal/kind pairing.
    ///
    /// # Panics
    /// Panics if an OLAP class has a response-time goal or vice versa, or if
    /// importance is zero.
    pub fn validate(&self) {
        assert!(self.importance >= 1, "importance must be at least 1");
        match (self.kind, &self.goal) {
            (QueryKind::Olap, Goal::VelocityAtLeast(v)) => {
                assert!(
                    (0.0..=1.0).contains(v) && *v > 0.0,
                    "velocity goal out of (0,1]: {v}"
                )
            }
            (QueryKind::Oltp, Goal::AvgResponseAtMost(d)) => {
                assert!(!d.is_zero(), "response-time goal must be positive")
            }
            _ => panic!(
                "goal metric does not match workload type for class {} ({:?})",
                self.id, self.kind
            ),
        }
    }

    /// The paper's three experiment classes.
    pub fn paper_classes() -> Vec<ServiceClass> {
        vec![
            ServiceClass::new(
                ClassId(1),
                "Class 1 (OLAP)",
                QueryKind::Olap,
                1,
                Goal::VelocityAtLeast(0.4),
            ),
            ServiceClass::new(
                ClassId(2),
                "Class 2 (OLAP)",
                QueryKind::Olap,
                2,
                Goal::VelocityAtLeast(0.6),
            ),
            ServiceClass::new(
                ClassId(3),
                "Class 3 (OLTP)",
                QueryKind::Oltp,
                3,
                Goal::AvgResponseAtMost(SimDuration::from_millis(250)),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_classes_match_the_paper() {
        let cs = ServiceClass::paper_classes();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].importance, 1);
        assert_eq!(cs[1].importance, 2);
        assert_eq!(cs[2].importance, 3);
        assert_eq!(cs[0].goal, Goal::VelocityAtLeast(0.4));
        assert_eq!(cs[1].goal, Goal::VelocityAtLeast(0.6));
        assert_eq!(
            cs[2].goal,
            Goal::AvgResponseAtMost(SimDuration::from_millis(250))
        );
        for c in &cs {
            c.validate();
        }
    }

    #[test]
    fn velocity_achievement() {
        let g = Goal::VelocityAtLeast(0.4);
        assert!((g.achievement(0.4) - 1.0).abs() < 1e-12);
        assert!((g.achievement(0.6) - 1.5).abs() < 1e-12);
        assert!((g.achievement(0.2) - 0.5).abs() < 1e-12);
        assert!(g.is_met(0.5));
        assert!(!g.is_met(0.39));
    }

    #[test]
    fn response_achievement_is_inverse() {
        let g = Goal::AvgResponseAtMost(SimDuration::from_millis(250));
        assert!((g.achievement(0.25) - 1.0).abs() < 1e-12);
        assert!((g.achievement(0.5) - 0.5).abs() < 1e-12);
        assert!((g.achievement(0.125) - 2.0).abs() < 1e-12);
        assert!(g.is_met(0.2));
        assert!(!g.is_met(0.3));
        // Degenerate zero response clamps high but finite.
        assert!(g.achievement(0.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "does not match workload type")]
    fn olap_with_response_goal_panics() {
        let _ = ServiceClass::new(
            ClassId(1),
            "bad",
            QueryKind::Olap,
            1,
            Goal::AvgResponseAtMost(SimDuration::from_secs(1)),
        );
    }
}
