//! Utility functions: encoding goals and business importance.
//!
//! "We use utility functions to capture the goals and importance of a
//! workload and then view the development of a scheduling plan as an
//! optimization problem involving the utility functions" (§2).
//!
//! The semantics the paper demonstrates (§4.2, "Importance of classes"):
//!
//! * importance is **not** priority — it takes effect *only when the class
//!   violates its performance goal*;
//! * above goal, extra performance earns only a small, importance-independent
//!   bonus (so surplus resources flow to classes that still need them);
//! * below goal, the penalty grows steeply with importance, so the solver
//!   rescues the most important violated class first.

use serde::{Deserialize, Serialize};

/// Maps an achievement ratio (measured/goal, 1.0 = exactly at goal) and an
/// importance level to a utility value. `Send` so the owning engine can
/// migrate across worker threads between allocation barriers.
pub trait UtilityFn: Send {
    /// Utility of one class. Must be monotonically non-decreasing in
    /// `achievement`.
    fn utility(&self, importance: u8, achievement: f64) -> f64;
}

/// The reproduction's default utility: piecewise linear-below /
/// saturating-above goal.
///
/// ```
/// use qsched_core::utility::{GoalUtility, UtilityFn};
///
/// let u = GoalUtility::default();
/// // Importance matters only below goal (the paper's §4.2 semantics):
/// assert_eq!(u.utility(1, 1.5), u.utility(3, 1.5));
/// assert!(u.utility(3, 0.5) < u.utility(1, 0.5));
/// ```
///
/// * `a ≥ 1`: `1 + bonus · (1 − e^{−(a−1)})` — small, bounded, importance-free.
/// * `a < 1`: `1 − importance² · (1 − a)` — importance-quadratic penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoalUtility {
    /// Maximum bonus for exceeding a goal (kept well below any penalty step).
    pub bonus: f64,
}

impl Default for GoalUtility {
    fn default() -> Self {
        GoalUtility { bonus: 0.1 }
    }
}

impl UtilityFn for GoalUtility {
    fn utility(&self, importance: u8, achievement: f64) -> f64 {
        debug_assert!(achievement >= 0.0, "negative achievement {achievement}");
        if achievement >= 1.0 {
            1.0 + self.bonus * (1.0 - (-(achievement - 1.0)).exp())
        } else {
            let w = f64::from(importance).powi(2);
            1.0 - w * (1.0 - achievement)
        }
    }
}

/// A hard-SLA utility: a fixed reward for meeting the goal, a fixed
/// importance-scaled penalty for missing it, with a small linear tilt so
/// solvers still see a gradient inside each regime.
///
/// Models contracts where an SLO is pass/fail (credits are owed on any
/// violation, no bonus for overshoot). Compared to [`GoalUtility`] it makes
/// the solver indifferent between "barely met" and "comfortably met", which
/// frees more budget for violated classes at the cost of robustness to
/// measurement noise near the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepUtility {
    /// Penalty per importance unit for a violated goal.
    pub penalty: f64,
    /// Gradient tilt inside each regime (keeps solvers oriented).
    pub tilt: f64,
}

impl Default for StepUtility {
    fn default() -> Self {
        StepUtility {
            penalty: 1.0,
            tilt: 0.01,
        }
    }
}

impl UtilityFn for StepUtility {
    fn utility(&self, importance: u8, achievement: f64) -> f64 {
        debug_assert!(achievement >= 0.0);
        let tilt = self.tilt * achievement.min(2.0);
        if achievement >= 1.0 {
            1.0 + tilt
        } else {
            1.0 - self.penalty * f64::from(importance) + tilt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_goal_utility_is_one_for_any_importance() {
        let u = GoalUtility::default();
        for imp in 1..=5 {
            assert!((u.utility(imp, 1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn importance_matters_only_under_violation() {
        let u = GoalUtility::default();
        // Above goal: identical for all importance levels.
        assert_eq!(u.utility(1, 1.5), u.utility(3, 1.5));
        // Below goal: higher importance loses more.
        assert!(u.utility(3, 0.5) < u.utility(2, 0.5));
        assert!(u.utility(2, 0.5) < u.utility(1, 0.5));
    }

    #[test]
    fn monotone_in_achievement() {
        let u = GoalUtility::default();
        for imp in 1..=3 {
            let mut prev = f64::NEG_INFINITY;
            for i in 0..200 {
                let a = i as f64 * 0.02;
                let v = u.utility(imp, a);
                assert!(v >= prev, "utility not monotone at a={a}, imp={imp}");
                prev = v;
            }
        }
    }

    #[test]
    fn bonus_is_bounded() {
        let u = GoalUtility::default();
        assert!(u.utility(1, 100.0) <= 1.0 + u.bonus + 1e-12);
    }

    #[test]
    fn step_utility_is_flat_above_goal_and_steps_below() {
        let u = StepUtility::default();
        // Above goal: nearly flat (only the tilt differs).
        let met_low = u.utility(3, 1.0);
        let met_high = u.utility(3, 2.0);
        assert!((met_high - met_low) < 0.02);
        // Below goal: a discrete importance-scaled drop.
        assert!(u.utility(3, 0.99) < met_low - 2.5);
        assert!(u.utility(1, 0.99) > u.utility(3, 0.99));
    }

    #[test]
    fn step_utility_monotone() {
        let u = StepUtility::default();
        for imp in 1..=3 {
            let mut prev = f64::NEG_INFINITY;
            for i in 0..100 {
                let v = u.utility(imp, i as f64 * 0.03);
                assert!(v >= prev - 1e-12, "not monotone at {i}");
                prev = v;
            }
        }
    }

    #[test]
    fn rescuing_a_violated_important_class_beats_boosting_a_met_one() {
        // The allocation story of §4.2: moving resources from a class
        // exceeding its goal to an important violated class must raise total
        // utility.
        let u = GoalUtility::default();
        // Before: class A (imp 1) at 1.5× goal, class B (imp 3) at 0.6× goal.
        let before = u.utility(1, 1.5) + u.utility(3, 0.6);
        // After the shift: A drops to exactly goal, B recovers to goal.
        let after = u.utility(1, 1.0) + u.utility(3, 1.0);
        assert!(after > before);
    }
}
