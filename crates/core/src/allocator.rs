//! The global allocator: the top level of the two-level sharded control
//! plane.
//!
//! One [`GlobalAllocator`] fronts N backend pools. Each backend runs its own
//! per-shard controller (a [`QueryScheduler`] dividing its *own* system
//! limit across service classes); the allocator's job is to divide the
//! *fleet-wide* cost budget across backends so capacity follows demand.
//!
//! The solve reuses the shape of the marginal water-filling solver from the
//! many-class control plane: backend `b`'s utility for an allocation `x` is
//! the concave
//!
//! ```text
//! U_b(x) = w_b · d_b · x / (x + d_b)
//! ```
//!
//! where `d_b` is the backend's offered load (executing + queued cost, in
//! timerons) and `w_b` its weight. The marginal `U_b'(x) = w_b ·
//! (d_b/(x+d_b))²` starts at `w_b` for every backend and decays with the
//! *ratio* of allocation to demand, so equalizing marginals — what
//! water-filling does — yields allocations proportional to weighted demand
//! while staying strictly concave (greedy unit moves are globally optimal
//! on the unit lattice).
//!
//! ## Hot-path discipline
//!
//! Like the per-interval scheduler path, a steady-state solve allocates
//! nothing: the budget is discretized into [`GlobalAllocator::UNITS`] equal
//! units held in reusable vectors, and each solve *warm-starts* from the
//! previous unit assignment, transferring single units from the backend
//! with the smallest marginal loss to the backend with the largest marginal
//! gain until no transfer improves total utility. When demand barely moves
//! between intervals (the common case), the solve is a handful of
//! comparisons and zero moves.
//!
//! [`QueryScheduler`]: crate::scheduler::QueryScheduler

use qsched_dbms::cost::Timerons;
use serde::{Deserialize, Serialize};

/// One backend's demand signal for a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendDemand {
    /// Offered load: cost currently executing plus cost queued for release,
    /// in timerons. Zero is legal (an idle backend keeps its floor).
    pub offered: Timerons,
    /// Relative weight (business importance of the tenant/pool this backend
    /// serves). Must be positive; `1.0` for homogeneous fleets.
    pub weight: f64,
}

impl BackendDemand {
    /// Demand with unit weight.
    pub fn offered(offered: Timerons) -> Self {
        BackendDemand {
            offered,
            weight: 1.0,
        }
    }
}

/// Solve counters. `solves`/`no_op_solves`/`units_moved` are deterministic
/// (pure functions of the demand sequence, safe in digests); `poll_ns` is
/// host wall-clock spent polling offered loads at the barrier — diagnostic
/// only, and zeroed via [`AllocatorStats::normalized`] before any
/// bit-identity comparison (the same convention as the experiment layer's
/// `PerfStats` wall seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AllocatorStats {
    /// Solves performed.
    pub solves: u64,
    /// Solves that moved no units (demand drift stayed inside one unit).
    pub no_op_solves: u64,
    /// Budget units transferred between backends over all solves.
    pub units_moved: u64,
    /// Solves run with at least one backend under the bounded-staleness
    /// guard (its last load report was older than the staleness budget, so
    /// its previous allocation was held instead of re-solved).
    #[serde(default)]
    pub stale_solves: u64,
    /// Total backend-holds across all stale solves (two held shards in one
    /// solve count twice).
    #[serde(default)]
    pub stale_holds: u64,
    /// Host nanoseconds spent polling per-backend offered loads across all
    /// barriers (attributes barrier overhead: poll vs. solve vs. stepping).
    /// Wall-clock, not virtual time — excluded from determinism checks.
    #[serde(default)]
    pub poll_ns: u64,
}

impl AllocatorStats {
    /// This record with host-time fields zeroed: the deterministic part,
    /// safe to compare bit-for-bit across runs and worker counts.
    pub fn normalized(mut self) -> Self {
        self.poll_ns = 0;
        self
    }
}

/// Configuration of the global allocation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// Fraction of the even split every backend keeps regardless of demand
    /// (`0.1` = a backend can shrink to 10% of `total/n`, never below).
    /// Keeps an idle shard warm enough to absorb a demand swing within one
    /// global interval, mirroring the per-class floor in the scheduler.
    pub floor_fraction: f64,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            floor_fraction: 0.1,
        }
    }
}

impl AllocatorConfig {
    /// Panic on malformed knobs (mirrors the other config types).
    pub fn validate(&self) {
        assert!(
            self.floor_fraction.is_finite() && (0.0..=1.0).contains(&self.floor_fraction),
            "floor_fraction {} outside [0, 1]",
            self.floor_fraction
        );
    }
}

/// Warm-started marginal water-filling across backend pools.
#[derive(Debug, Clone)]
pub struct GlobalAllocator {
    cfg: AllocatorConfig,
    /// Current unit assignment, one entry per backend. Warm-start state:
    /// survives across solves; resized (and re-seeded with the even split)
    /// only when the backend count changes.
    units: Vec<u32>,
    /// Scratch: per-backend demand as f64 (demand floor applied).
    demand: Vec<f64>,
    /// Scratch: per-backend weight.
    weight: Vec<f64>,
    /// Scratch: per-backend floor in units.
    floor: Vec<u32>,
    stats: AllocatorStats,
}

impl GlobalAllocator {
    /// Budget lattice resolution: the total is split into this many equal
    /// units. 1024 units over a 30 000-timeron budget is a ~29-timeron
    /// granule — far below the cost of a single OLAP query, so
    /// discretization never starves a class, while keeping the worst-case
    /// cold solve at `UNITS` unit placements.
    pub const UNITS: u32 = 1024;

    /// A fresh allocator (first solve cold-starts from the even split).
    pub fn new(cfg: AllocatorConfig) -> Self {
        Self::with_backends(cfg, 0)
    }

    /// A fresh allocator with every scratch vector pre-sized for a
    /// `backends`-wide fleet, so the first real solve of a run never
    /// reallocates (the `solve_ns_max` outliers in the shard bench were
    /// first-solve scratch growth, not solver work).
    pub fn with_backends(cfg: AllocatorConfig, backends: usize) -> Self {
        cfg.validate();
        GlobalAllocator {
            cfg,
            units: Vec::with_capacity(backends),
            demand: Vec::with_capacity(backends),
            weight: Vec::with_capacity(backends),
            floor: Vec::with_capacity(backends),
            stats: AllocatorStats::default(),
        }
    }

    /// Solve counters.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Charge `ns` host nanoseconds of offered-load polling to the stats
    /// (the orchestrator times the poll loop around the solve).
    pub fn note_poll_ns(&mut self, ns: u64) {
        self.stats.poll_ns += ns;
    }

    /// Marginal utility of giving backend `b` one more unit when it holds
    /// `x` units: `U_b(x+1) − U_b(x)` on the unit lattice.
    fn gain(&self, b: usize, x: u32) -> f64 {
        let d = self.demand[b];
        let u = |x: f64| d * x / (x + d);
        self.weight[b] * (u(f64::from(x) + 1.0) - u(f64::from(x)))
    }

    /// Divide `total` across `demands.len()` backends, writing one limit per
    /// backend into `out` (cleared first). Allocation-free once `out` and
    /// the internal scratch have grown to the fleet size.
    ///
    /// Guarantees:
    /// * `out` sums to `total` exactly for `n == 1`, and to within one part
    ///   in 2⁴⁰ of `total` otherwise (units are equal f64 slices).
    /// * every backend receives at least `floor_fraction · total / n`.
    /// * deterministic: ties break toward the lowest backend index, and the
    ///   result depends only on the demand sequence since construction.
    ///
    /// # Panics
    /// Panics if `demands` is empty, `total` is not positive, or any weight
    /// is not positive and finite.
    pub fn allocate(
        &mut self,
        total: Timerons,
        demands: &[BackendDemand],
        out: &mut Vec<Timerons>,
    ) {
        let n = demands.len();
        assert!(n > 0, "allocate over zero backends");
        assert!(
            total.get().is_finite() && total.get() > 0.0,
            "total budget must be positive"
        );
        self.stats.solves += 1;
        out.clear();
        if n == 1 {
            // Degenerate fleet: hand the whole budget through exactly. The
            // single-backend topology must be bit-identical to the
            // unsharded path, so no lattice arithmetic is allowed here.
            self.units.clear();
            self.units.push(Self::UNITS);
            out.push(total);
            self.stats.no_op_solves += 1;
            return;
        }

        // Refresh scratch from the demand signal. Demands are floored at
        // one unit's worth so marginals stay finite and an idle backend
        // still orders deterministically below any loaded one.
        let unit = total.get() / f64::from(Self::UNITS);
        self.demand.clear();
        self.weight.clear();
        for d in demands {
            assert!(
                d.weight.is_finite() && d.weight > 0.0,
                "backend weight must be positive"
            );
            let units_wanted = (d.offered.get().max(0.0) / unit).max(1e-3);
            self.demand.push(units_wanted);
            self.weight.push(d.weight);
        }
        let floor_units =
            ((self.cfg.floor_fraction * f64::from(Self::UNITS) / n as f64).ceil() as u32).min(
                // Floors must remain satisfiable: n·floor ≤ UNITS.
                Self::UNITS / n as u32,
            );
        self.floor.clear();
        self.floor.resize(n, floor_units);

        // (Re-)seed the warm-start assignment when the fleet size changed.
        if self.units.len() != n {
            self.units.clear();
            let base = Self::UNITS / n as u32;
            let extra = (Self::UNITS % n as u32) as usize;
            for b in 0..n {
                self.units.push(base + u32::from(b < extra));
            }
        }
        // Lift any backend below its floor first (floors can rise when the
        // fleet shrinks); pay from the richest backends.
        for b in 0..n {
            while self.units[b] < self.floor[b] {
                let donor = (0..n)
                    .filter(|&o| o != b && self.units[o] > self.floor[o])
                    .max_by(|&a, &c| {
                        self.units[a].cmp(&self.units[c]).then(c.cmp(&a)) // prefer the lowest index on ties
                    })
                    .expect("floors are satisfiable");
                self.units[donor] -= 1;
                self.units[b] += 1;
            }
        }

        // Warm-started transfer polish: move single units from the backend
        // with the smallest marginal loss to the one with the largest
        // marginal gain while the move strictly improves total utility.
        let mut moved = 0u64;
        for _ in 0..Self::UNITS {
            let mut best_gain = f64::NEG_INFINITY;
            let mut best_to = usize::MAX;
            let mut least_loss = f64::INFINITY;
            let mut best_from = usize::MAX;
            for b in 0..n {
                let g = self.gain(b, self.units[b]);
                if g > best_gain {
                    best_gain = g;
                    best_to = b;
                }
                if self.units[b] > self.floor[b] {
                    let l = self.gain(b, self.units[b] - 1);
                    if l < least_loss {
                        least_loss = l;
                        best_from = b;
                    }
                }
            }
            if best_from == usize::MAX
                || best_from == best_to
                || best_gain <= least_loss * (1.0 + 1e-12) + 1e-15
            {
                break;
            }
            self.units[best_from] -= 1;
            self.units[best_to] += 1;
            moved += 1;
        }
        self.stats.units_moved += moved;
        if moved == 0 {
            self.stats.no_op_solves += 1;
        }

        debug_assert_eq!(self.units.iter().sum::<u32>(), Self::UNITS);
        for &u in &self.units {
            out.push(Timerons::new(f64::from(u) * unit));
        }
    }

    /// Like [`GlobalAllocator::allocate`], but with a bounded-staleness
    /// guard: backends flagged in `holds` keep their current unit count
    /// untouched (the allocator has no trustworthy demand signal for them —
    /// their last load report is older than the staleness budget), and the
    /// water-filling polish redistributes only among the free backends.
    ///
    /// With no hold set this delegates to [`GlobalAllocator::allocate`] and
    /// is bit-identical to it, counters included — the zero-fault leased
    /// control plane must not perturb the solve sequence.
    ///
    /// # Panics
    /// Panics if `holds` and `demands` disagree in length, plus everything
    /// [`GlobalAllocator::allocate`] panics on.
    pub fn allocate_with_holds(
        &mut self,
        total: Timerons,
        demands: &[BackendDemand],
        holds: &[bool],
        out: &mut Vec<Timerons>,
    ) {
        assert_eq!(demands.len(), holds.len(), "one hold flag per backend");
        if !holds.iter().any(|&h| h) {
            self.allocate(total, demands, out);
            return;
        }
        let n = demands.len();
        assert!(n > 0, "allocate over zero backends");
        assert!(
            total.get().is_finite() && total.get() > 0.0,
            "total budget must be positive"
        );
        self.stats.solves += 1;
        self.stats.stale_solves += 1;
        self.stats.stale_holds += holds.iter().filter(|&&h| h).count() as u64;
        out.clear();
        let unit = total.get() / f64::from(Self::UNITS);
        // (Re-)seed before freezing, so a held backend of a fresh allocator
        // holds its even share rather than garbage.
        if self.units.len() != n {
            self.units.clear();
            let base = Self::UNITS / n as u32;
            let extra = (Self::UNITS % n as u32) as usize;
            for b in 0..n {
                self.units.push(base + u32::from(b < extra));
            }
        }
        if n == 1 {
            // A lone held backend keeps whatever it holds (the whole lattice).
            out.push(Timerons::new(f64::from(self.units[0]) * unit));
            self.stats.no_op_solves += 1;
            return;
        }
        self.demand.clear();
        self.weight.clear();
        for d in demands {
            assert!(
                d.weight.is_finite() && d.weight > 0.0,
                "backend weight must be positive"
            );
            let units_wanted = (d.offered.get().max(0.0) / unit).max(1e-3);
            self.demand.push(units_wanted);
            self.weight.push(d.weight);
        }
        let floor_units = ((self.cfg.floor_fraction * f64::from(Self::UNITS) / n as f64).ceil()
            as u32)
            .min(Self::UNITS / n as u32);
        self.floor.clear();
        for (b, &held) in holds.iter().enumerate().take(n) {
            // A held backend is frozen in place: floor == current units, and
            // it sits out both sides of every transfer below.
            self.floor
                .push(if held { self.units[b] } else { floor_units });
        }
        for b in 0..n {
            if holds[b] {
                continue;
            }
            while self.units[b] < self.floor[b] {
                // Unlike the unheld solve, free floors may be unsatisfiable
                // here (held backends can pin most of the lattice); settle
                // for whatever the free donors can spare.
                let Some(donor) = (0..n)
                    .filter(|&o| o != b && !holds[o] && self.units[o] > self.floor[o])
                    .max_by(|&a, &c| self.units[a].cmp(&self.units[c]).then(c.cmp(&a)))
                else {
                    break;
                };
                self.units[donor] -= 1;
                self.units[b] += 1;
            }
        }
        let mut moved = 0u64;
        for _ in 0..Self::UNITS {
            let mut best_gain = f64::NEG_INFINITY;
            let mut best_to = usize::MAX;
            let mut least_loss = f64::INFINITY;
            let mut best_from = usize::MAX;
            for (b, &held) in holds.iter().enumerate().take(n) {
                if held {
                    continue;
                }
                let g = self.gain(b, self.units[b]);
                if g > best_gain {
                    best_gain = g;
                    best_to = b;
                }
                if self.units[b] > self.floor[b] {
                    let l = self.gain(b, self.units[b] - 1);
                    if l < least_loss {
                        least_loss = l;
                        best_from = b;
                    }
                }
            }
            if best_from == usize::MAX
                || best_from == best_to
                || best_gain <= least_loss * (1.0 + 1e-12) + 1e-15
            {
                break;
            }
            self.units[best_from] -= 1;
            self.units[best_to] += 1;
            moved += 1;
        }
        self.stats.units_moved += moved;
        if moved == 0 {
            self.stats.no_op_solves += 1;
        }

        debug_assert_eq!(self.units.iter().sum::<u32>(), Self::UNITS);
        for &u in &self.units {
            out.push(Timerons::new(f64::from(u) * unit));
        }
    }

    /// Cold-restart reconstruction: re-seed the warm-start unit assignment
    /// from the applied limits the shards echo back in their load reports
    /// (`None` = that shard has not reported since the restart; the silent
    /// shards share whatever part of the lattice the reports leave
    /// unclaimed, evenly). Targets are normalized to exactly
    /// [`GlobalAllocator::UNITS`] by largest-remainder rounding (ties toward
    /// the lowest index), so the rebuilt lattice is a valid assignment
    /// whatever mixture of leased, fallback and stale limits the fleet
    /// reports.
    ///
    /// # Panics
    /// Panics if `reported` is empty or `total` is not positive.
    pub fn reconstruct(&mut self, total: Timerons, reported: &[Option<Timerons>]) {
        let n = reported.len();
        assert!(n > 0, "reconstruct over zero backends");
        assert!(
            total.get().is_finite() && total.get() > 0.0,
            "total budget must be positive"
        );
        let unit = total.get() / f64::from(Self::UNITS);
        let mut target: Vec<f64> = Vec::with_capacity(n);
        let mut reported_units = 0.0f64;
        let mut silent = 0usize;
        for r in reported {
            match r {
                Some(t) => {
                    let u = (t.get().max(0.0) / unit).min(f64::from(Self::UNITS));
                    reported_units += u;
                    target.push(u);
                }
                None => {
                    silent += 1;
                    target.push(f64::NAN); // placeholder, filled below
                }
            }
        }
        if silent > 0 {
            let share = (f64::from(Self::UNITS) - reported_units).max(0.0) / silent as f64;
            for t in &mut target {
                if t.is_nan() {
                    *t = share;
                }
            }
        }
        let sum: f64 = target.iter().sum();
        if sum > 0.0 {
            let scale = f64::from(Self::UNITS) / sum;
            for t in &mut target {
                *t *= scale;
            }
        } else {
            let even = f64::from(Self::UNITS) / n as f64;
            target.fill(even);
        }
        self.units.clear();
        let mut assigned = 0u32;
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
        for (b, t) in target.iter().enumerate() {
            let fl = t.floor() as u32;
            self.units.push(fl);
            assigned += fl;
            remainders.push((b, t - f64::from(fl)));
        }
        remainders.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut leftover = Self::UNITS.saturating_sub(assigned);
        for (b, _) in remainders {
            if leftover == 0 {
                break;
            }
            self.units[b] += 1;
            leftover -= 1;
        }
        debug_assert_eq!(self.units.iter().sum::<u32>(), Self::UNITS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(total: f64, offered: &[f64]) -> Vec<f64> {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands: Vec<BackendDemand> = offered
            .iter()
            .map(|&o| BackendDemand::offered(Timerons::new(o)))
            .collect();
        let mut out = Vec::new();
        a.allocate(Timerons::new(total), &demands, &mut out);
        out.iter().map(|t| t.get()).collect()
    }

    #[test]
    fn single_backend_gets_the_exact_total() {
        let out = alloc(30_000.0, &[12_345.0]);
        assert_eq!(out, vec![30_000.0], "no lattice rounding for n == 1");
    }

    #[test]
    fn equal_demand_splits_evenly() {
        let out = alloc(30_000.0, &[5_000.0, 5_000.0, 5_000.0]);
        for x in &out {
            assert!((x - 10_000.0).abs() < 60.0, "allocation {out:?}");
        }
        let sum: f64 = out.iter().sum();
        assert!((sum - 30_000.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn allocation_follows_demand_proportionally() {
        let out = alloc(30_000.0, &[3_000.0, 9_000.0]);
        // Water-filling on U = d·x/(x+d) equalizes x/d → x ∝ d.
        let ratio = out[1] / out[0];
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}, out {out:?}");
    }

    #[test]
    fn weight_tilts_the_split() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands = [
            BackendDemand {
                offered: Timerons::new(5_000.0),
                weight: 1.0,
            },
            BackendDemand {
                offered: Timerons::new(5_000.0),
                weight: 4.0,
            },
        ];
        let mut out = Vec::new();
        a.allocate(Timerons::new(30_000.0), &demands, &mut out);
        assert!(
            out[1].get() > out[0].get() * 1.3,
            "weighted backend must win: {out:?}"
        );
    }

    #[test]
    fn idle_backend_keeps_its_floor() {
        let out = alloc(30_000.0, &[0.0, 20_000.0, 20_000.0]);
        let floor = 0.1 * 30_000.0 / 3.0;
        assert!(out[0] >= floor - 1e-6, "idle backend got {out:?}");
        // ...and no more than a unit or two above it.
        assert!(out[0] < floor + 200.0, "idle backend hoards: {out:?}");
    }

    #[test]
    fn warm_start_makes_stable_demand_a_no_op() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands: Vec<BackendDemand> = [4_000.0, 8_000.0, 2_000.0, 6_000.0]
            .iter()
            .map(|&o| BackendDemand::offered(Timerons::new(o)))
            .collect();
        let mut out = Vec::new();
        a.allocate(Timerons::new(30_000.0), &demands, &mut out);
        let first = out.clone();
        let moved_cold = a.stats().units_moved;
        for _ in 0..5 {
            a.allocate(Timerons::new(30_000.0), &demands, &mut out);
            assert_eq!(out, first, "stable demand must keep the split");
        }
        let s = a.stats();
        assert_eq!(s.units_moved, moved_cold, "steady state must move nothing");
        assert_eq!(s.no_op_solves, 5);
    }

    #[test]
    fn reallocation_tracks_a_demand_shift() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let mut out = Vec::new();
        let d = |x: f64, y: f64| {
            vec![
                BackendDemand::offered(Timerons::new(x)),
                BackendDemand::offered(Timerons::new(y)),
            ]
        };
        a.allocate(Timerons::new(30_000.0), &d(8_000.0, 8_000.0), &mut out);
        let even = out[0].get();
        a.allocate(Timerons::new(30_000.0), &d(14_000.0, 2_000.0), &mut out);
        assert!(
            out[0].get() > even * 1.5,
            "shifted demand must pull budget: {out:?}"
        );
        let sum = out[0].get() + out[1].get();
        assert!((sum - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn budget_conserved_across_fleet_sizes() {
        for n in [2usize, 3, 5, 8, 16, 32] {
            let offered: Vec<f64> = (0..n).map(|i| 1_000.0 * (i as f64 + 1.0)).collect();
            let out = alloc(50_000.0, &offered);
            let sum: f64 = out.iter().sum();
            assert!((sum - 50_000.0).abs() < 1e-6, "n={n} sum {sum}");
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn hold_free_solve_is_bit_identical_to_allocate() {
        let demands: Vec<BackendDemand> = [4_000.0, 9_000.0, 1_000.0]
            .iter()
            .map(|&o| BackendDemand::offered(Timerons::new(o)))
            .collect();
        let mut plain = GlobalAllocator::new(AllocatorConfig::default());
        let mut guarded = GlobalAllocator::new(AllocatorConfig::default());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for _ in 0..4 {
            plain.allocate(Timerons::new(30_000.0), &demands, &mut a);
            guarded.allocate_with_holds(
                Timerons::new(30_000.0),
                &demands,
                &[false, false, false],
                &mut b,
            );
            let bits = |v: &[Timerons]| v.iter().map(|t| t.get().to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "delegation must be exact");
        }
        assert_eq!(plain.stats(), guarded.stats(), "counters must match too");
        assert_eq!(guarded.stats().stale_solves, 0);
    }

    #[test]
    fn held_backend_keeps_its_allocation_through_a_demand_shift() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let d = |x: f64, y: f64, z: f64| {
            vec![
                BackendDemand::offered(Timerons::new(x)),
                BackendDemand::offered(Timerons::new(y)),
                BackendDemand::offered(Timerons::new(z)),
            ]
        };
        let mut out = Vec::new();
        a.allocate(
            Timerons::new(30_000.0),
            &d(8_000.0, 8_000.0, 8_000.0),
            &mut out,
        );
        let held_before = out[1];
        // Backend 1's report went stale; its demand signal here is garbage
        // (zero) but the hold must pin its allocation anyway.
        a.allocate_with_holds(
            Timerons::new(30_000.0),
            &d(14_000.0, 0.0, 2_000.0),
            &[false, true, false],
            &mut out,
        );
        assert_eq!(
            out[1].get().to_bits(),
            held_before.get().to_bits(),
            "held backend moved: {out:?}"
        );
        assert!(
            out[0] > out[2],
            "free backends must still track demand: {out:?}"
        );
        let sum: f64 = out.iter().map(|t| t.get()).sum();
        assert!((sum - 30_000.0).abs() < 1e-6, "sum {sum}");
        assert_eq!(a.stats().stale_solves, 1);
        assert_eq!(a.stats().stale_holds, 1);
    }

    #[test]
    fn all_held_solve_moves_nothing() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands = vec![
            BackendDemand::offered(Timerons::new(1_000.0)),
            BackendDemand::offered(Timerons::new(20_000.0)),
        ];
        let mut out = Vec::new();
        a.allocate(Timerons::new(30_000.0), &demands, &mut out);
        let before = out.clone();
        let moved = a.stats().units_moved;
        a.allocate_with_holds(Timerons::new(30_000.0), &demands, &[true, true], &mut out);
        assert_eq!(out, before, "everything frozen, nothing may move");
        assert_eq!(a.stats().units_moved, moved);
        assert_eq!(a.stats().stale_holds, 2);
    }

    #[test]
    fn reconstruct_recovers_a_reported_split() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands: Vec<BackendDemand> = [3_000.0, 9_000.0, 6_000.0, 1_000.0]
            .iter()
            .map(|&o| BackendDemand::offered(Timerons::new(o)))
            .collect();
        let mut out = Vec::new();
        a.allocate(Timerons::new(30_000.0), &demands, &mut out);
        let reported: Vec<Option<Timerons>> = out.iter().copied().map(Some).collect();

        // A cold allocator rebuilt from the reports must land on the same
        // lattice: its next solve under unchanged demand is a no-op.
        let mut rebuilt = GlobalAllocator::new(AllocatorConfig::default());
        rebuilt.reconstruct(Timerons::new(30_000.0), &reported);
        let mut again = Vec::new();
        rebuilt.allocate(Timerons::new(30_000.0), &demands, &mut again);
        assert_eq!(
            out.iter().map(|t| t.get().to_bits()).collect::<Vec<_>>(),
            again.iter().map(|t| t.get().to_bits()).collect::<Vec<_>>(),
            "reconstructed allocator must resume the old split"
        );
        assert_eq!(rebuilt.stats().units_moved, 0, "resume must be a no-op");
    }

    #[test]
    fn reconstruct_fills_missing_reports_with_even_shares() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        a.reconstruct(
            Timerons::new(30_000.0),
            &[Some(Timerons::new(15_000.0)), None, None],
        );
        // One loud shard, two silent ones: the silent pair splits the rest
        // evenly (up to largest-remainder rounding on the 1024 lattice).
        let mut out = Vec::new();
        a.allocate_with_holds(
            Timerons::new(30_000.0),
            &[
                BackendDemand::offered(Timerons::new(1.0)),
                BackendDemand::offered(Timerons::new(1.0)),
                BackendDemand::offered(Timerons::new(1.0)),
            ],
            &[true, true, true],
            &mut out,
        );
        assert!((out[0].get() - 15_000.0).abs() < 60.0, "{out:?}");
        assert!((out[1].get() - 7_500.0).abs() < 60.0, "{out:?}");
        assert!((out[1].get() - out[2].get()).abs() < 60.0, "{out:?}");
    }

    #[test]
    fn determinism_across_instances() {
        let run = || {
            let mut a = GlobalAllocator::new(AllocatorConfig::default());
            let mut out = Vec::new();
            let mut trace = Vec::new();
            for step in 0..10u64 {
                let demands: Vec<BackendDemand> = (0..4)
                    .map(|b| {
                        BackendDemand::offered(Timerons::new(
                            1_000.0 + 997.0 * ((step * 4 + b) % 7) as f64,
                        ))
                    })
                    .collect();
                a.allocate(Timerons::new(30_000.0), &demands, &mut out);
                trace.extend(out.iter().map(|t| t.get().to_bits()));
            }
            (trace, a.stats())
        };
        assert_eq!(run(), run(), "solves must be bit-identical");
    }
}
