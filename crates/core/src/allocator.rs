//! The global allocator: the top level of the two-level sharded control
//! plane.
//!
//! One [`GlobalAllocator`] fronts N backend pools. Each backend runs its own
//! per-shard controller (a [`QueryScheduler`] dividing its *own* system
//! limit across service classes); the allocator's job is to divide the
//! *fleet-wide* cost budget across backends so capacity follows demand.
//!
//! The solve reuses the shape of the marginal water-filling solver from the
//! many-class control plane: backend `b`'s utility for an allocation `x` is
//! the concave
//!
//! ```text
//! U_b(x) = w_b · d_b · x / (x + d_b)
//! ```
//!
//! where `d_b` is the backend's offered load (executing + queued cost, in
//! timerons) and `w_b` its weight. The marginal `U_b'(x) = w_b ·
//! (d_b/(x+d_b))²` starts at `w_b` for every backend and decays with the
//! *ratio* of allocation to demand, so equalizing marginals — what
//! water-filling does — yields allocations proportional to weighted demand
//! while staying strictly concave (greedy unit moves are globally optimal
//! on the unit lattice).
//!
//! ## Hot-path discipline
//!
//! Like the per-interval scheduler path, a steady-state solve allocates
//! nothing: the budget is discretized into [`GlobalAllocator::UNITS`] equal
//! units held in reusable vectors, and each solve *warm-starts* from the
//! previous unit assignment, transferring single units from the backend
//! with the smallest marginal loss to the backend with the largest marginal
//! gain until no transfer improves total utility. When demand barely moves
//! between intervals (the common case), the solve is a handful of
//! comparisons and zero moves.
//!
//! [`QueryScheduler`]: crate::scheduler::QueryScheduler

use qsched_dbms::cost::Timerons;
use serde::{Deserialize, Serialize};

/// One backend's demand signal for a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendDemand {
    /// Offered load: cost currently executing plus cost queued for release,
    /// in timerons. Zero is legal (an idle backend keeps its floor).
    pub offered: Timerons,
    /// Relative weight (business importance of the tenant/pool this backend
    /// serves). Must be positive; `1.0` for homogeneous fleets.
    pub weight: f64,
}

impl BackendDemand {
    /// Demand with unit weight.
    pub fn offered(offered: Timerons) -> Self {
        BackendDemand {
            offered,
            weight: 1.0,
        }
    }
}

/// Solve counters. `solves`/`no_op_solves`/`units_moved` are deterministic
/// (pure functions of the demand sequence, safe in digests); `poll_ns` is
/// host wall-clock spent polling offered loads at the barrier — diagnostic
/// only, and zeroed via [`AllocatorStats::normalized`] before any
/// bit-identity comparison (the same convention as the experiment layer's
/// `PerfStats` wall seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AllocatorStats {
    /// Solves performed.
    pub solves: u64,
    /// Solves that moved no units (demand drift stayed inside one unit).
    pub no_op_solves: u64,
    /// Budget units transferred between backends over all solves.
    pub units_moved: u64,
    /// Host nanoseconds spent polling per-backend offered loads across all
    /// barriers (attributes barrier overhead: poll vs. solve vs. stepping).
    /// Wall-clock, not virtual time — excluded from determinism checks.
    #[serde(default)]
    pub poll_ns: u64,
}

impl AllocatorStats {
    /// This record with host-time fields zeroed: the deterministic part,
    /// safe to compare bit-for-bit across runs and worker counts.
    pub fn normalized(mut self) -> Self {
        self.poll_ns = 0;
        self
    }
}

/// Configuration of the global allocation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// Fraction of the even split every backend keeps regardless of demand
    /// (`0.1` = a backend can shrink to 10% of `total/n`, never below).
    /// Keeps an idle shard warm enough to absorb a demand swing within one
    /// global interval, mirroring the per-class floor in the scheduler.
    pub floor_fraction: f64,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            floor_fraction: 0.1,
        }
    }
}

impl AllocatorConfig {
    /// Panic on malformed knobs (mirrors the other config types).
    pub fn validate(&self) {
        assert!(
            self.floor_fraction.is_finite() && (0.0..=1.0).contains(&self.floor_fraction),
            "floor_fraction {} outside [0, 1]",
            self.floor_fraction
        );
    }
}

/// Warm-started marginal water-filling across backend pools.
#[derive(Debug, Clone)]
pub struct GlobalAllocator {
    cfg: AllocatorConfig,
    /// Current unit assignment, one entry per backend. Warm-start state:
    /// survives across solves; resized (and re-seeded with the even split)
    /// only when the backend count changes.
    units: Vec<u32>,
    /// Scratch: per-backend demand as f64 (demand floor applied).
    demand: Vec<f64>,
    /// Scratch: per-backend weight.
    weight: Vec<f64>,
    /// Scratch: per-backend floor in units.
    floor: Vec<u32>,
    stats: AllocatorStats,
}

impl GlobalAllocator {
    /// Budget lattice resolution: the total is split into this many equal
    /// units. 1024 units over a 30 000-timeron budget is a ~29-timeron
    /// granule — far below the cost of a single OLAP query, so
    /// discretization never starves a class, while keeping the worst-case
    /// cold solve at `UNITS` unit placements.
    pub const UNITS: u32 = 1024;

    /// A fresh allocator (first solve cold-starts from the even split).
    pub fn new(cfg: AllocatorConfig) -> Self {
        Self::with_backends(cfg, 0)
    }

    /// A fresh allocator with every scratch vector pre-sized for a
    /// `backends`-wide fleet, so the first real solve of a run never
    /// reallocates (the `solve_ns_max` outliers in the shard bench were
    /// first-solve scratch growth, not solver work).
    pub fn with_backends(cfg: AllocatorConfig, backends: usize) -> Self {
        cfg.validate();
        GlobalAllocator {
            cfg,
            units: Vec::with_capacity(backends),
            demand: Vec::with_capacity(backends),
            weight: Vec::with_capacity(backends),
            floor: Vec::with_capacity(backends),
            stats: AllocatorStats::default(),
        }
    }

    /// Solve counters.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Charge `ns` host nanoseconds of offered-load polling to the stats
    /// (the orchestrator times the poll loop around the solve).
    pub fn note_poll_ns(&mut self, ns: u64) {
        self.stats.poll_ns += ns;
    }

    /// Marginal utility of giving backend `b` one more unit when it holds
    /// `x` units: `U_b(x+1) − U_b(x)` on the unit lattice.
    fn gain(&self, b: usize, x: u32) -> f64 {
        let d = self.demand[b];
        let u = |x: f64| d * x / (x + d);
        self.weight[b] * (u(f64::from(x) + 1.0) - u(f64::from(x)))
    }

    /// Divide `total` across `demands.len()` backends, writing one limit per
    /// backend into `out` (cleared first). Allocation-free once `out` and
    /// the internal scratch have grown to the fleet size.
    ///
    /// Guarantees:
    /// * `out` sums to `total` exactly for `n == 1`, and to within one part
    ///   in 2⁴⁰ of `total` otherwise (units are equal f64 slices).
    /// * every backend receives at least `floor_fraction · total / n`.
    /// * deterministic: ties break toward the lowest backend index, and the
    ///   result depends only on the demand sequence since construction.
    ///
    /// # Panics
    /// Panics if `demands` is empty, `total` is not positive, or any weight
    /// is not positive and finite.
    pub fn allocate(
        &mut self,
        total: Timerons,
        demands: &[BackendDemand],
        out: &mut Vec<Timerons>,
    ) {
        let n = demands.len();
        assert!(n > 0, "allocate over zero backends");
        assert!(
            total.get().is_finite() && total.get() > 0.0,
            "total budget must be positive"
        );
        self.stats.solves += 1;
        out.clear();
        if n == 1 {
            // Degenerate fleet: hand the whole budget through exactly. The
            // single-backend topology must be bit-identical to the
            // unsharded path, so no lattice arithmetic is allowed here.
            self.units.clear();
            self.units.push(Self::UNITS);
            out.push(total);
            self.stats.no_op_solves += 1;
            return;
        }

        // Refresh scratch from the demand signal. Demands are floored at
        // one unit's worth so marginals stay finite and an idle backend
        // still orders deterministically below any loaded one.
        let unit = total.get() / f64::from(Self::UNITS);
        self.demand.clear();
        self.weight.clear();
        for d in demands {
            assert!(
                d.weight.is_finite() && d.weight > 0.0,
                "backend weight must be positive"
            );
            let units_wanted = (d.offered.get().max(0.0) / unit).max(1e-3);
            self.demand.push(units_wanted);
            self.weight.push(d.weight);
        }
        let floor_units =
            ((self.cfg.floor_fraction * f64::from(Self::UNITS) / n as f64).ceil() as u32).min(
                // Floors must remain satisfiable: n·floor ≤ UNITS.
                Self::UNITS / n as u32,
            );
        self.floor.clear();
        self.floor.resize(n, floor_units);

        // (Re-)seed the warm-start assignment when the fleet size changed.
        if self.units.len() != n {
            self.units.clear();
            let base = Self::UNITS / n as u32;
            let extra = (Self::UNITS % n as u32) as usize;
            for b in 0..n {
                self.units.push(base + u32::from(b < extra));
            }
        }
        // Lift any backend below its floor first (floors can rise when the
        // fleet shrinks); pay from the richest backends.
        for b in 0..n {
            while self.units[b] < self.floor[b] {
                let donor = (0..n)
                    .filter(|&o| o != b && self.units[o] > self.floor[o])
                    .max_by(|&a, &c| {
                        self.units[a].cmp(&self.units[c]).then(c.cmp(&a)) // prefer the lowest index on ties
                    })
                    .expect("floors are satisfiable");
                self.units[donor] -= 1;
                self.units[b] += 1;
            }
        }

        // Warm-started transfer polish: move single units from the backend
        // with the smallest marginal loss to the one with the largest
        // marginal gain while the move strictly improves total utility.
        let mut moved = 0u64;
        for _ in 0..Self::UNITS {
            let mut best_gain = f64::NEG_INFINITY;
            let mut best_to = usize::MAX;
            let mut least_loss = f64::INFINITY;
            let mut best_from = usize::MAX;
            for b in 0..n {
                let g = self.gain(b, self.units[b]);
                if g > best_gain {
                    best_gain = g;
                    best_to = b;
                }
                if self.units[b] > self.floor[b] {
                    let l = self.gain(b, self.units[b] - 1);
                    if l < least_loss {
                        least_loss = l;
                        best_from = b;
                    }
                }
            }
            if best_from == usize::MAX
                || best_from == best_to
                || best_gain <= least_loss * (1.0 + 1e-12) + 1e-15
            {
                break;
            }
            self.units[best_from] -= 1;
            self.units[best_to] += 1;
            moved += 1;
        }
        self.stats.units_moved += moved;
        if moved == 0 {
            self.stats.no_op_solves += 1;
        }

        debug_assert_eq!(self.units.iter().sum::<u32>(), Self::UNITS);
        for &u in &self.units {
            out.push(Timerons::new(f64::from(u) * unit));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(total: f64, offered: &[f64]) -> Vec<f64> {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands: Vec<BackendDemand> = offered
            .iter()
            .map(|&o| BackendDemand::offered(Timerons::new(o)))
            .collect();
        let mut out = Vec::new();
        a.allocate(Timerons::new(total), &demands, &mut out);
        out.iter().map(|t| t.get()).collect()
    }

    #[test]
    fn single_backend_gets_the_exact_total() {
        let out = alloc(30_000.0, &[12_345.0]);
        assert_eq!(out, vec![30_000.0], "no lattice rounding for n == 1");
    }

    #[test]
    fn equal_demand_splits_evenly() {
        let out = alloc(30_000.0, &[5_000.0, 5_000.0, 5_000.0]);
        for x in &out {
            assert!((x - 10_000.0).abs() < 60.0, "allocation {out:?}");
        }
        let sum: f64 = out.iter().sum();
        assert!((sum - 30_000.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn allocation_follows_demand_proportionally() {
        let out = alloc(30_000.0, &[3_000.0, 9_000.0]);
        // Water-filling on U = d·x/(x+d) equalizes x/d → x ∝ d.
        let ratio = out[1] / out[0];
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}, out {out:?}");
    }

    #[test]
    fn weight_tilts_the_split() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands = [
            BackendDemand {
                offered: Timerons::new(5_000.0),
                weight: 1.0,
            },
            BackendDemand {
                offered: Timerons::new(5_000.0),
                weight: 4.0,
            },
        ];
        let mut out = Vec::new();
        a.allocate(Timerons::new(30_000.0), &demands, &mut out);
        assert!(
            out[1].get() > out[0].get() * 1.3,
            "weighted backend must win: {out:?}"
        );
    }

    #[test]
    fn idle_backend_keeps_its_floor() {
        let out = alloc(30_000.0, &[0.0, 20_000.0, 20_000.0]);
        let floor = 0.1 * 30_000.0 / 3.0;
        assert!(out[0] >= floor - 1e-6, "idle backend got {out:?}");
        // ...and no more than a unit or two above it.
        assert!(out[0] < floor + 200.0, "idle backend hoards: {out:?}");
    }

    #[test]
    fn warm_start_makes_stable_demand_a_no_op() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let demands: Vec<BackendDemand> = [4_000.0, 8_000.0, 2_000.0, 6_000.0]
            .iter()
            .map(|&o| BackendDemand::offered(Timerons::new(o)))
            .collect();
        let mut out = Vec::new();
        a.allocate(Timerons::new(30_000.0), &demands, &mut out);
        let first = out.clone();
        let moved_cold = a.stats().units_moved;
        for _ in 0..5 {
            a.allocate(Timerons::new(30_000.0), &demands, &mut out);
            assert_eq!(out, first, "stable demand must keep the split");
        }
        let s = a.stats();
        assert_eq!(s.units_moved, moved_cold, "steady state must move nothing");
        assert_eq!(s.no_op_solves, 5);
    }

    #[test]
    fn reallocation_tracks_a_demand_shift() {
        let mut a = GlobalAllocator::new(AllocatorConfig::default());
        let mut out = Vec::new();
        let d = |x: f64, y: f64| {
            vec![
                BackendDemand::offered(Timerons::new(x)),
                BackendDemand::offered(Timerons::new(y)),
            ]
        };
        a.allocate(Timerons::new(30_000.0), &d(8_000.0, 8_000.0), &mut out);
        let even = out[0].get();
        a.allocate(Timerons::new(30_000.0), &d(14_000.0, 2_000.0), &mut out);
        assert!(
            out[0].get() > even * 1.5,
            "shifted demand must pull budget: {out:?}"
        );
        let sum = out[0].get() + out[1].get();
        assert!((sum - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn budget_conserved_across_fleet_sizes() {
        for n in [2usize, 3, 5, 8, 16, 32] {
            let offered: Vec<f64> = (0..n).map(|i| 1_000.0 * (i as f64 + 1.0)).collect();
            let out = alloc(50_000.0, &offered);
            let sum: f64 = out.iter().sum();
            assert!((sum - 50_000.0).abs() < 1e-6, "n={n} sum {sum}");
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn determinism_across_instances() {
        let run = || {
            let mut a = GlobalAllocator::new(AllocatorConfig::default());
            let mut out = Vec::new();
            let mut trace = Vec::new();
            for step in 0..10u64 {
                let demands: Vec<BackendDemand> = (0..4)
                    .map(|b| {
                        BackendDemand::offered(Timerons::new(
                            1_000.0 + 997.0 * ((step * 4 + b) % 7) as f64,
                        ))
                    })
                    .collect();
                a.allocate(Timerons::new(30_000.0), &demands, &mut out);
                trace.extend(out.iter().map(|t| t.get().to_bits()));
            }
            (trace, a.stats())
        };
        assert_eq!(run(), run(), "solves must be bit-identical");
    }
}
