//! A classic PI feedback controller — the autonomic-computing alternative
//! to the paper's model-based utility optimisation.
//!
//! Instead of predicting plans with performance models, a
//! proportional-integral controller adjusts the OLAP cost-limit total
//! directly from the OLTP class's error signal
//! (`measured response − goal`): positive error shrinks the OLAP budget,
//! negative error returns it. The freed/granted budget is split between the
//! OLAP classes in proportion to their velocity-goal shortfalls.
//!
//! Comparing this against the Query Scheduler isolates what the paper's
//! models and utility machinery buy over plain feedback control
//! (`ablation_feedback` bench).

use crate::class::{Goal, ServiceClass};
use crate::controller::{Controller, CtrlEvent};
use crate::dispatch::Dispatcher;
use crate::monitor::IntervalMonitor;
use crate::plan::{Plan, PlanLog};
use crate::queue::ClassQueues;
use qsched_dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use qsched_dbms::query::{ClassId, QueryKind};
use qsched_dbms::Timerons;
use qsched_sim::{Ctx, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// PI controller tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiConfig {
    /// Total budget divided among all classes (the system cost limit).
    pub system_limit: Timerons,
    /// Proportional gain: timerons of OLAP budget removed per second of
    /// OLTP response-time error.
    pub kp: f64,
    /// Integral gain: timerons per accumulated second·interval of error.
    pub ki: f64,
    /// Control interval.
    pub control_interval: SimDuration,
    /// Snapshot-monitor sampling interval.
    pub snapshot_interval: SimDuration,
    /// Minimum OLAP total (keeps the OLAP classes alive).
    pub olap_floor: Timerons,
}

impl Default for PiConfig {
    fn default() -> Self {
        PiConfig {
            system_limit: Timerons::new(30_000.0),
            // A 0.1 s error moves the OLAP budget by 4 K (P) + 1 K/interval (I).
            kp: 40_000.0,
            ki: 10_000.0,
            control_interval: SimDuration::from_secs(240),
            snapshot_interval: SimDuration::from_secs(10),
            olap_floor: Timerons::new(1_200.0),
        }
    }
}

/// The PI feedback controller.
pub struct PiController {
    cfg: PiConfig,
    classes: Vec<ServiceClass>,
    olap_ids: Vec<ClassId>,
    oltp: Option<(ClassId, f64)>, // (class, goal seconds)
    dispatcher: Dispatcher,
    queues: ClassQueues,
    monitor: IntervalMonitor,
    olap_total: f64,
    integral: f64,
    plan_log: PlanLog,
}

impl PiController {
    /// Build a PI controller for the given classes.
    ///
    /// # Panics
    /// Panics if there are no OLAP classes.
    pub fn new(classes: Vec<ServiceClass>, cfg: PiConfig) -> Self {
        let olap_ids: Vec<ClassId> = classes
            .iter()
            .filter(|c| c.kind == QueryKind::Olap)
            .map(|c| c.id)
            .collect();
        assert!(!olap_ids.is_empty(), "PI control needs OLAP classes");
        let oltp = classes
            .iter()
            .find(|c| c.kind == QueryKind::Oltp)
            .map(|c| match c.goal {
                Goal::AvgResponseAtMost(d) => (c.id, d.as_secs_f64()),
                _ => unreachable!("validated: OLTP goals are response times"),
            });
        // Start with the whole budget on OLAP, split evenly.
        let olap_total = cfg.system_limit.get();
        let share = olap_total / olap_ids.len() as f64;
        let plan = Plan::new(
            olap_ids
                .iter()
                .map(|&c| (c, Timerons::new(share)))
                .collect(),
        );
        PiController {
            dispatcher: Dispatcher::new(&plan),
            queues: ClassQueues::new(),
            monitor: IntervalMonitor::new(SimTime::ZERO),
            plan_log: PlanLog::new(&plan, SimTime::ZERO),
            olap_total,
            integral: 0.0,
            olap_ids,
            oltp,
            classes,
            cfg,
        }
    }

    /// The current OLAP budget total.
    pub fn olap_total(&self) -> f64 {
        self.olap_total
    }

    fn perform<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        releases: Vec<(ClassId, qsched_dbms::query::QueryId)>,
    ) {
        for (_, id) in releases {
            let ok = dbms.release(ctx, id);
            debug_assert!(ok, "released query must be held");
        }
    }

    fn control_step<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
    ) {
        let ids: Vec<ClassId> = self.classes.iter().map(|c| c.id).collect();
        let meas = self.monitor.end_interval(&ids);
        // PI step on the OLTP error.
        if let Some((oltp_id, goal)) = self.oltp {
            if let Some(t) = meas.get(&oltp_id).and_then(|m| m.response_secs) {
                let error = t - goal; // positive = too slow = shrink OLAP
                                      // Anti-windup: never integrate *into* a saturated actuator,
                                      // and bound the integral so its authority cannot exceed the
                                      // whole budget.
                let at_max = self.olap_total >= self.cfg.system_limit.get() - 1e-6;
                let at_min = self.olap_total <= self.cfg.olap_floor.get() + 1e-6;
                let winding_into_saturation = (at_max && error < 0.0) || (at_min && error > 0.0);
                if !winding_into_saturation {
                    self.integral += error;
                }
                let cap = self.cfg.system_limit.get() / self.cfg.ki.max(1e-9);
                self.integral = self.integral.clamp(-cap, cap);
                let delta = self.cfg.kp * error + self.cfg.ki * self.integral;
                self.olap_total = (self.olap_total - delta)
                    .clamp(self.cfg.olap_floor.get(), self.cfg.system_limit.get());
            }
        }
        // Split the OLAP total by velocity-goal shortfall (floor 1 each so
        // nobody starves outright).
        let mut weights = Vec::with_capacity(self.olap_ids.len());
        for sc in self
            .classes
            .iter()
            .filter(|c| self.olap_ids.contains(&c.id))
        {
            let v = meas.get(&sc.id).and_then(|m| m.velocity).unwrap_or(1.0);
            let shortfall = (sc.goal.achievement(v) - 1.0).min(0.0).abs();
            weights.push((sc.id, 1.0 + 4.0 * shortfall));
        }
        let wsum: f64 = weights.iter().map(|(_, w)| w).sum();
        let plan = Plan::new(
            weights
                .into_iter()
                .map(|(c, w)| (c, Timerons::new(self.olap_total * w / wsum)))
                .collect(),
        );
        self.plan_log.record(&plan, ctx.now());
        let releases = self.dispatcher.apply_plan(&plan, &mut self.queues);
        self.perform(ctx, dbms, releases);
    }
}

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for PiController {
    fn name(&self) -> &'static str {
        "pi-feedback"
    }

    fn start(&mut self, ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {
        ctx.schedule_in(self.cfg.control_interval, CtrlEvent::ControlTick.into());
        ctx.schedule_in(self.cfg.snapshot_interval, CtrlEvent::SnapshotTick.into());
    }

    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        _out: &mut Vec<DbmsNotice>,
    ) {
        match notice {
            DbmsNotice::Intercepted(row) => {
                self.queues.enqueue(row.class, row.id, row.estimated_cost);
                let releases = self.dispatcher.on_enqueued(row.class, &mut self.queues);
                self.perform(ctx, dbms, releases);
            }
            DbmsNotice::Completed(rec) => {
                self.monitor.on_completed(rec);
                let releases = self.dispatcher.on_completed(rec, &mut self.queues);
                self.perform(ctx, dbms, releases);
            }
            DbmsNotice::Rejected(_) => {}
            DbmsNotice::Starved(row) => {
                // Watchdog force-release: reconcile queue/dispatcher books.
                if let Some(q) = self.queues.remove(row.class, row.id) {
                    self.dispatcher.note_external_release(row.class, q.cost);
                }
            }
        }
    }

    fn on_event(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
        match ev {
            CtrlEvent::SnapshotTick => {
                if let Some(samples) = dbms.take_snapshot(ctx) {
                    self.monitor.on_snapshot(ctx.now(), &samples);
                }
                ctx.schedule_in(self.cfg.snapshot_interval, CtrlEvent::SnapshotTick.into());
            }
            CtrlEvent::ControlTick => {
                self.control_step(ctx, dbms);
                ctx.schedule_in(self.cfg.control_interval, CtrlEvent::ControlTick.into());
            }
            CtrlEvent::RetryRelease { .. }
            | CtrlEvent::ReleaseAcked { .. }
            | CtrlEvent::ReleaseBatchAcked(_)
            | CtrlEvent::SetSystemLimit { .. } => {}
        }
    }

    fn plan_log(&self) -> Option<&PlanLog> {
        Some(&self.plan_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_plan_gives_olap_everything() {
        let pi = PiController::new(ServiceClass::paper_classes(), PiConfig::default());
        assert_eq!(pi.olap_total(), 30_000.0);
    }

    #[test]
    #[should_panic(expected = "needs OLAP classes")]
    fn oltp_only_panics() {
        let classes = vec![ServiceClass::paper_classes().remove(2)];
        let _ = PiController::new(classes, PiConfig::default());
    }
}
