//! Per-class queues of held queries.
//!
//! The paper's Dispatcher serves each class queue in arrival order. The
//! queue discipline is pluggable: FIFO (the paper) or shortest-job-first by
//! estimated cost — a classic admission variant that boosts small-query
//! velocity at the price of delaying expensive queries (compared in
//! `ablation_queue_discipline`).

use qsched_dbms::query::{ClassId, QueryId};
use qsched_dbms::Timerons;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Intra-class ordering of held queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Arrival order (the paper's Dispatcher).
    #[default]
    Fifo,
    /// Cheapest estimated cost first (ties: arrival order).
    ShortestJobFirst,
}

/// A held query waiting in a class queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedQuery {
    /// The held query.
    pub id: QueryId,
    /// Its estimated cost (the admission currency).
    pub cost: Timerons,
    /// Global arrival stamp (monotone across all classes). The oracle's
    /// FIFO-within-class invariant checks stamps are non-decreasing
    /// head-to-tail under the FIFO discipline.
    pub seq: u64,
}

/// Per-class queues. Classes are created lazily on first enqueue; iteration
/// order is deterministic (by `ClassId`).
#[derive(Debug, Clone, Default)]
pub struct ClassQueues {
    queues: BTreeMap<ClassId, VecDeque<QueuedQuery>>,
    discipline: QueueDiscipline,
    next_seq: u64,
}

impl ClassQueues {
    /// Empty FIFO queues (the paper's discipline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty queues with an explicit discipline.
    pub fn with_discipline(discipline: QueueDiscipline) -> Self {
        ClassQueues {
            queues: BTreeMap::new(),
            discipline,
            next_seq: 0,
        }
    }

    /// The active discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Enqueue a held query according to the discipline.
    pub fn enqueue(&mut self, class: ClassId, id: QueryId, cost: Timerons) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let q = self.queues.entry(class).or_default();
        match self.discipline {
            QueueDiscipline::Fifo => q.push_back(QueuedQuery { id, cost, seq }),
            QueueDiscipline::ShortestJobFirst => {
                // Insert before the first strictly more expensive entry
                // (ties keep arrival order).
                let pos = q.partition_point(|e| e.cost <= cost);
                q.insert(pos, QueuedQuery { id, cost, seq });
            }
        }
    }

    /// Peek at the head of a class queue.
    pub fn peek(&self, class: ClassId) -> Option<QueuedQuery> {
        self.queues.get(&class).and_then(|q| q.front().copied())
    }

    /// Pop the head of a class queue.
    pub fn pop(&mut self, class: ClassId) -> Option<QueuedQuery> {
        self.queues.get_mut(&class).and_then(|q| q.pop_front())
    }

    /// Number of queries waiting in a class queue.
    pub fn len(&self, class: ClassId) -> usize {
        self.queues.get(&class).map_or(0, VecDeque::len)
    }

    /// Total queries waiting across all classes.
    pub fn total_len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// True if nothing is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Sum of estimated costs waiting in a class queue.
    pub fn queued_cost(&self, class: ClassId) -> Timerons {
        self.queues
            .get(&class)
            .map_or(Timerons::ZERO, |q| q.iter().map(|e| e.cost).sum())
    }

    /// Classes that currently have waiting queries, in id order.
    pub fn classes_with_backlog(&self) -> Vec<ClassId> {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&c, _)| c)
            .collect()
    }

    /// Longest time-ordered view: iterate a class queue head-to-tail.
    pub fn iter_class(&self, class: ClassId) -> impl Iterator<Item = &QueuedQuery> {
        self.queues.get(&class).into_iter().flatten()
    }

    /// Remove a specific waiting query (e.g. after the engine's starvation
    /// watchdog released it behind the dispatcher's back). Returns the
    /// removed entry, or `None` if it was not queued under `class`.
    pub fn remove(&mut self, class: ClassId, id: QueryId) -> Option<QueuedQuery> {
        let q = self.queues.get_mut(&class)?;
        let pos = q.iter().position(|e| e.id == id)?;
        q.remove(pos)
    }

    /// Iterate every waiting query across all classes, class id order then
    /// queue order (oracle reconciliation surface).
    pub fn iter_all(&self) -> impl Iterator<Item = (ClassId, &QueuedQuery)> {
        self.queues
            .iter()
            .flat_map(|(&c, q)| q.iter().map(move |e| (c, e)))
    }

    /// Check the intra-class ordering invariant: FIFO queues must have
    /// non-decreasing arrival stamps head-to-tail; SJF queues non-decreasing
    /// cost with FIFO stamps within equal cost.
    pub fn check_order(&self) -> Result<(), String> {
        for (&class, q) in &self.queues {
            for pair in q.iter().zip(q.iter().skip(1)) {
                let (a, b) = pair;
                let ok = match self.discipline {
                    QueueDiscipline::Fifo => a.seq < b.seq,
                    QueueDiscipline::ShortestJobFirst => {
                        a.cost < b.cost || (a.cost == b.cost && a.seq < b.seq)
                    }
                };
                if !ok {
                    return Err(format!(
                        "queue order breach in {class:?} ({:?}): {:?} before {:?}",
                        self.discipline, a, b
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, cost: f64) -> (QueryId, Timerons) {
        (QueryId(id), Timerons::new(cost))
    }

    #[test]
    fn fifo_per_class() {
        let mut qs = ClassQueues::new();
        let (a, ca) = q(1, 10.0);
        let (b, cb) = q(2, 20.0);
        qs.enqueue(ClassId(1), a, ca);
        qs.enqueue(ClassId(1), b, cb);
        assert_eq!(qs.peek(ClassId(1)).unwrap().id, a);
        assert_eq!(qs.pop(ClassId(1)).unwrap().id, a);
        assert_eq!(qs.pop(ClassId(1)).unwrap().id, b);
        assert!(qs.pop(ClassId(1)).is_none());
    }

    #[test]
    fn classes_are_independent() {
        let mut qs = ClassQueues::new();
        qs.enqueue(ClassId(1), QueryId(1), Timerons::new(5.0));
        qs.enqueue(ClassId(2), QueryId(2), Timerons::new(7.0));
        assert_eq!(qs.len(ClassId(1)), 1);
        assert_eq!(qs.len(ClassId(2)), 1);
        assert_eq!(qs.total_len(), 2);
        assert_eq!(qs.queued_cost(ClassId(2)).get(), 7.0);
        qs.pop(ClassId(1));
        assert_eq!(qs.len(ClassId(1)), 0);
        assert_eq!(qs.len(ClassId(2)), 1);
    }

    #[test]
    fn backlog_listing_is_sorted_and_live() {
        let mut qs = ClassQueues::new();
        qs.enqueue(ClassId(5), QueryId(1), Timerons::new(1.0));
        qs.enqueue(ClassId(2), QueryId(2), Timerons::new(1.0));
        assert_eq!(qs.classes_with_backlog(), vec![ClassId(2), ClassId(5)]);
        qs.pop(ClassId(2));
        assert_eq!(qs.classes_with_backlog(), vec![ClassId(5)]);
        assert!(!qs.is_empty());
        qs.pop(ClassId(5));
        assert!(qs.is_empty());
    }

    #[test]
    fn sjf_orders_by_cost_with_fifo_ties() {
        let mut qs = ClassQueues::with_discipline(QueueDiscipline::ShortestJobFirst);
        qs.enqueue(ClassId(1), QueryId(1), Timerons::new(50.0));
        qs.enqueue(ClassId(1), QueryId(2), Timerons::new(10.0));
        qs.enqueue(ClassId(1), QueryId(3), Timerons::new(50.0));
        qs.enqueue(ClassId(1), QueryId(4), Timerons::new(30.0));
        let order: Vec<u64> = std::iter::from_fn(|| qs.pop(ClassId(1)))
            .map(|e| e.id.0)
            .collect();
        // Cheapest first; the two 50s keep arrival order (1 before 3).
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn fifo_is_the_default_discipline() {
        let qs = ClassQueues::new();
        assert_eq!(qs.discipline(), QueueDiscipline::Fifo);
    }

    #[test]
    fn order_check_accepts_both_disciplines_and_sees_all_entries() {
        let mut fifo = ClassQueues::new();
        let mut sjf = ClassQueues::with_discipline(QueueDiscipline::ShortestJobFirst);
        for (i, cost) in [50.0, 10.0, 50.0, 30.0].iter().enumerate() {
            fifo.enqueue(ClassId(1), QueryId(i as u64), Timerons::new(*cost));
            sjf.enqueue(ClassId(1), QueryId(i as u64), Timerons::new(*cost));
        }
        fifo.enqueue(ClassId(2), QueryId(9), Timerons::new(1.0));
        assert!(fifo.check_order().is_ok());
        assert!(sjf.check_order().is_ok());
        assert_eq!(fifo.iter_all().count(), 5);
        // Stamps are globally monotone in arrival order.
        let stamps: Vec<u64> = fifo.iter_class(ClassId(1)).map(|e| e.seq).collect();
        assert_eq!(stamps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_class_accessors() {
        let qs = ClassQueues::new();
        assert!(qs.peek(ClassId(9)).is_none());
        assert_eq!(qs.len(ClassId(9)), 0);
        assert_eq!(qs.queued_cost(ClassId(9)), Timerons::ZERO);
        assert_eq!(qs.iter_class(ClassId(9)).count(), 0);
    }
}
