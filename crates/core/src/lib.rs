//! # qsched-core
//!
//! The paper's contribution: a **workload adaptation framework** for
//! autonomic DBMSs, able to meet per-class Service Level Objectives for
//! *mixed* OLAP + OLTP workloads through cost-based admission control
//! (Niu, Martin, Powley, Bird, Horman — ICDE 2007).
//!
//! ## Architecture (paper §2, Figure 1)
//!
//! ```text
//!   DBMS notices                  ┌────────────┐
//!  (intercepted /  ─────────────► │  Monitor   │──────────────┐
//!   completed)                    └────────────┘              ▼
//!                                       │             ┌────────────────┐
//!                                       ▼             │ Scheduling     │
//!                                 ┌────────────┐      │ Planner        │
//!                                 │ Classifier │      │  + Performance │
//!                                 └────────────┘      │    Solver      │
//!                                       │             └────────────────┘
//!                                       ▼                      │ plan =
//!                                 ┌────────────┐               │ {class cost
//!                                 │class queues│               ▼  limits}
//!                                 └────────────┘      ┌────────────┐
//!                                       └────────────►│ Dispatcher │──► release
//!                                                     └────────────┘    (QP unblock)
//! ```
//!
//! * [`class`] — service classes: goal metric (velocity / average response
//!   time), goal value, and business importance.
//! * [`classify`] — the Classifier: maps intercepted queries to classes.
//! * [`queue`] — per-class FIFO queues of held queries.
//! * [`dispatch`] — the Dispatcher: releases queries while the class cost
//!   limit allows.
//! * [`model`] — the per-type performance models of §3.2: the OLAP velocity
//!   model and the OLTP linear response-time model (slope via online
//!   regression).
//! * [`utility`] — utility functions capturing goals and importance;
//!   importance matters only under goal violation (§4.2 "Importance of
//!   classes").
//! * [`solver`] — the Performance Solver: maximizes total utility over the
//!   cost-limit simplex (exhaustive grid search as the executable spec,
//!   marginal-utility water-filling for many classes, hill climbing, and a
//!   naive proportional baseline for ablations).
//! * [`probgen`] — seeded random plan-problem generation, shared by the
//!   solver equivalence swarm and the solver scaling bench.
//! * [`plan`] — scheduling plans (cost-limit vectors) and plan logs.
//! * [`monitor`] — per-control-interval measurement: class velocities from
//!   completions and OLTP response times from snapshot samples.
//! * [`detect`] — workload detection (§2): per-class arrival-rate
//!   characterisation with trend tracking and change events, enabling
//!   reactive re-planning.
//! * [`scheduler`] — [`scheduler::QueryScheduler`]: the full controller.
//! * [`baseline`] — the paper's comparison points: no class control, and the
//!   static DB2 Query Patroller heuristic with priorities.
//! * [`mpl`] — MPL-based admission control (Schroeder et al., ICDE'06), the
//!   alternative framework the paper contrasts in §1; static and adaptive
//!   variants for the cost-vs-MPL ablation.
//! * [`feedback`] — a classic PI feedback controller, isolating what the
//!   paper's models and utility machinery buy over plain feedback control.
//! * [`controller`] — the common [`controller::Controller`] interface that
//!   experiments drive.
//! * [`checkpoint`] — crash recovery: serializable controller checkpoints
//!   ([`checkpoint::Checkpoint`]) and the restart/reconciliation ledger.
//! * [`allocator`] — the global layer of the sharded control plane: marginal
//!   water-filling of the fleet-wide cost budget across backend pools
//!   (warm-started, allocation-free in steady state).
//! * [`transport`] — the controller↔Patroller message boundary: a perfect
//!   inline channel by default, or enveloped messages through the DES
//!   engine with loss/delay/duplication/reordering faults and an
//!   idempotent, epoch-fenced release protocol.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod allocator;
pub mod baseline;
pub mod checkpoint;
pub mod class;
pub mod classify;
pub mod controller;
pub mod detect;
pub mod dispatch;
pub mod feedback;
pub mod fleet;
pub mod model;
pub mod monitor;
pub mod mpl;
pub mod plan;
pub mod probgen;
pub mod queue;
pub mod scheduler;
pub mod solver;
pub mod transport;
pub mod utility;

pub use allocator::{AllocatorConfig, AllocatorStats, BackendDemand, GlobalAllocator};
pub use checkpoint::{Checkpoint, RestartStats};
pub use class::{Goal, ServiceClass};
pub use controller::{Controller, CtrlEvent};
pub use fleet::{LimitDirective, ReportBook, ShardReportMsg};
pub use plan::Plan;
pub use scheduler::{QueryScheduler, RobustnessConfig, SchedulerConfig};
pub use transport::{RetryPolicy, TransportConfig, TransportMode};
