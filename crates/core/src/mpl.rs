//! MPL-based admission control — the *other* workload-control school.
//!
//! The paper's §1 contrasts its cost-based control with Schroeder et al.
//! ("Achieving Class-based QoS for Transactional Workloads", ICDE'06), which
//! "controls OLTP workloads based on multiprogramming levels (MPL) by
//! intercepting queries and performing admission control". An MPL limit
//! counts *queries*; a cost limit counts *timerons*. For OLTP — where
//! statements are uniformly small — the two coincide. For OLAP, "control of
//! OLAP workloads based on costs … is appropriate because the requirements
//! of OLAP queries vary widely": under an MPL limit, three admitted queries
//! may carry 1 500 or 45 000 timerons, so the realised load has enormous
//! variance.
//!
//! Two controllers are provided:
//!
//! * [`MplStatic`] — fixed per-class MPL caps (the classic configuration).
//! * [`MplAdaptive`] — the same measurement/utility machinery as the Query
//!   Scheduler, but the plan currency is an MPL vector instead of a cost
//!   vector. Comparing it against the Query Scheduler isolates the value of
//!   *cost* as the admission currency (`ablation_mpl_vs_cost`).

use crate::controller::{Controller, CtrlEvent};
use qsched_dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use qsched_dbms::query::{ClassId, QueryId};
use qsched_sim::Ctx;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Static per-class MPL caps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MplPlan {
    caps: BTreeMap<ClassId, u32>,
}

impl MplPlan {
    /// Build from `(class, cap)` pairs.
    ///
    /// # Panics
    /// Panics if empty or any cap is zero.
    pub fn new(caps: Vec<(ClassId, u32)>) -> Self {
        assert!(!caps.is_empty(), "an MPL plan needs at least one class");
        let map: BTreeMap<ClassId, u32> = caps.into_iter().collect();
        assert!(map.values().all(|&c| c >= 1), "MPL caps must be at least 1");
        MplPlan { caps: map }
    }

    /// The cap for `class` (0 if uncontrolled).
    pub fn cap(&self, class: ClassId) -> u32 {
        self.caps.get(&class).copied().unwrap_or(0)
    }

    /// Classes covered by the plan.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.caps.keys().copied()
    }

    /// Total MPL across classes.
    pub fn total(&self) -> u32 {
        self.caps.values().sum()
    }
}

/// Per-class FIFO admission bounded by a query-count cap.
#[derive(Debug, Clone)]
pub struct MplStatic {
    plan: MplPlan,
    running: BTreeMap<ClassId, u32>,
    queues: BTreeMap<ClassId, VecDeque<QueryId>>,
    released: u64,
}

impl MplStatic {
    /// A controller enforcing `plan`.
    pub fn new(plan: MplPlan) -> Self {
        let running = plan.classes().map(|c| (c, 0)).collect();
        let queues = plan.classes().map(|c| (c, VecDeque::new())).collect();
        MplStatic {
            plan,
            running,
            queues,
            released: 0,
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &MplPlan {
        &self.plan
    }

    /// Replace the plan (used by [`MplAdaptive`]).
    pub fn set_plan(&mut self, plan: MplPlan) {
        for c in plan.classes() {
            self.running.entry(c).or_insert(0);
            self.queues.entry(c).or_default();
        }
        self.plan = plan;
    }

    /// Currently running queries of `class`.
    pub fn running(&self, class: ClassId) -> u32 {
        self.running.get(&class).copied().unwrap_or(0)
    }

    /// Queries waiting in `class`'s queue.
    pub fn queued(&self, class: ClassId) -> usize {
        self.queues.get(&class).map_or(0, VecDeque::len)
    }

    /// Total queries released so far.
    pub fn total_released(&self) -> u64 {
        self.released
    }

    fn drain_class<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        class: ClassId,
    ) {
        let cap = self.plan.cap(class);
        loop {
            let running = self.running.entry(class).or_insert(0);
            if *running >= cap {
                break;
            }
            let Some(id) = self.queues.entry(class).or_default().pop_front() else {
                break;
            };
            *running += 1;
            self.released += 1;
            let ok = dbms.release(ctx, id);
            debug_assert!(ok, "query vanished before release");
        }
    }

    fn drain_all<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
    ) {
        let classes: Vec<ClassId> = self.queues.keys().copied().collect();
        for c in classes {
            self.drain_class(ctx, dbms, c);
        }
    }
}

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for MplStatic {
    fn name(&self) -> &'static str {
        "mpl-static"
    }

    fn start(&mut self, _ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {}

    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        _out: &mut Vec<DbmsNotice>,
    ) {
        match notice {
            DbmsNotice::Intercepted(row) => {
                self.queues.entry(row.class).or_default().push_back(row.id);
                self.drain_class(ctx, dbms, row.class);
            }
            DbmsNotice::Rejected(_) => {}
            DbmsNotice::Starved(row) => {
                // Watchdog force-release: forget the query if still queued.
                // The guarded Completed arm ignores its completion.
                if let Some(q) = self.queues.get_mut(&row.class) {
                    q.retain(|&id| id != row.id);
                }
            }
            DbmsNotice::Completed(rec) => {
                if let Some(r) = self.running.get_mut(&rec.class) {
                    if *r > 0 {
                        *r -= 1;
                        self.drain_class(ctx, dbms, rec.class);
                    }
                }
            }
        }
    }

    fn on_event(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
}

/// Configuration of the adaptive MPL controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MplAdaptiveConfig {
    /// Total MPL budget divided among the controlled classes.
    pub total_mpl: u32,
    /// Minimum MPL per controlled class.
    pub floor: u32,
    /// Re-planning interval.
    pub control_interval: qsched_sim::SimDuration,
}

impl Default for MplAdaptiveConfig {
    fn default() -> Self {
        MplAdaptiveConfig {
            total_mpl: 10,
            floor: 1,
            control_interval: qsched_sim::SimDuration::from_secs(240),
        }
    }
}

/// An adaptive MPL controller: moves one MPL slot per interval from the
/// best-performing class to the worst-performing (importance-weighted)
/// violated class. It shares the Query Scheduler's *goal* semantics but
/// uses query count, not cost, as the currency.
#[derive(Debug, Clone)]
pub struct MplAdaptive {
    cfg: MplAdaptiveConfig,
    inner: MplStatic,
    classes: Vec<crate::class::ServiceClass>,
    monitor: crate::monitor::IntervalMonitor,
}

impl MplAdaptive {
    /// Divide the MPL budget evenly across the *OLAP* classes (the OLTP
    /// class is indirectly controlled, exactly as in the Query Scheduler).
    ///
    /// # Panics
    /// Panics if there are no OLAP classes or the budget is below the floors.
    pub fn new(classes: Vec<crate::class::ServiceClass>, cfg: MplAdaptiveConfig) -> Self {
        let olap: Vec<ClassId> = classes
            .iter()
            .filter(|c| c.kind == qsched_dbms::query::QueryKind::Olap)
            .map(|c| c.id)
            .collect();
        assert!(!olap.is_empty(), "adaptive MPL control needs OLAP classes");
        assert!(
            cfg.total_mpl >= cfg.floor * olap.len() as u32,
            "MPL budget below the per-class floors"
        );
        let share = (cfg.total_mpl / olap.len() as u32).max(cfg.floor);
        let plan = MplPlan::new(olap.iter().map(|&c| (c, share)).collect());
        MplAdaptive {
            inner: MplStatic::new(plan),
            monitor: crate::monitor::IntervalMonitor::new(qsched_sim::SimTime::ZERO),
            classes,
            cfg,
        }
    }

    /// The active MPL plan.
    pub fn plan(&self) -> &MplPlan {
        self.inner.plan()
    }

    fn replan(&mut self) {
        let olap_ids: Vec<ClassId> = self.inner.plan.classes().collect();
        let meas = self.monitor.end_interval(&olap_ids);
        // Achievement per controlled class: velocity / goal.
        let mut scored: Vec<(ClassId, f64, u8)> = Vec::new();
        for sc in self.classes.iter().filter(|c| olap_ids.contains(&c.id)) {
            let v = meas.get(&sc.id).and_then(|m| m.velocity).unwrap_or(1.0);
            scored.push((sc.id, sc.goal.achievement(v), sc.importance));
        }
        // Donor: the class with the highest achievement above goal.
        // Recipient: the violated class with the highest importance (ties:
        // lowest achievement).
        let donor = scored
            .iter()
            .filter(|&&(c, a, _)| a > 1.0 && self.inner.plan.cap(c) > self.cfg.floor)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|&(c, _, _)| c);
        let recipient = scored
            .iter()
            .filter(|&&(_, a, _)| a < 1.0)
            .max_by(|a, b| (a.2, -a.1).partial_cmp(&(b.2, -b.1)).expect("finite"))
            .map(|&(c, _, _)| c);
        if let (Some(from), Some(to)) = (donor, recipient) {
            if from != to {
                let mut caps: Vec<(ClassId, u32)> = olap_ids
                    .iter()
                    .map(|&c| (c, self.inner.plan.cap(c)))
                    .collect();
                for (c, cap) in &mut caps {
                    if *c == from {
                        *cap -= 1;
                    } else if *c == to {
                        *cap += 1;
                    }
                }
                self.inner.set_plan(MplPlan::new(caps));
            }
        }
    }
}

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for MplAdaptive {
    fn name(&self) -> &'static str {
        "mpl-adaptive"
    }

    fn start(&mut self, ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {
        ctx.schedule_in(self.cfg.control_interval, CtrlEvent::ControlTick.into());
    }

    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        out: &mut Vec<DbmsNotice>,
    ) {
        if let DbmsNotice::Completed(rec) = notice {
            self.monitor.on_completed(rec);
        }
        Controller::<E>::on_notice(&mut self.inner, ctx, dbms, notice, out);
    }

    fn on_event(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
        if ev == CtrlEvent::ControlTick {
            self.replan();
            self.inner.drain_all(ctx, dbms);
            ctx.schedule_in(self.cfg.control_interval, CtrlEvent::ControlTick.into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ServiceClass;

    #[test]
    fn plan_accessors() {
        let p = MplPlan::new(vec![(ClassId(1), 3), (ClassId(2), 5)]);
        assert_eq!(p.cap(ClassId(1)), 3);
        assert_eq!(p.cap(ClassId(9)), 0);
        assert_eq!(p.total(), 8);
        assert_eq!(p.classes().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_panics() {
        let _ = MplPlan::new(vec![(ClassId(1), 0)]);
    }

    #[test]
    fn static_controller_bookkeeping() {
        let c = MplStatic::new(MplPlan::new(vec![(ClassId(1), 2)]));
        assert_eq!(c.running(ClassId(1)), 0);
        assert_eq!(c.queued(ClassId(1)), 0);
        assert_eq!(c.total_released(), 0);
    }

    #[test]
    fn adaptive_splits_budget_evenly_over_olap() {
        let a = MplAdaptive::new(
            ServiceClass::paper_classes(),
            MplAdaptiveConfig {
                total_mpl: 10,
                ..Default::default()
            },
        );
        assert_eq!(a.plan().cap(ClassId(1)), 5);
        assert_eq!(a.plan().cap(ClassId(2)), 5);
        assert_eq!(a.plan().cap(ClassId(3)), 0, "OLTP stays uncontrolled");
    }

    #[test]
    #[should_panic(expected = "below the per-class floors")]
    fn budget_below_floors_panics() {
        let _ = MplAdaptive::new(
            ServiceClass::paper_classes(),
            MplAdaptiveConfig {
                total_mpl: 1,
                floor: 1,
                ..Default::default()
            },
        );
    }
}
