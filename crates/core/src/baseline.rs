//! The paper's comparison controllers.
//!
//! * [`NoControl`] — §4.1.1: "no control was exerted over the workload
//!   except for the system cost limit". One global FIFO pool bounded by the
//!   system cost limit.
//! * [`QpController`] — §4.1.2: the static DB2 Query Patroller heuristic:
//!   queries are partitioned into *large / medium / small* groups by cost
//!   percentile (top 5 % large, next 15 % medium), each group has a static
//!   concurrency limit, a static overall cost limit bounds the OLAP
//!   workload, and (optionally) class priorities order the queue. It cannot
//!   adapt limits to workload changes — the property the Query Scheduler
//!   improves on.

use crate::controller::{Controller, CtrlEvent};
use qsched_dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use qsched_dbms::query::{ClassId, QueryId};
use qsched_dbms::Timerons;
use qsched_sim::Ctx;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Global-pool admission: release while total executing cost fits the
/// system limit (FIFO, class-blind).
#[derive(Debug, Clone)]
pub struct NoControl {
    system_limit: Timerons,
    executing: Timerons,
    queue: VecDeque<(QueryId, Timerons)>,
    released: HashSet<QueryId>,
}

impl NoControl {
    /// A pool bounded by `system_limit`.
    pub fn new(system_limit: Timerons) -> Self {
        NoControl {
            system_limit,
            executing: Timerons::ZERO,
            queue: VecDeque::new(),
            released: HashSet::new(),
        }
    }

    /// Estimated cost currently executing.
    pub fn executing(&self) -> Timerons {
        self.executing
    }

    /// Queries waiting for headroom.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    fn drain<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
    ) {
        while let Some(&(id, cost)) = self.queue.front() {
            let fits = self.executing + cost <= self.system_limit || self.released.is_empty();
            if !fits {
                break;
            }
            self.queue.pop_front();
            self.executing += cost;
            self.released.insert(id);
            let ok = dbms.release(ctx, id);
            debug_assert!(ok, "query vanished before release");
        }
    }
}

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for NoControl {
    fn name(&self) -> &'static str {
        "no-control"
    }

    fn start(&mut self, _ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {}

    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        _out: &mut Vec<DbmsNotice>,
    ) {
        match notice {
            DbmsNotice::Intercepted(row) => {
                self.queue.push_back((row.id, row.estimated_cost));
                self.drain(ctx, dbms);
            }
            DbmsNotice::Rejected(_) => {}
            DbmsNotice::Starved(row) => {
                // Watchdog force-release: forget the query if still queued.
                // Its completion is ignored by the guarded Completed arm.
                self.queue.retain(|&(id, _)| id != row.id);
            }
            DbmsNotice::Completed(rec) => {
                if self.released.remove(&rec.id) {
                    self.executing = if self.released.is_empty() {
                        Timerons::ZERO // clean float residue at idle
                    } else {
                        self.executing.saturating_sub(rec.estimated_cost)
                    };
                    self.drain(ctx, dbms);
                }
            }
        }
    }

    fn on_event(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
}

/// Cost groups of the QP heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostGroup {
    /// Top of the cost distribution.
    Large,
    /// Middle band.
    Medium,
    /// Everything else.
    Small,
}

/// Static configuration of the QP heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpConfig {
    /// Static overall cost limit on the controlled workload.
    pub system_limit: Timerons,
    /// Cost at or above which a query is *large*.
    pub large_threshold: Timerons,
    /// Cost at or above which a query is *medium*.
    pub medium_threshold: Timerons,
    /// Maximum concurrently executing large queries.
    pub max_large: u32,
    /// Maximum concurrently executing medium queries.
    pub max_medium: u32,
    /// Maximum concurrently executing small queries.
    pub max_small: u32,
    /// Reject held queries whose estimated cost exceeds this (DB2 QP's
    /// maximum-cost rules). `None` = accept everything.
    pub max_cost: Option<Timerons>,
    /// Order waiting queries by class priority (the paper's "priority
    /// control on" run); FIFO otherwise.
    pub priority_enabled: bool,
    /// Class priorities (higher = released first). Classes absent default 0.
    pub class_priority: BTreeMap<ClassId, u8>,
}

impl QpConfig {
    /// Derive thresholds from a sample of workload costs: large = top 5 %,
    /// medium = next 15 % (the paper's typical strategy).
    ///
    /// # Panics
    /// Panics if `costs` is empty.
    pub fn from_cost_sample(mut costs: Vec<f64>, system_limit: Timerons) -> Self {
        assert!(!costs.is_empty(), "need a cost sample");
        costs.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
        let pct = |p: f64| {
            let idx = ((costs.len() as f64 - 1.0) * p).round() as usize;
            costs[idx]
        };
        QpConfig {
            system_limit,
            large_threshold: Timerons::new(pct(0.95)),
            medium_threshold: Timerons::new(pct(0.80)),
            max_large: 1,
            max_medium: 4,
            max_small: 12,
            max_cost: None,
            priority_enabled: true,
            class_priority: BTreeMap::new(),
        }
    }

    /// Set a class priority.
    pub fn with_priority(mut self, class: ClassId, priority: u8) -> Self {
        self.class_priority.insert(class, priority);
        self
    }

    /// Disable priority ordering.
    pub fn without_priority(mut self) -> Self {
        self.priority_enabled = false;
        self
    }

    /// Reject queries estimated above `max_cost`.
    pub fn with_max_cost(mut self, max_cost: Timerons) -> Self {
        self.max_cost = Some(max_cost);
        self
    }

    /// The group of a query with this estimated cost.
    pub fn group_of(&self, cost: Timerons) -> CostGroup {
        if cost >= self.large_threshold {
            CostGroup::Large
        } else if cost >= self.medium_threshold {
            CostGroup::Medium
        } else {
            CostGroup::Small
        }
    }

    fn group_cap(&self, g: CostGroup) -> u32 {
        match g {
            CostGroup::Large => self.max_large,
            CostGroup::Medium => self.max_medium,
            CostGroup::Small => self.max_small,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Waiting {
    seq: u64,
    id: QueryId,
    cost: Timerons,
    group: CostGroup,
    priority: u8,
}

/// The static QP heuristic controller.
#[derive(Debug, Clone)]
pub struct QpController {
    cfg: QpConfig,
    waiting: Vec<Waiting>,
    next_seq: u64,
    running: BTreeMap<QueryId, (CostGroup, Timerons)>,
    group_running: BTreeMap<&'static str, u32>, // keyed by group name for Debug friendliness
    executing: Timerons,
    rejected: u64,
}

fn group_key(g: CostGroup) -> &'static str {
    match g {
        CostGroup::Large => "large",
        CostGroup::Medium => "medium",
        CostGroup::Small => "small",
    }
}

impl QpController {
    /// Build from a static configuration.
    pub fn new(cfg: QpConfig) -> Self {
        QpController {
            cfg,
            waiting: Vec::new(),
            next_seq: 0,
            running: BTreeMap::new(),
            group_running: BTreeMap::new(),
            executing: Timerons::ZERO,
            rejected: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &QpConfig {
        &self.cfg
    }

    /// Queries waiting for a slot.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Estimated cost currently executing.
    pub fn executing(&self) -> Timerons {
        self.executing
    }

    /// Queries rejected by the maximum-cost rule so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn running_in(&self, g: CostGroup) -> u32 {
        self.group_running.get(group_key(g)).copied().unwrap_or(0)
    }

    fn drain<E: From<CtrlEvent> + From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
    ) {
        loop {
            // Candidate order: priority desc (if enabled), then arrival.
            let mut best: Option<(usize, &Waiting)> = None;
            for (i, w) in self.waiting.iter().enumerate() {
                let slot_free = self.running_in(w.group) < self.cfg.group_cap(w.group);
                let cost_ok =
                    self.executing + w.cost <= self.cfg.system_limit || self.running.is_empty();
                if !(slot_free && cost_ok) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, b)) => {
                        if self.cfg.priority_enabled {
                            (w.priority, std::cmp::Reverse(w.seq))
                                > (b.priority, std::cmp::Reverse(b.seq))
                        } else {
                            w.seq < b.seq
                        }
                    }
                };
                if better {
                    best = Some((i, w));
                }
            }
            let Some((idx, _)) = best else { break };
            let w = self.waiting.remove(idx);
            *self.group_running.entry(group_key(w.group)).or_insert(0) += 1;
            self.executing += w.cost;
            self.running.insert(w.id, (w.group, w.cost));
            let ok = dbms.release(ctx, w.id);
            debug_assert!(ok, "query vanished before release");
        }
    }
}

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for QpController {
    fn name(&self) -> &'static str {
        "qp-static"
    }

    fn start(&mut self, _ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {}

    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        out: &mut Vec<DbmsNotice>,
    ) {
        match notice {
            DbmsNotice::Intercepted(row) => {
                // DB2 QP maximum-cost rule: reject outright, never queue.
                if let Some(max) = self.cfg.max_cost {
                    if row.estimated_cost > max {
                        let ok = dbms.reject(ctx, row.id, out);
                        debug_assert!(ok, "freshly intercepted query must be held");
                        self.rejected += 1;
                        return;
                    }
                }
                let group = self.cfg.group_of(row.estimated_cost);
                let priority = self
                    .cfg
                    .class_priority
                    .get(&row.class)
                    .copied()
                    .unwrap_or(0);
                self.waiting.push(Waiting {
                    seq: self.next_seq,
                    id: row.id,
                    cost: row.estimated_cost,
                    group,
                    priority,
                });
                self.next_seq += 1;
                self.drain(ctx, dbms);
            }
            DbmsNotice::Rejected(_) => {}
            DbmsNotice::Starved(row) => {
                // Watchdog force-release: forget the query if still waiting.
                // Its completion is ignored by the guarded Completed arm.
                self.waiting.retain(|w| w.id != row.id);
            }
            DbmsNotice::Completed(rec) => {
                if let Some((group, cost)) = self.running.remove(&rec.id) {
                    let slot = self
                        .group_running
                        .get_mut(group_key(group))
                        .expect("group has running counter");
                    *slot -= 1;
                    self.executing = if self.running.is_empty() {
                        Timerons::ZERO // clean float residue at idle
                    } else {
                        self.executing.saturating_sub(cost)
                    };
                    self.drain(ctx, dbms);
                }
            }
        }
    }

    fn on_event(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_config_thresholds_from_percentiles() {
        let costs: Vec<f64> = (1..=100).map(f64::from).collect();
        let cfg = QpConfig::from_cost_sample(costs, Timerons::new(30_000.0));
        assert!((cfg.large_threshold.get() - 95.0).abs() <= 1.0);
        assert!((cfg.medium_threshold.get() - 80.0).abs() <= 1.0);
        assert_eq!(cfg.group_of(Timerons::new(99.0)), CostGroup::Large);
        assert_eq!(cfg.group_of(Timerons::new(85.0)), CostGroup::Medium);
        assert_eq!(cfg.group_of(Timerons::new(10.0)), CostGroup::Small);
    }

    #[test]
    fn priority_builder() {
        let cfg = QpConfig::from_cost_sample(vec![1.0, 2.0], Timerons::new(100.0))
            .with_priority(ClassId(2), 5)
            .with_priority(ClassId(1), 1);
        assert_eq!(cfg.class_priority[&ClassId(2)], 5);
        let off = cfg.without_priority();
        assert!(!off.priority_enabled);
    }

    #[test]
    fn no_control_accounting() {
        let nc = NoControl::new(Timerons::new(1_000.0));
        assert_eq!(nc.executing(), Timerons::ZERO);
        assert_eq!(nc.queued(), 0);
    }

    #[test]
    #[should_panic(expected = "need a cost sample")]
    fn empty_cost_sample_panics() {
        let _ = QpConfig::from_cost_sample(vec![], Timerons::new(1.0));
    }
}
