//! Seeded random [`PlanProblem`](crate::solver::PlanProblem) generation.
//!
//! Shared by the solver equivalence swarm (tests) and the solver scaling
//! bench: both need many-class problems with realistic measurement spreads,
//! produced deterministically from a seed so failures replay.

use crate::class::Goal;
use crate::model::{OlapVelocityModel, OltpLinearModel};
use crate::solver::{ClassState, PlanProblem};
use crate::utility::GoalUtility;
use qsched_dbms::query::{ClassId, QueryKind};
use qsched_dbms::Timerons;
use qsched_sim::SimDuration;
use std::collections::BTreeMap;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An owned, randomly generated plan problem: `n − 1` (or `n`) OLAP classes
/// plus at most one OLTP class, with per-class models observed at plausible
/// operating points.
#[derive(Debug)]
pub struct GenProblem {
    /// Total admission budget.
    pub system_limit: Timerons,
    /// Per-class floor; shrinks with `n` so large class counts stay feasible.
    pub floor: Timerons,
    /// Class states, in `ClassId` order (ids `1..=n`).
    pub classes: Vec<ClassState>,
    /// One velocity model per OLAP class.
    pub olap_models: BTreeMap<ClassId, OlapVelocityModel>,
    /// The OLTP regression (observed even when no OLTP class exists; unused
    /// by the objective in that case).
    pub oltp_model: OltpLinearModel,
    /// The paper's goal utility.
    pub utility: GoalUtility,
}

impl GenProblem {
    /// Generate an `n`-class problem from `seed`. With `with_oltp`, class
    /// `n` is the (single) OLTP class, indirectly controlled as in the
    /// paper; otherwise every class is OLAP.
    pub fn generate(n: usize, with_oltp: bool, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = seed | 1;
        let system_limit = 30_000.0;
        // The paper's 600-timeron floor, shrunk when many classes would
        // otherwise exceed the budget (keep half the budget re-assignable).
        let floor = (0.5 * system_limit / n as f64).min(600.0);
        let even = system_limit / n as f64;

        let mut classes = Vec::with_capacity(n);
        let mut olap_models = BTreeMap::new();
        for i in 1..=n {
            let class = ClassId(i as u16);
            let importance = 1 + (splitmix(&mut rng) % 5) as u8;
            // Current limits spread around the even split so warm starts are
            // non-trivial (they get projected onto the simplex anyway).
            let current_limit = Timerons::new(even * (0.3 + 1.4 * unit(&mut rng)));
            if with_oltp && i == n {
                classes.push(ClassState {
                    class,
                    kind: QueryKind::Oltp,
                    importance,
                    goal: Goal::AvgResponseAtMost(SimDuration::from_millis(
                        50 + splitmix(&mut rng) % 450,
                    )),
                    current_limit,
                });
            } else {
                let mut m = OlapVelocityModel::new(Timerons::new(even));
                m.observe(Some(0.05 + 0.95 * unit(&mut rng)), Timerons::new(even));
                olap_models.insert(class, m);
                classes.push(ClassState {
                    class,
                    kind: QueryKind::Olap,
                    importance,
                    goal: Goal::VelocityAtLeast(0.1 + 0.8 * unit(&mut rng)),
                    current_limit,
                });
            }
        }
        // The OLTP regression observed at the current OLAP total, with a
        // slope spanning "insensitive" to "one timeron ≈ 50 µs".
        let olap_total: f64 = classes
            .iter()
            .filter(|c| c.kind == QueryKind::Olap)
            .map(|c| c.current_limit.get())
            .sum();
        let slope = 5e-5 * unit(&mut rng);
        let mut oltp_model = OltpLinearModel::new(slope, 1.0, Timerons::new(olap_total.max(1.0)));
        oltp_model.observe(
            Some(0.01 + 2.0 * unit(&mut rng)),
            Timerons::new(olap_total.max(1.0)),
        );

        GenProblem {
            system_limit: Timerons::new(system_limit),
            floor: Timerons::new(floor),
            classes,
            olap_models,
            oltp_model,
            utility: GoalUtility::default(),
        }
    }

    /// Borrow as a solver problem.
    pub fn problem(&self) -> PlanProblem<'_> {
        PlanProblem {
            system_limit: self.system_limit,
            floor: self.floor,
            classes: &self.classes,
            olap_models: &self.olap_models,
            oltp_model: &self.oltp_model,
            utility: &self.utility,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_feasible() {
        for n in [1, 2, 3, 4, 8, 64] {
            let a = GenProblem::generate(n, n > 1, 42);
            let b = GenProblem::generate(n, n > 1, 42);
            assert_eq!(a.classes.len(), n);
            assert_eq!(
                a.classes.iter().map(|c| c.current_limit.get()).sum::<f64>(),
                b.classes.iter().map(|c| c.current_limit.get()).sum::<f64>(),
                "same seed must give the same problem"
            );
            assert!(
                a.floor.get() * n as f64 <= a.system_limit.get() * 0.5 + 1e-9,
                "floors must leave half the budget re-assignable at n={n}"
            );
            let oltp = a
                .classes
                .iter()
                .filter(|c| c.kind == QueryKind::Oltp)
                .count();
            assert!(oltp <= 1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GenProblem::generate(4, true, 1);
        let b = GenProblem::generate(4, true, 2);
        let la: Vec<f64> = a.classes.iter().map(|c| c.current_limit.get()).collect();
        let lb: Vec<f64> = b.classes.iter().map(|c| c.current_limit.get()).collect();
        assert_ne!(la, lb);
    }
}
