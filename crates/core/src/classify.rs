//! The Classifier: assigns an intercepted query to a service class.
//!
//! In the paper the Classifier "assigns the query to an appropriate service
//! class based on its performance goal and places the query in the
//! associated queue". Two strategies are provided:
//!
//! * [`ByClassTag`] — trust the `ClassId` stamped on the query by the
//!   submitting application (the common production setup: connection
//!   attributes identify the workload).
//! * [`ByRule`] — rule-based classification on observable query attributes
//!   (kind and estimated cost), for workloads where the submitter carries no
//!   class information.

use qsched_dbms::patroller::ControlRow;
use qsched_dbms::query::{ClassId, QueryKind};
use qsched_dbms::Timerons;
use serde::{Deserialize, Serialize};

/// Classification strategy. `Send` so the owning engine can migrate across
/// worker threads between allocation barriers in a sharded run.
pub trait Classifier: Send {
    /// The service class for this intercepted query, or `None` if no rule
    /// matches (the caller routes it to a default class).
    fn classify(&self, row: &ControlRow) -> Option<ClassId>;
}

/// Pass-through classification by the query's own class tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByClassTag;

impl Classifier for ByClassTag {
    fn classify(&self, row: &ControlRow) -> Option<ClassId> {
        Some(row.class)
    }
}

/// One classification rule: all conditions must hold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Match only this query kind, if set.
    pub kind: Option<QueryKind>,
    /// Match only queries with estimated cost at least this, if set.
    pub min_cost: Option<Timerons>,
    /// Match only queries with estimated cost below this, if set.
    pub max_cost: Option<Timerons>,
    /// The class assigned on match.
    pub assign: ClassId,
}

impl Rule {
    fn matches(&self, row: &ControlRow) -> bool {
        if let Some(k) = self.kind {
            if row.kind != k {
                return false;
            }
        }
        if let Some(lo) = self.min_cost {
            if row.estimated_cost < lo {
                return false;
            }
        }
        if let Some(hi) = self.max_cost {
            if row.estimated_cost >= hi {
                return false;
            }
        }
        true
    }
}

/// First-match rule-based classifier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ByRule {
    rules: Vec<Rule>,
}

impl ByRule {
    /// Build from an ordered rule list (first match wins).
    pub fn new(rules: Vec<Rule>) -> Self {
        ByRule { rules }
    }
}

impl Classifier for ByRule {
    fn classify(&self, row: &ControlRow) -> Option<ClassId> {
        self.rules.iter().find(|r| r.matches(row)).map(|r| r.assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsched_dbms::query::{ClientId, QueryId};
    use qsched_sim::SimTime;

    fn row(class: u16, kind: QueryKind, cost: f64) -> ControlRow {
        ControlRow {
            id: QueryId(1),
            client: ClientId(0),
            class: ClassId(class),
            kind,
            template: 0,
            estimated_cost: Timerons::new(cost),
            intercepted_at: SimTime::ZERO,
        }
    }

    #[test]
    fn tag_classifier_passes_through() {
        let c = ByClassTag;
        assert_eq!(c.classify(&row(7, QueryKind::Olap, 10.0)), Some(ClassId(7)));
    }

    #[test]
    fn rules_match_kind_and_cost_band() {
        let c = ByRule::new(vec![
            Rule {
                kind: Some(QueryKind::Oltp),
                min_cost: None,
                max_cost: None,
                assign: ClassId(3),
            },
            Rule {
                kind: Some(QueryKind::Olap),
                min_cost: Some(Timerons::new(5_000.0)),
                max_cost: None,
                assign: ClassId(1),
            },
            Rule {
                kind: Some(QueryKind::Olap),
                min_cost: None,
                max_cost: Some(Timerons::new(5_000.0)),
                assign: ClassId(2),
            },
        ]);
        assert_eq!(c.classify(&row(0, QueryKind::Oltp, 50.0)), Some(ClassId(3)));
        assert_eq!(
            c.classify(&row(0, QueryKind::Olap, 9_000.0)),
            Some(ClassId(1))
        );
        assert_eq!(
            c.classify(&row(0, QueryKind::Olap, 100.0)),
            Some(ClassId(2))
        );
    }

    #[test]
    fn first_match_wins_and_no_match_is_none() {
        let c = ByRule::new(vec![
            Rule {
                kind: None,
                min_cost: Some(Timerons::new(10.0)),
                max_cost: None,
                assign: ClassId(1),
            },
            Rule {
                kind: None,
                min_cost: Some(Timerons::new(100.0)),
                max_cost: None,
                assign: ClassId(2),
            },
        ]);
        // Cost 200 matches both; the first rule wins.
        assert_eq!(
            c.classify(&row(0, QueryKind::Olap, 200.0)),
            Some(ClassId(1))
        );
        // Cost 5 matches nothing.
        assert_eq!(c.classify(&row(0, QueryKind::Olap, 5.0)), None);
    }

    #[test]
    fn cost_band_is_half_open() {
        let c = ByRule::new(vec![Rule {
            kind: None,
            min_cost: Some(Timerons::new(10.0)),
            max_cost: Some(Timerons::new(20.0)),
            assign: ClassId(1),
        }]);
        assert_eq!(c.classify(&row(0, QueryKind::Olap, 10.0)), Some(ClassId(1)));
        assert_eq!(c.classify(&row(0, QueryKind::Olap, 20.0)), None);
    }
}
