//! Workload detection (§2).
//!
//! "Workload adaptation … consist[s] of two processes, workload detection
//! and workload control. Workload detection identifies workload changes by
//! monitoring and characterizing current workloads and predicting future
//! workload trends."
//!
//! [`WorkloadDetector`] characterises each class by its arrival rate over
//! fixed windows, tracks the trend with an EWMA, and flags a
//! [`WorkloadChange`] when a window's rate departs from the trend by more
//! than a configurable factor. The Query Scheduler can subscribe to these
//! events to re-plan immediately instead of waiting for the next control
//! interval (`SchedulerConfig::reactive_replanning`).

use qsched_dbms::query::ClassId;
use qsched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Detector tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Length of one characterisation window.
    pub window: SimDuration,
    /// EWMA smoothing factor for the trend (weight of the newest window).
    pub ewma_alpha: f64,
    /// Relative departure from the trend that counts as a change
    /// (e.g. 0.4 = ±40 %).
    pub change_threshold: f64,
    /// Windows to observe before the trend is trusted (cold-start guard).
    pub min_windows: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window: SimDuration::from_secs(60),
            ewma_alpha: 0.3,
            change_threshold: 0.4,
            min_windows: 3,
        }
    }
}

impl DetectorConfig {
    /// Validate tunables.
    ///
    /// # Panics
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(!self.window.is_zero(), "window must be positive");
        assert!((0.0..=1.0).contains(&self.ewma_alpha), "alpha in [0,1]");
        assert!(self.change_threshold > 0.0, "threshold must be positive");
    }
}

/// Direction of a detected workload change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeDirection {
    /// Arrival rate rose above the trend.
    Increased,
    /// Arrival rate fell below the trend.
    Decreased,
}

/// One detected workload change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadChange {
    /// The class whose intensity shifted.
    pub class: ClassId,
    /// When the window that revealed the change closed.
    pub at: SimTime,
    /// The trend rate before the change (arrivals/second).
    pub trend_rate: f64,
    /// The rate observed in the closing window.
    pub observed_rate: f64,
    /// Up or down.
    pub direction: ChangeDirection,
}

#[derive(Debug, Clone, Default)]
struct ClassTrack {
    count: u64,
    ewma_rate: f64,
    windows_seen: u32,
}

/// Per-class arrival-rate characterisation with change detection.
///
/// ```
/// use qsched_core::detect::{DetectorConfig, WorkloadDetector};
/// use qsched_dbms::query::ClassId;
/// use qsched_sim::{SimDuration, SimTime};
///
/// let mut d = WorkloadDetector::new(
///     DetectorConfig { window: SimDuration::from_secs(10), min_windows: 1, ..Default::default() },
///     SimTime::ZERO,
/// );
/// // One steady window, then a 5× burst.
/// for _ in 0..10 { d.on_arrival(ClassId(1)); }
/// assert!(d.advance(SimTime::from_secs(10)).is_empty());
/// for _ in 0..50 { d.on_arrival(ClassId(1)); }
/// let changes = d.advance(SimTime::from_secs(20));
/// assert_eq!(changes.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadDetector {
    cfg: DetectorConfig,
    window_start: SimTime,
    tracks: BTreeMap<ClassId, ClassTrack>,
    total_changes: u64,
}

impl WorkloadDetector {
    /// A detector starting its first window at `start`.
    pub fn new(cfg: DetectorConfig, start: SimTime) -> Self {
        cfg.validate();
        WorkloadDetector {
            cfg,
            window_start: start,
            tracks: BTreeMap::new(),
            total_changes: 0,
        }
    }

    /// Record one arrival of `class`.
    pub fn on_arrival(&mut self, class: ClassId) {
        self.tracks.entry(class).or_default().count += 1;
    }

    /// The current trend rate for `class`, in arrivals/second.
    pub fn trend_rate(&self, class: ClassId) -> Option<f64> {
        self.tracks
            .get(&class)
            .filter(|t| t.windows_seen >= self.cfg.min_windows)
            .map(|t| t.ewma_rate)
    }

    /// Total changes flagged so far.
    pub fn total_changes(&self) -> u64 {
        self.total_changes
    }

    /// Advance to `now`, closing any windows that have elapsed. Returns the
    /// changes detected in the closed windows.
    ///
    /// Windows close strictly on the grid (`start + k·window`); calling this
    /// more often than the window length is cheap and exact.
    pub fn advance(&mut self, now: SimTime) -> Vec<WorkloadChange> {
        let mut changes = Vec::new();
        let win = self.cfg.window;
        while self.window_start + win <= now {
            let closing_end = self.window_start + win;
            for (&class, track) in &mut self.tracks {
                let rate = track.count as f64 / win.as_secs_f64();
                track.count = 0;
                if track.windows_seen >= self.cfg.min_windows {
                    let trend = track.ewma_rate;
                    let base = trend.max(1e-9);
                    let departure = (rate - trend) / base;
                    if departure.abs() > self.cfg.change_threshold {
                        changes.push(WorkloadChange {
                            class,
                            at: closing_end,
                            trend_rate: trend,
                            observed_rate: rate,
                            direction: if departure > 0.0 {
                                ChangeDirection::Increased
                            } else {
                                ChangeDirection::Decreased
                            },
                        });
                        self.total_changes += 1;
                    }
                }
                track.ewma_rate = if track.windows_seen == 0 {
                    rate
                } else {
                    self.cfg.ewma_alpha * rate + (1.0 - self.cfg.ewma_alpha) * track.ewma_rate
                };
                track.windows_seen += 1;
            }
            self.window_start = closing_end;
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> WorkloadDetector {
        WorkloadDetector::new(
            DetectorConfig {
                window: SimDuration::from_secs(10),
                ewma_alpha: 0.3,
                change_threshold: 0.4,
                min_windows: 2,
            },
            SimTime::ZERO,
        )
    }

    fn feed(d: &mut WorkloadDetector, class: ClassId, n: u32) {
        for _ in 0..n {
            d.on_arrival(class);
        }
    }

    #[test]
    fn steady_rate_never_flags() {
        let mut d = detector();
        let c = ClassId(1);
        for w in 1..=20u64 {
            feed(&mut d, c, 10);
            let changes = d.advance(SimTime::from_secs(w * 10));
            assert!(
                changes.is_empty(),
                "steady traffic flagged at window {w}: {changes:?}"
            );
        }
        let rate = d.trend_rate(c).unwrap();
        assert!((rate - 1.0).abs() < 1e-9, "trend {rate} should be 1/s");
    }

    #[test]
    fn sudden_jump_is_detected_with_direction() {
        let mut d = detector();
        let c = ClassId(1);
        for w in 1..=5u64 {
            feed(&mut d, c, 10);
            assert!(d.advance(SimTime::from_secs(w * 10)).is_empty());
        }
        // Rate triples.
        feed(&mut d, c, 30);
        let changes = d.advance(SimTime::from_secs(60));
        assert_eq!(changes.len(), 1);
        let ch = changes[0];
        assert_eq!(ch.class, c);
        assert_eq!(ch.direction, ChangeDirection::Increased);
        assert!((ch.observed_rate - 3.0).abs() < 1e-9);
        assert!((ch.trend_rate - 1.0).abs() < 1e-6);
        assert_eq!(d.total_changes(), 1);
    }

    #[test]
    fn drop_is_detected_as_decrease() {
        let mut d = detector();
        let c = ClassId(2);
        for w in 1..=5u64 {
            feed(&mut d, c, 20);
            d.advance(SimTime::from_secs(w * 10));
        }
        feed(&mut d, c, 2);
        let changes = d.advance(SimTime::from_secs(60));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].direction, ChangeDirection::Decreased);
    }

    #[test]
    fn cold_start_guard_suppresses_early_flags() {
        let mut d = detector();
        let c = ClassId(1);
        // Wildly varying first two windows: below min_windows, no flags.
        feed(&mut d, c, 1);
        assert!(d.advance(SimTime::from_secs(10)).is_empty());
        feed(&mut d, c, 50);
        assert!(d.advance(SimTime::from_secs(20)).is_empty());
    }

    #[test]
    fn multiple_windows_close_in_one_advance() {
        let mut d = detector();
        let c = ClassId(1);
        for w in 1..=4u64 {
            feed(&mut d, c, 10);
            d.advance(SimTime::from_secs(w * 10));
        }
        // 30 arrivals land in the next window; then a silent window passes.
        feed(&mut d, c, 30);
        let changes = d.advance(SimTime::from_secs(60));
        // Window 5 flags the jump; window 6 (zero arrivals) flags the drop.
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].direction, ChangeDirection::Increased);
        assert_eq!(changes[0].at, SimTime::from_secs(50));
        assert_eq!(changes[1].direction, ChangeDirection::Decreased);
        assert_eq!(changes[1].at, SimTime::from_secs(60));
    }

    #[test]
    fn classes_are_tracked_independently() {
        let mut d = detector();
        for w in 1..=5u64 {
            feed(&mut d, ClassId(1), 10);
            feed(&mut d, ClassId(2), 5);
            assert!(d.advance(SimTime::from_secs(w * 10)).is_empty());
        }
        feed(&mut d, ClassId(1), 10); // steady
        feed(&mut d, ClassId(2), 25); // 5× jump
        let changes = d.advance(SimTime::from_secs(60));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].class, ClassId(2));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = WorkloadDetector::new(
            DetectorConfig {
                window: SimDuration::ZERO,
                ..Default::default()
            },
            SimTime::ZERO,
        );
    }
}
