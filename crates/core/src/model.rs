//! The per-type performance models of §3.2.
//!
//! **OLAP velocity model** — for OLAP class *i* at control interval *k*:
//!
//! ```text
//! V_i^k = min(1, V_i^{k-1} · C_i^k / C_i^{k-1})
//! ```
//!
//! More admitted cost shortens queueing, raising velocity proportionally,
//! clipped at 1 (a query cannot run faster than unimpeded).
//!
//! **OLTP linear model** — the OLTP class is controlled *indirectly*: its
//! response time is ~linear in the total OLAP cost limit while the system is
//! under-saturated (the paper's Figure 2):
//!
//! ```text
//! t^k = t^{k-1} + s · (C_olap^k − C_olap^{k-1})
//! ```
//!
//! where `s` is fitted online by linear regression of measured response time
//! against the OLAP cost-limit total.

use qsched_dbms::Timerons;
use qsched_sim::stats::LinReg;
use serde::{Deserialize, Serialize};

/// The OLAP velocity model: predicts next-interval velocity from a candidate
/// cost limit.
///
/// ```
/// use qsched_core::model::OlapVelocityModel;
/// use qsched_dbms::Timerons;
///
/// let mut m = OlapVelocityModel::new(Timerons::new(10_000.0));
/// m.observe(Some(0.4), Timerons::new(10_000.0));
/// // The paper's equation: velocity scales with the limit, clipped at 1.
/// assert!((m.predict(Timerons::new(15_000.0)) - 0.6).abs() < 1e-12);
/// assert_eq!(m.predict(Timerons::new(40_000.0)), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlapVelocityModel {
    /// Last measured velocity (carried forward when an interval has no
    /// completions).
    last_velocity: f64,
    /// Cost limit in effect during the last measurement.
    last_limit: Timerons,
}

impl OlapVelocityModel {
    /// Start with a neutral prior: velocity 0.5 at the given initial limit.
    pub fn new(initial_limit: Timerons) -> Self {
        OlapVelocityModel {
            last_velocity: 0.5,
            last_limit: initial_limit,
        }
    }

    /// Record the measured mean velocity for the interval that just ended,
    /// together with the limit that was in effect. Passing `None` (interval
    /// had no completions) keeps the previous measurement but adopts the new
    /// limit baseline.
    pub fn observe(&mut self, velocity: Option<f64>, limit: Timerons) {
        if let Some(v) = velocity {
            debug_assert!(
                (0.0..=1.0 + 1e-9).contains(&v),
                "velocity out of range: {v}"
            );
            self.last_velocity = v.clamp(0.0, 1.0);
        }
        self.last_limit = limit;
    }

    /// Predict the velocity under a candidate limit (the paper's equation).
    pub fn predict(&self, candidate: Timerons) -> f64 {
        if self.last_limit.is_zero() {
            // No baseline: an idle class was granted budget. Be optimistic in
            // proportion to nothing — treat any grant as full speed so the
            // solver is not blind to reviving a starved class.
            return if candidate.is_zero() { 0.0 } else { 1.0 };
        }
        (self.last_velocity * candidate.ratio(self.last_limit)).clamp(0.0, 1.0)
    }

    /// Most recent measured (or carried) velocity.
    pub fn current(&self) -> f64 {
        self.last_velocity
    }

    /// The limit baseline of the last observation.
    pub fn current_limit(&self) -> Timerons {
        self.last_limit
    }
}

/// The OLTP linear response-time model with an online-regressed slope.
///
/// ```
/// use qsched_core::model::OltpLinearModel;
/// use qsched_dbms::Timerons;
///
/// let mut m = OltpLinearModel::new(1e-5, 0.9, Timerons::new(20_000.0));
/// m.observe(Some(0.30), Timerons::new(20_000.0));
/// // Cutting the OLAP total by 10 K predicts a 0.1 s faster OLTP class
/// // (prior slope 1e-5 s/timeron until the regression takes over).
/// assert!((m.predict(Timerons::new(10_000.0)) - 0.20).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OltpLinearModel {
    reg: LinReg,
    /// Fallback slope before the regression is defined: seconds of response
    /// time per timeron of OLAP cost limit.
    default_slope: f64,
    last_response: f64,
    last_olap_total: Timerons,
    /// When frozen, observations update the measurement baseline but never
    /// the regression: the model keeps its prior slope (ablation baseline).
    frozen: bool,
}

impl OltpLinearModel {
    /// Create the model.
    ///
    /// `default_slope` is used until two distinct OLAP totals have been
    /// observed; a sensible prior is `goal_response / system_limit`.
    /// `decay ∈ (0, 1]` exponentially ages old observations so the slope
    /// tracks workload drift.
    pub fn new(default_slope: f64, decay: f64, initial_olap_total: Timerons) -> Self {
        assert!(default_slope >= 0.0 && default_slope.is_finite());
        OltpLinearModel {
            reg: LinReg::with_decay(decay),
            default_slope,
            last_response: 0.0,
            last_olap_total: initial_olap_total,
            frozen: false,
        }
    }

    /// Freeze the slope at the prior: observations still move the
    /// measurement baseline, but the regression never updates. This is the
    /// "fixed-share" ablation baseline against online learning.
    pub fn frozen(mut self) -> Self {
        self.frozen = true;
        self
    }

    /// Record the measured mean OLTP response time (seconds) for the
    /// interval that just ended and the OLAP cost-limit total in effect.
    /// `None` (no fresh OLTP samples) keeps the previous measurement.
    pub fn observe(&mut self, response_secs: Option<f64>, olap_total: Timerons) {
        if let Some(t) = response_secs {
            debug_assert!(t.is_finite() && t >= 0.0, "bad response time {t}");
            self.last_response = t;
            if !self.frozen {
                self.reg.push(olap_total.get(), t);
            }
        }
        self.last_olap_total = olap_total;
    }

    /// The fitted slope `s` in seconds per timeron. Falls back to the prior
    /// until the regression is defined, and clamps negative fits to zero
    /// (more OLAP load cannot make OLTP faster; a negative fit is noise).
    pub fn slope(&self) -> f64 {
        match self.reg.slope() {
            Some(s) if s.is_finite() => s.max(0.0),
            _ => self.default_slope,
        }
    }

    /// Predict the OLTP response time (seconds) under a candidate OLAP
    /// cost-limit total: `t + s·(C_new − C_cur)`, floored at zero.
    pub fn predict(&self, candidate_olap_total: Timerons) -> f64 {
        let dc = candidate_olap_total.get() - self.last_olap_total.get();
        (self.last_response + self.slope() * dc).max(0.0)
    }

    /// Most recent measured (or carried) response time, in seconds.
    pub fn current(&self) -> f64 {
        self.last_response
    }

    /// Number of regression observations so far.
    pub fn observations(&self) -> u64 {
        self.reg.count()
    }

    /// The regression's coefficient of determination, if defined.
    pub fn fit_r_squared(&self) -> Option<f64> {
        self.reg.r_squared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Timerons {
        Timerons::new(v)
    }

    #[test]
    fn olap_model_is_proportional_and_clipped() {
        let mut m = OlapVelocityModel::new(t(10_000.0));
        m.observe(Some(0.5), t(10_000.0));
        // Doubling the limit doubles predicted velocity.
        assert!((m.predict(t(20_000.0)) - 1.0).abs() < 1e-12);
        // Quadrupling clips at 1 (the paper's second case).
        assert!((m.predict(t(40_000.0)) - 1.0).abs() < 1e-12);
        // Halving halves it.
        assert!((m.predict(t(5_000.0)) - 0.25).abs() < 1e-12);
        // Zero grant: zero velocity.
        assert_eq!(m.predict(Timerons::ZERO), 0.0);
    }

    #[test]
    fn olap_model_carries_measurement_forward() {
        let mut m = OlapVelocityModel::new(t(10_000.0));
        m.observe(Some(0.8), t(10_000.0));
        m.observe(None, t(5_000.0)); // quiet interval, new baseline
        assert!((m.current() - 0.8).abs() < 1e-12);
        // Prediction now uses the 5 K baseline.
        assert!((m.predict(t(10_000.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn olap_model_zero_baseline_is_optimistic() {
        let mut m = OlapVelocityModel::new(Timerons::ZERO);
        m.observe(Some(0.1), Timerons::ZERO);
        assert_eq!(m.predict(t(1_000.0)), 1.0);
        assert_eq!(m.predict(Timerons::ZERO), 0.0);
    }

    #[test]
    fn oltp_model_uses_default_slope_until_fitted() {
        let m = OltpLinearModel::new(1e-5, 1.0, t(20_000.0));
        assert_eq!(m.slope(), 1e-5);
        // t=0 measured; +10K timerons predicts +0.1 s.
        assert!((m.predict(t(30_000.0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn oltp_model_learns_the_true_slope() {
        let mut m = OltpLinearModel::new(0.0, 1.0, t(0.0));
        // Ground truth: t = 0.05 + 8e-6 · C.
        for c in [5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0] {
            m.observe(Some(0.05 + 8e-6 * c), t(c));
        }
        assert!((m.slope() - 8e-6).abs() < 1e-9, "slope {}", m.slope());
        // Prediction from the last point (C=25K, t=0.25) to C=10K.
        let pred = m.predict(t(10_000.0));
        assert!(
            (pred - (0.05 + 8e-6 * 10_000.0)).abs() < 1e-6,
            "pred {pred}"
        );
        assert!(m.fit_r_squared().unwrap() > 0.999);
    }

    #[test]
    fn oltp_negative_fit_clamps_to_zero() {
        let mut m = OltpLinearModel::new(1e-5, 1.0, t(0.0));
        // Pathological data: response *falls* as OLAP rises.
        m.observe(Some(0.5), t(10_000.0));
        m.observe(Some(0.1), t(20_000.0));
        assert_eq!(m.slope(), 0.0);
        // Prediction degenerates to the last measurement.
        assert!((m.predict(t(5_000.0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn oltp_prediction_never_negative() {
        let mut m = OltpLinearModel::new(1e-4, 1.0, t(30_000.0));
        m.observe(Some(0.1), t(30_000.0));
        assert!(m.predict(Timerons::ZERO) >= 0.0);
    }

    #[test]
    fn frozen_model_never_learns() {
        let mut m = OltpLinearModel::new(1e-5, 1.0, t(0.0)).frozen();
        for c in [5_000.0, 10_000.0, 15_000.0] {
            m.observe(Some(0.05 + 8e-6 * c), t(c));
        }
        assert_eq!(m.slope(), 1e-5, "frozen model must keep its prior slope");
        assert_eq!(m.observations(), 0);
        // The measurement baseline still moves.
        assert!((m.current() - (0.05 + 8e-6 * 15_000.0)).abs() < 1e-9);
    }

    #[test]
    fn oltp_quiet_interval_keeps_measurement() {
        let mut m = OltpLinearModel::new(1e-5, 1.0, t(10_000.0));
        m.observe(Some(0.2), t(10_000.0));
        m.observe(None, t(15_000.0));
        assert!((m.current() - 0.2).abs() < 1e-12);
        assert_eq!(m.observations(), 1);
        // Baseline moved to 15 K.
        assert!((m.predict(t(15_000.0)) - 0.2).abs() < 1e-12);
    }
}
