//! The Dispatcher: cost-limit admission control.
//!
//! "The Dispatcher follows a scheduling plan by releasing queries for
//! execution as long as the addition of a new query does not mean that the
//! cost limit for the query's class is exceeded" (§2). It tracks the total
//! estimated cost currently executing per class and releases queued queries
//! head-first whenever headroom appears (a completion, or a plan change).
//!
//! Starvation guard: a query whose estimated cost alone exceeds its class
//! limit would otherwise wait forever; when its class has nothing executing
//! it is released anyway (configurable, on by default — DB2 QP handles this
//! case with separate maximum-cost rejection rules, which the paper does not
//! use).

use crate::plan::Plan;
use crate::queue::ClassQueues;
use qsched_dbms::query::{ClassId, QueryRecord};
use qsched_dbms::Timerons;
use std::collections::BTreeMap;

/// Cost-limit admission state for the controlled classes.
///
/// ```
/// use qsched_core::dispatch::Dispatcher;
/// use qsched_core::plan::Plan;
/// use qsched_core::queue::ClassQueues;
/// use qsched_dbms::query::{ClassId, QueryId};
/// use qsched_dbms::Timerons;
///
/// let plan = Plan::new(vec![(ClassId(1), Timerons::new(100.0))]);
/// let mut d = Dispatcher::new(&plan);
/// let mut q = ClassQueues::new();
/// q.enqueue(ClassId(1), QueryId(1), Timerons::new(70.0));
/// q.enqueue(ClassId(1), QueryId(2), Timerons::new(70.0));
/// // The first fits under the 100-timeron limit; the second must wait.
/// let released = d.on_enqueued(ClassId(1), &mut q);
/// assert_eq!(released, vec![(ClassId(1), QueryId(1))]);
/// assert_eq!(d.executing_cost(ClassId(1)).get(), 70.0);
/// ```
#[derive(Debug, Clone)]
pub struct Dispatcher {
    /// Current class cost limits (the active scheduling plan).
    limits: BTreeMap<ClassId, Timerons>,
    /// The controlled classes, sorted — cached at construction so the
    /// after-plan-change scan is O(classes) with no allocation.
    controlled: Vec<ClassId>,
    /// Per class: estimated cost and integer count of executing queries.
    /// The count is authoritative for idleness — cost sums accrue float
    /// residue when added and subtracted in different orders, so the cost is
    /// reset to exactly zero whenever the count reaches zero.
    executing: BTreeMap<ClassId, (Timerons, u32)>,
    /// Release a head query that alone exceeds the limit when its class is idle.
    allow_oversize_when_idle: bool,
    /// Total queries released.
    released: u64,
    /// Releases that only went through via the oversize-when-idle guard.
    oversize_releases: u64,
    /// Releases accounted on behalf of the engine (starvation watchdog).
    external_releases: u64,
    /// Releases whose decision-time cost bound did not actually hold — a
    /// dispatcher logic bug. Must stay zero; the oracle promotes this from
    /// a debug assertion to an always-on invariant.
    release_bound_breaches: u64,
}

/// The outcome of a release scan: queries the engine should now unblock.
pub type ReleaseList = Vec<(ClassId, qsched_dbms::query::QueryId)>;

impl Dispatcher {
    /// A dispatcher controlling exactly the classes named in `plan`.
    pub fn new(plan: &Plan) -> Self {
        let limits: BTreeMap<ClassId, Timerons> =
            plan.limits().iter().map(|&(c, l)| (c, l)).collect();
        let executing = limits.keys().map(|&c| (c, (Timerons::ZERO, 0))).collect();
        let controlled = limits.keys().copied().collect();
        Dispatcher {
            limits,
            controlled,
            executing,
            allow_oversize_when_idle: true,
            released: 0,
            oversize_releases: 0,
            external_releases: 0,
            release_bound_breaches: 0,
        }
    }

    /// Disable the oversize-when-idle starvation guard (for ablations).
    pub fn without_oversize_guard(mut self) -> Self {
        self.allow_oversize_when_idle = false;
        self
    }

    /// Is this class under the dispatcher's control?
    pub fn controls(&self, class: ClassId) -> bool {
        self.limits.contains_key(&class)
    }

    /// Current limit for a class (zero for uncontrolled classes).
    pub fn limit(&self, class: ClassId) -> Timerons {
        self.limits.get(&class).copied().unwrap_or(Timerons::ZERO)
    }

    /// Estimated executing cost of a class.
    pub fn executing_cost(&self, class: ClassId) -> Timerons {
        self.executing
            .get(&class)
            .map(|&(c, _)| c)
            .unwrap_or(Timerons::ZERO)
    }

    /// Number of executing queries of a class.
    pub fn executing_count(&self, class: ClassId) -> u32 {
        self.executing.get(&class).map(|&(_, n)| n).unwrap_or(0)
    }

    /// Total estimated executing cost across controlled classes.
    pub fn total_executing(&self) -> Timerons {
        self.executing.values().map(|&(c, _)| c).sum()
    }

    /// Total queries released so far.
    pub fn total_released(&self) -> u64 {
        self.released
    }

    /// Install a new plan, then scan for releasable queries.
    ///
    /// # Panics
    /// Panics if the plan names a different class set than the dispatcher
    /// was built with (plans must be a re-division of the same classes).
    pub fn apply_plan(&mut self, plan: &Plan, queues: &mut ClassQueues) -> ReleaseList {
        let mut out = Vec::new();
        self.apply_plan_into(plan, queues, &mut out);
        out
    }

    /// [`Dispatcher::apply_plan`], appending releases to a caller-owned
    /// buffer so the steady-state replan path allocates nothing.
    pub fn apply_plan_into(
        &mut self,
        plan: &Plan,
        queues: &mut ClassQueues,
        out: &mut ReleaseList,
    ) {
        for &(c, l) in plan.limits() {
            let slot = self
                .limits
                .get_mut(&c)
                .unwrap_or_else(|| panic!("plan names unknown class {c}"));
            *slot = l;
        }
        assert_eq!(
            plan.limits().len(),
            self.limits.len(),
            "plan omits controlled classes"
        );
        // Scan every controlled class: headroom can appear anywhere.
        for i in 0..self.controlled.len() {
            let c = self.controlled[i];
            self.scan_class_into(c, queues, out);
        }
    }

    /// A query of a controlled class was enqueued; release it if it fits.
    pub fn on_enqueued(&mut self, class: ClassId, queues: &mut ClassQueues) -> ReleaseList {
        let mut out = Vec::new();
        self.on_enqueued_into(class, queues, &mut out);
        out
    }

    /// [`Dispatcher::on_enqueued`] into a caller-owned buffer.
    pub fn on_enqueued_into(
        &mut self,
        class: ClassId,
        queues: &mut ClassQueues,
        out: &mut ReleaseList,
    ) {
        self.scan_class_into(class, queues, out);
    }

    /// A query completed. If it belonged to a controlled class its cost is
    /// returned to the class budget and the queue is re-scanned.
    pub fn on_completed(&mut self, rec: &QueryRecord, queues: &mut ClassQueues) -> ReleaseList {
        let mut out = Vec::new();
        self.on_completed_into(rec, queues, &mut out);
        out
    }

    /// [`Dispatcher::on_completed`] into a caller-owned buffer.
    pub fn on_completed_into(
        &mut self,
        rec: &QueryRecord,
        queues: &mut ClassQueues,
        out: &mut ReleaseList,
    ) {
        if let Some((cost, count)) = self.executing.get_mut(&rec.class) {
            debug_assert!(*count > 0, "completion for a class with nothing executing");
            *count = count.saturating_sub(1);
            *cost = if *count == 0 {
                Timerons::ZERO // clean any float residue at idle
            } else {
                cost.saturating_sub(rec.estimated_cost)
            };
            self.scan_class_into(rec.class, queues, out);
        }
    }

    /// Account for a query of a controlled class that the engine released
    /// *outside* the dispatcher (the starvation watchdog): its cost joins
    /// the executing books so the eventual completion balances them.
    /// Uncontrolled classes are ignored. Does not count as a dispatcher
    /// release in [`Dispatcher::total_released`].
    pub fn note_external_release(&mut self, class: ClassId, cost: Timerons) {
        if let Some(slot) = self.executing.get_mut(&class) {
            slot.0 += cost;
            slot.1 += 1;
            self.external_releases += 1;
        }
    }

    /// Releases accounted via [`Dispatcher::note_external_release`].
    pub fn total_external_releases(&self) -> u64 {
        self.external_releases
    }

    /// Seed the executing books at controller restart (crash
    /// reconciliation): the query is already running in the engine,
    /// released by a previous controller incarnation, so its cost must
    /// occupy the class budget for the eventual completion to balance.
    /// Unlike [`Dispatcher::note_external_release`] this is book *restore*,
    /// not a new event — no release counter moves. Uncontrolled classes are
    /// ignored.
    pub fn restore_executing(&mut self, class: ClassId, cost: Timerons) {
        if let Some(slot) = self.executing.get_mut(&class) {
            slot.0 += cost;
            slot.1 += 1;
        }
    }

    /// Releases that went through only via the oversize-when-idle guard.
    pub fn total_oversize_releases(&self) -> u64 {
        self.oversize_releases
    }

    /// Internal consistency check (the oracle's dispatcher surface):
    /// idle classes carry exactly zero cost, all books are finite and
    /// non-negative, and no release ever breached its decision-time cost
    /// bound. O(classes).
    pub fn audit(&self) -> Result<(), String> {
        if self.release_bound_breaches > 0 {
            return Err(format!(
                "{} release(s) breached the decision-time cost bound",
                self.release_bound_breaches
            ));
        }
        for (&class, &(cost, count)) in &self.executing {
            if !cost.get().is_finite() || cost.get() < 0.0 {
                return Err(format!(
                    "class {class}: executing cost {cost:?} is not sane"
                ));
            }
            if count == 0 && cost != Timerons::ZERO {
                return Err(format!(
                    "class {class}: idle (count 0) but carries cost {cost:?}"
                ));
            }
        }
        for (&class, &limit) in &self.limits {
            if !limit.get().is_finite() || limit.get() < 0.0 {
                return Err(format!("class {class}: limit {limit:?} is not sane"));
            }
        }
        Ok(())
    }

    /// Scan one class queue, releasing head queries while they fit.
    fn scan_class_into(&mut self, class: ClassId, queues: &mut ClassQueues, out: &mut ReleaseList) {
        let Some(&limit) = self.limits.get(&class) else {
            return;
        };
        while let Some(head) = queues.peek(class) {
            let (executing, count) = self
                .executing
                .get(&class)
                .copied()
                .unwrap_or((Timerons::ZERO, 0));
            let within_limit = executing + head.cost <= limit;
            let oversize = self.allow_oversize_when_idle && count == 0;
            if !within_limit && !oversize {
                break;
            }
            // Decision-time invariant (the paper's §2 release rule): every
            // release either keeps the class within its cost limit or is the
            // oversize-when-idle starvation exception. Recorded rather than
            // asserted so the oracle surfaces a logic bug as a violation.
            if !within_limit {
                if oversize {
                    self.oversize_releases += 1;
                } else {
                    self.release_bound_breaches += 1;
                }
            }
            queues.pop(class);
            let slot = self.executing.entry(class).or_insert((Timerons::ZERO, 0));
            slot.0 += head.cost;
            slot.1 += 1;
            self.released += 1;
            out.push((class, head.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsched_dbms::query::{ClientId, QueryId, QueryKind};
    use qsched_sim::SimTime;

    fn plan(limits: &[(u16, f64)]) -> Plan {
        Plan::new(
            limits
                .iter()
                .map(|&(c, l)| (ClassId(c), Timerons::new(l)))
                .collect(),
        )
    }

    fn rec(class: u16, cost: f64) -> QueryRecord {
        QueryRecord {
            id: QueryId(999),
            client: ClientId(0),
            class: ClassId(class),
            kind: QueryKind::Olap,
            template: 0,
            estimated_cost: Timerons::new(cost),
            submitted: SimTime::ZERO,
            admitted: SimTime::ZERO,
            finished: SimTime::ZERO,
        }
    }

    #[test]
    fn releases_while_limit_allows() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0)]));
        let mut q = ClassQueues::new();
        q.enqueue(ClassId(1), QueryId(1), Timerons::new(60.0));
        q.enqueue(ClassId(1), QueryId(2), Timerons::new(30.0));
        q.enqueue(ClassId(1), QueryId(3), Timerons::new(30.0));
        let rel = d.on_enqueued(ClassId(1), &mut q);
        // 60 + 30 fit; the third (would make 120) does not.
        assert_eq!(rel.len(), 2);
        assert_eq!(d.executing_cost(ClassId(1)).get(), 90.0);
        assert_eq!(q.len(ClassId(1)), 1);
    }

    #[test]
    fn completion_returns_budget_and_releases_next() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0)]));
        let mut q = ClassQueues::new();
        q.enqueue(ClassId(1), QueryId(1), Timerons::new(90.0));
        q.enqueue(ClassId(1), QueryId(2), Timerons::new(50.0));
        assert_eq!(d.on_enqueued(ClassId(1), &mut q).len(), 1);
        let rel = d.on_completed(&rec(1, 90.0), &mut q);
        assert_eq!(rel, vec![(ClassId(1), QueryId(2))]);
        assert_eq!(d.executing_cost(ClassId(1)).get(), 50.0);
    }

    #[test]
    fn raising_the_limit_releases_backlog() {
        let mut d = Dispatcher::new(&plan(&[(1, 50.0), (2, 50.0)]));
        let mut q = ClassQueues::new();
        q.enqueue(ClassId(1), QueryId(1), Timerons::new(40.0));
        q.enqueue(ClassId(1), QueryId(2), Timerons::new(40.0));
        assert_eq!(d.on_enqueued(ClassId(1), &mut q).len(), 1);
        // New plan shifts budget to class 1.
        let rel = d.apply_plan(&plan(&[(1, 90.0), (2, 10.0)]), &mut q);
        assert_eq!(rel, vec![(ClassId(1), QueryId(2))]);
    }

    #[test]
    fn oversize_query_released_only_when_class_idle() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0)]));
        let mut q = ClassQueues::new();
        q.enqueue(ClassId(1), QueryId(1), Timerons::new(150.0));
        // Idle class: the guard lets the oversize query through.
        let rel = d.on_enqueued(ClassId(1), &mut q);
        assert_eq!(rel.len(), 1);
        // A second oversize query must wait for the first to finish.
        q.enqueue(ClassId(1), QueryId(2), Timerons::new(150.0));
        assert!(d.on_enqueued(ClassId(1), &mut q).is_empty());
        let rel = d.on_completed(&rec(1, 150.0), &mut q);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn oversize_guard_can_be_disabled() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0)])).without_oversize_guard();
        let mut q = ClassQueues::new();
        q.enqueue(ClassId(1), QueryId(1), Timerons::new(150.0));
        assert!(d.on_enqueued(ClassId(1), &mut q).is_empty());
    }

    #[test]
    fn uncontrolled_class_completions_are_ignored() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0)]));
        let mut q = ClassQueues::new();
        assert!(d.on_completed(&rec(9, 50.0), &mut q).is_empty());
        assert!(!d.controls(ClassId(9)));
        assert_eq!(d.limit(ClassId(9)), Timerons::ZERO);
    }

    #[test]
    fn executing_never_exceeds_limit_except_oversize_head() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0)]));
        let mut q = ClassQueues::new();
        for i in 0..20 {
            q.enqueue(ClassId(1), QueryId(i), Timerons::new(33.0));
        }
        d.on_enqueued(ClassId(1), &mut q);
        assert!(d.executing_cost(ClassId(1)).get() <= 100.0);
        // Drain: budget accounting must return to zero.
        for _ in 0..3 {
            d.on_completed(&rec(1, 33.0), &mut q);
        }
        assert!(d.executing_cost(ClassId(1)).get() <= 100.0);
    }

    #[test]
    fn audit_passes_through_a_release_complete_cycle() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0), (2, 50.0)]));
        let mut q = ClassQueues::new();
        q.enqueue(ClassId(1), QueryId(1), Timerons::new(150.0)); // oversize-at-idle
        q.enqueue(ClassId(2), QueryId(2), Timerons::new(40.0));
        d.on_enqueued(ClassId(1), &mut q);
        d.on_enqueued(ClassId(2), &mut q);
        assert!(d.audit().is_ok());
        assert_eq!(d.total_oversize_releases(), 1);
        d.note_external_release(ClassId(2), Timerons::new(10.0));
        assert_eq!(d.total_external_releases(), 1);
        assert!(d.audit().is_ok());
        d.on_completed(&rec(1, 150.0), &mut q);
        d.on_completed(&rec(2, 40.0), &mut q);
        d.on_completed(&rec(2, 10.0), &mut q);
        assert!(d.audit().is_ok());
        assert_eq!(d.executing_cost(ClassId(2)), Timerons::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown class")]
    fn plan_with_unknown_class_panics() {
        let mut d = Dispatcher::new(&plan(&[(1, 100.0)]));
        let mut q = ClassQueues::new();
        let _ = d.apply_plan(&plan(&[(2, 100.0)]), &mut q);
    }
}
