//! Controller crash recovery: serializable checkpoints and restart
//! statistics.
//!
//! The Query Scheduler is an *external* process sitting between clients and
//! the DBMS — it can crash while queries are queued, blocked, or executing.
//! A [`Checkpoint`] captures the slow-moving controller state worth
//! persisting (the plan, the learned performance models, the queue and
//! fault books); everything else is deliberately *volatile* and rebuilt at
//! restart by reconciling against the Patroller's authoritative control
//! table (the queries themselves never lived in the controller). The
//! monitor's in-interval aggregates are likewise not persisted: they are
//! seconds of partial sums that re-warm within one control interval, and
//! restoring half an interval's worth of completions would double-count
//! against the post-restart snapshot cursor.
//!
//! See `Controller::checkpoint` / `Controller::restart_from` in
//! [`crate::controller`] for the lifecycle, and `QueryScheduler` for the
//! full reconciliation protocol.

use crate::model::{OlapVelocityModel, OltpLinearModel};
use crate::plan::Plan;
use qsched_dbms::cost::Timerons;
use qsched_dbms::query::{ClassId, QueryId};
use qsched_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Schema tag written into every checkpoint (versioned for forward
/// compatibility of persisted snapshots).
pub const CHECKPOINT_SCHEMA: &str = "qsched-ckpt-v1";

/// A serializable snapshot of a controller's durable state, taken
/// periodically so a crash loses at most one checkpoint interval of
/// learning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Schema tag ([`CHECKPOINT_SCHEMA`]).
    pub schema: String,
    /// Sim time the snapshot was taken.
    pub at: SimTime,
    /// The active scheduling plan (per-class cost limits).
    pub plan: Plan,
    /// Control intervals completed so far.
    pub control_intervals: u64,
    /// Queue contents at snapshot time, in queue order: `(class, id,
    /// estimated cost)`. Used at restart to classify reconciled queries as
    /// recovered (known) vs adopted (arrived inside the crash window).
    pub queued: Vec<(ClassId, QueryId, Timerons)>,
    /// The pending-release fault book: queries whose release command was
    /// issued but unacknowledged. If one of these is still blocked after
    /// the restart, its release was lost in the crash window.
    pub pending_retries: Vec<QueryId>,
    /// The incarnation's transport epoch at snapshot time. The restarted
    /// process resumes strictly above this, so release envelopes the dead
    /// incarnation left in flight can never be mistaken for its own.
    /// Defaults to 0 when reading pre-transport checkpoints (same schema).
    #[serde(default)]
    pub epoch: u64,
    /// Learned OLAP velocity models, keyed by class.
    pub olap_models: Vec<(ClassId, OlapVelocityModel)>,
    /// The learned OLTP response-time model.
    pub oltp_model: OltpLinearModel,
}

impl Checkpoint {
    /// True when the schema tag matches what this build writes.
    pub fn schema_ok(&self) -> bool {
        self.schema == CHECKPOINT_SCHEMA
    }
}

/// What a restart found while reconciling against the Patroller's control
/// table — the per-crash recovery ledger surfaced in resilience reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartStats {
    /// True when a checkpoint was restored; false for a cold start (the
    /// controller fell back to the baseline plan until the monitor
    /// re-warmed).
    pub warm: bool,
    /// Blocked queries present in the checkpoint's queue book and still
    /// blocked: re-queued where they left off.
    pub recovered: u64,
    /// Blocked queries the checkpoint never saw (they arrived, or were
    /// being released, inside the crash window): adopted into the queues.
    pub adopted: u64,
    /// Release commands the old incarnation issued that never reached the
    /// Patroller — detected because the query is still blocked despite
    /// sitting in the checkpoint's pending-release book; re-issued.
    pub lost_releases: u64,
    /// Checkpointed queue entries no longer blocked at restart: their
    /// release won the race with the crash (or a watchdog freed them), so
    /// there is nothing to redo.
    pub resolved_externally: u64,
    /// Until this instant the controller runs in degraded mode: it keeps
    /// the baseline plan instead of solving, because a cold start has no
    /// learned models and the monitor needs a full interval to re-warm.
    /// `None` after a warm restart (the checkpointed models resume
    /// immediately).
    pub degraded_until: Option<SimTime>,
}

impl RestartStats {
    /// Total blocked queries the reconciliation re-queued (including those
    /// whose lost release was detected and re-issued).
    pub fn requeued(&self) -> u64 {
        self.recovered + self.adopted + self.lost_releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_serde_round_trip() {
        let ckpt = Checkpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            at: SimTime::from_secs(120),
            plan: Plan::even_split(&[ClassId(1), ClassId(2)], Timerons::new(1000.0)),
            control_intervals: 4,
            queued: vec![(ClassId(1), QueryId(7), Timerons::new(250.0))],
            pending_retries: vec![QueryId(9)],
            epoch: 2,
            olap_models: vec![(ClassId(1), OlapVelocityModel::new(Timerons::new(500.0)))],
            oltp_model: OltpLinearModel::new(0.001, 0.9, Timerons::new(500.0)),
        };
        let json = serde_json::to_string(&ckpt).expect("serialize");
        let back: Checkpoint = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, ckpt);
        assert!(back.schema_ok());
    }

    #[test]
    fn restart_stats_tally() {
        let st = RestartStats {
            warm: true,
            recovered: 3,
            adopted: 2,
            lost_releases: 1,
            resolved_externally: 4,
            degraded_until: None,
        };
        assert_eq!(st.requeued(), 6);
    }
}
