//! Sender half of the control-plane transport: the message boundary between
//! the controller and the Patroller/DBMS.
//!
//! The paper's control loop calls the Query Patroller's unblock API as a
//! plain function call. A daemonized controller (ROADMAP item 4) talks to
//! the engine over a link that can drop, delay, duplicate, and reorder
//! commands instead. This module makes that boundary explicit:
//!
//! * [`Transport`] — the send-side abstraction the scheduler releases
//!   through. Implementations return a [`SendOutcome`] that tells the caller
//!   whether the effect landed synchronously, is in flight, or failed.
//! * [`InlineTransport`] — the perfect in-process channel: a direct call to
//!   [`Dbms::release`], byte-for-byte the pre-transport behaviour. This is
//!   the default; every existing digest is reproduced under it.
//! * [`SimTransport`] — routes each release as a [`ReleaseEnvelope`] through
//!   the DES engine, subject to the deterministic fault channels
//!   `transport.drop`, `transport.delay`, `transport.dup`, and
//!   `transport.reorder` (gate them with [`ChaosTrack`] windows to model
//!   partitions). Envelopes carry a monotone sequence number and the
//!   sender's restart epoch; delivery is acked, and unacked sends are
//!   retried by the scheduler under a bounded [`RetryPolicy`].
//!
//! With every `transport.*` channel absent or at rate zero, `SimTransport`
//! delivers synchronously through the receiver's (pure-state) dedup book and
//! consumes no randomness — its event stream is bit-identical to
//! `InlineTransport`'s, which the metamorphic swarm in
//! `tests/transport_swarm.rs` pins down across seeds.
//!
//! [`Dbms::release`]: qsched_dbms::engine::Dbms::release
//! [`ChaosTrack`]: qsched_sim::ChaosTrack

use qsched_dbms::engine::{Dbms, DbmsEvent};
use qsched_dbms::query::QueryId;
use qsched_dbms::transport::{ReleaseBatch, ReleaseEnvelope, MAX_BATCH};
use qsched_sim::{Ctx, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A validated retry schedule: capped exponential backoff with a bounded
/// exponent. Shared by the release-retry path (lost in-engine commands) and
/// the transport ack-timeout path, so the two cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound of the exponential backoff.
    pub cap: SimDuration,
    /// Exponent clamp: attempt `n` backs off by `base · 2^min(n, budget)`,
    /// so the schedule stops growing after `budget` doublings.
    pub budget: u32,
}

impl RetryPolicy {
    /// A policy with explicit knobs.
    pub fn new(base: SimDuration, cap: SimDuration, budget: u32) -> Self {
        RetryPolicy { base, cap, budget }
    }

    /// The delay to wait after the given (0-based) failed attempt.
    pub fn delay_for(&self, attempt: u32) -> SimDuration {
        self.base
            .mul_f64(2f64.powi(attempt.min(self.budget) as i32))
            .min(self.cap)
    }

    /// Reject degenerate schedules: a zero base or cap would retry in a
    /// busy-loop at the same instant; a zero budget is a misconfiguration
    /// (use `cap == base` for constant backoff instead).
    pub fn validate(&self) -> Result<(), String> {
        if self.base.is_zero() {
            return Err(
                "retry base must be positive (zero would retry at the same instant)".into(),
            );
        }
        if self.cap < self.base {
            return Err(format!(
                "retry cap {:?} is below the base {:?}",
                self.cap, self.base
            ));
        }
        if self.budget == 0 {
            return Err("retry budget must be at least 1 doubling".into());
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    /// The release-retry schedule introduced with graceful degradation:
    /// 500 ms first retry, doubling to a 30 s cap.
    fn default() -> Self {
        RetryPolicy::new(
            SimDuration::from_millis(500),
            SimDuration::from_secs(30),
            16,
        )
    }
}

/// Which transport carries Controller→Patroller commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportMode {
    /// Direct in-process call (perfect channel, the default).
    Inline,
    /// Enveloped messages through the DES engine, subject to `transport.*`
    /// fault channels.
    Sim,
}

/// Transport configuration carried by the scheduler config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Which channel implementation to use.
    pub mode: TransportMode,
    /// Ack-timeout schedule for in-flight envelopes: an unacked send is
    /// re-sent after `retry.delay_for(attempt)`.
    #[serde(default = "TransportConfig::default_retry")]
    pub retry: RetryPolicy,
    /// Releases per wire message. `1` (the default) sends each release as
    /// its own envelope — byte-for-byte the pre-batching behaviour. Values
    /// `2..=8` buffer consecutive releases from one control action into a
    /// single [`ReleaseBatch`] event, amortizing per-message event overhead
    /// on sharded topologies; the scheduler flushes the buffer at the end of
    /// every release-producing event. `0` (what an absent field
    /// deserializes to) normalizes to the unbatched wire.
    #[serde(default)]
    pub max_batch: u8,
}

impl TransportConfig {
    fn default_retry() -> RetryPolicy {
        // Ack timeouts start above the typical round trip (the default
        // `transport.delay` holds an envelope for ~2 s), not at the
        // in-engine retry base.
        RetryPolicy::new(SimDuration::from_secs(2), SimDuration::from_secs(30), 16)
    }

    /// Validate the retry schedule and batching knob.
    pub fn validate(&self) -> Result<(), String> {
        self.retry
            .validate()
            .map_err(|e| format!("transport retry policy: {e}"))?;
        if usize::from(self.max_batch) > MAX_BATCH {
            return Err(format!(
                "transport max_batch {} exceeds the wire limit {MAX_BATCH}",
                self.max_batch
            ));
        }
        Ok(())
    }
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mode: TransportMode::Inline,
            retry: Self::default_retry(),
            max_batch: 1,
        }
    }
}

/// What happened to a release send, as far as the sender can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The release effect was applied synchronously.
    Delivered,
    /// The target query is no longer held — nothing to deliver.
    Gone,
    /// The command failed inside the engine (e.g. the in-engine
    /// `release.drop` channel ate it) and the query is still held; the
    /// caller should retry on the release-retry schedule.
    Failed,
    /// The envelope is somewhere in the network (delayed, duplicated, or
    /// silently dropped — the sender cannot tell). An ack resolves it; an
    /// ack timeout re-sends it.
    InFlight,
}

/// Send-side transport counters (embedded in the run report's ledger).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SenderStats {
    /// Envelopes handed to the transport (including re-sends).
    pub sent: u64,
    /// Envelopes applied synchronously (healthy channel).
    pub sync_delivered: u64,
    /// Envelopes the `transport.drop` channel swallowed.
    pub dropped: u64,
    /// Envelopes held back by `transport.delay`.
    pub delayed: u64,
    /// Envelopes the `transport.dup` channel cloned.
    pub duplicated: u64,
    /// Envelopes jittered by `transport.reorder`.
    pub reordered: u64,
    /// Acks accepted (each closes one in-flight envelope).
    pub acked: u64,
    /// Re-sends of a query that still had an unacked envelope outstanding.
    pub retries: u64,
}

/// A copy of the sender's books for ledger assembly after a run.
#[derive(Debug, Clone, Default)]
pub struct SenderSnapshot {
    /// The counters above.
    pub stats: SenderStats,
    /// Envelopes still unacked when the run ended.
    pub in_flight: usize,
    /// Instants at which `transport.drop` swallowed an envelope — the raw
    /// series behind per-partition-window drop counts.
    pub drop_times: Vec<SimTime>,
}

/// The send-side channel abstraction.
pub trait Transport {
    /// Issue one release command for `id`. The generic event bound mirrors
    /// [`Dbms::release`]: async deliveries are scheduled as
    /// [`DbmsEvent::TransportDeliver`] through the world's event enum.
    fn send_release<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        id: QueryId,
    ) -> SendOutcome;

    /// An ack arrived for `(id, seq)`. Returns `true` if it closed an
    /// in-flight envelope (stale acks — a newer envelope is outstanding, or
    /// none is — return `false`).
    fn on_ack(&mut self, id: QueryId, seq: u64) -> bool;

    /// Hand any buffered release batch to the wire. Callers must invoke this
    /// at the end of every release-producing control action so a batch never
    /// straddles two events. No-op for unbatched transports (the default).
    fn flush<E: From<DbmsEvent>>(&mut self, _ctx: &mut Ctx<'_, E>) {}

    /// Adopt a new sender epoch (controller restart). Pre-restart in-flight
    /// envelopes are abandoned: the receiver fences them out, and restart
    /// reconciliation re-issues releases for whatever is still held.
    fn set_epoch(&mut self, epoch: u64);

    /// Ledger snapshot; `None` for transports with nothing to report.
    fn snapshot(&self) -> Option<SenderSnapshot>;
}

/// The perfect in-process channel: a direct call, no envelope, no state.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineTransport;

impl Transport for InlineTransport {
    fn send_release<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        id: QueryId,
    ) -> SendOutcome {
        // Same call order as the pre-transport scheduler: `release` first
        // (it polls the in-engine fault channels), then the held check.
        if dbms.release(ctx, id) {
            SendOutcome::Delivered
        } else if !dbms.patroller().is_held(id) {
            SendOutcome::Gone
        } else {
            SendOutcome::Failed
        }
    }

    fn on_ack(&mut self, _id: QueryId, _seq: u64) -> bool {
        false
    }

    fn set_epoch(&mut self, _epoch: u64) {}

    fn snapshot(&self) -> Option<SenderSnapshot> {
        None
    }
}

/// The unreliable channel: envelopes through the DES engine.
#[derive(Debug, Clone, Default)]
pub struct SimTransport {
    epoch: u64,
    next_seq: u64,
    /// Newest unacked envelope per query. A re-send supersedes the previous
    /// seq; acks for superseded seqs still resolve the query (the effect is
    /// applied — acks are only emitted on application).
    unacked: BTreeMap<QueryId, u64>,
    /// Releases per wire message; `1` is the classic one-envelope path.
    max_batch: u8,
    /// The batch under construction when `max_batch > 1`. Flushed by the
    /// scheduler at the end of each release-producing event, or eagerly when
    /// full.
    pending: Option<ReleaseBatch>,
    stats: SenderStats,
    drop_times: Vec<SimTime>,
}

impl SimTransport {
    /// Channel names, in poll order. Exactly one of the first three fires
    /// per send (drop ⊃ delay ⊃ reorder precedence); `transport.dup` rides
    /// on top of an otherwise-synchronous delivery. In batched mode each
    /// channel is polled once per *batch* — a batch is one wire message.
    pub const CHANNELS: [&'static str; 4] = [
        "transport.drop",
        "transport.delay",
        "transport.dup",
        "transport.reorder",
    ];

    /// A transport that packs up to `max_batch` releases per wire message.
    pub fn with_batching(max_batch: u8) -> Self {
        SimTransport {
            max_batch: max_batch.max(1),
            ..SimTransport::default()
        }
    }

    fn envelope(&mut self, id: QueryId, now: SimTime) -> ReleaseEnvelope {
        self.next_seq += 1;
        ReleaseEnvelope {
            epoch: self.epoch,
            seq: self.next_seq,
            id,
            sent_at: now,
        }
    }

    /// Batched-mode send: book the envelope and append it to the pending
    /// batch instead of putting it on the wire. The effect lands when the
    /// batch is flushed, so the caller always sees `InFlight` and resolves
    /// it through the batch ack.
    fn buffer_release<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        id: QueryId,
    ) -> SendOutcome {
        if !dbms.patroller().is_held(id) {
            self.unacked.remove(&id);
            return SendOutcome::Gone;
        }
        if self.pending.is_some_and(|b| b.is_full()) {
            self.flush_pending(ctx);
        }
        let env = self.envelope(id, ctx.now());
        self.stats.sent += 1;
        if self.unacked.insert(id, env.seq).is_some() {
            self.stats.retries += 1;
        }
        let batch = self
            .pending
            .get_or_insert_with(|| ReleaseBatch::new(env.epoch, env.seq, env.sent_at));
        let pushed = batch.push(id);
        debug_assert!(pushed, "pending batch was flushed when full");
        SendOutcome::InFlight
    }

    /// Put the pending batch on the wire as one message, polling each fault
    /// channel once. Healthy batches are scheduled at the current instant:
    /// delivery (and the ack) happens later in the same timestamp's event
    /// cascade, keeping one code path for every batch.
    fn flush_pending<E: From<DbmsEvent>>(&mut self, ctx: &mut Ctx<'_, E>) {
        let Some(batch) = self.pending.take() else {
            return;
        };
        if batch.is_empty() {
            return;
        }
        let n = u64::from(batch.len);
        if ctx.should_inject("transport.drop") {
            // Silent loss of the whole message: every carried release waits
            // for its ack timeout.
            self.stats.dropped += n;
            for _ in 0..batch.len {
                self.drop_times.push(ctx.now());
            }
            return;
        }
        if ctx.should_inject("transport.delay") {
            let delay = ctx
                .fault_delay("transport.delay")
                .unwrap_or_else(|| SimDuration::from_secs(2));
            self.stats.delayed += n;
            ctx.schedule_in(delay, DbmsEvent::TransportDeliverBatch(batch).into());
            return;
        }
        if ctx.should_inject("transport.reorder") {
            let jitter = ctx
                .fault_delay("transport.reorder")
                .unwrap_or_else(|| SimDuration::from_millis(500));
            self.stats.reordered += n;
            ctx.schedule_in(jitter, DbmsEvent::TransportDeliverBatch(batch).into());
            return;
        }
        if ctx.should_inject("transport.dup") {
            let lag = ctx
                .fault_delay("transport.dup")
                .unwrap_or_else(|| SimDuration::from_secs(1));
            self.stats.duplicated += n;
            ctx.schedule_in(lag, DbmsEvent::TransportDeliverBatch(batch).into());
        }
        ctx.schedule_in(
            SimDuration::ZERO,
            DbmsEvent::TransportDeliverBatch(batch).into(),
        );
    }
}

impl Transport for SimTransport {
    fn send_release<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        id: QueryId,
    ) -> SendOutcome {
        if self.max_batch > 1 {
            return self.buffer_release(ctx, dbms, id);
        }
        // A re-send for a query that already left the control table (the
        // effect landed but the ack did not) needs no envelope — and must
        // not advance any fault stream.
        if !dbms.patroller().is_held(id) {
            self.unacked.remove(&id);
            return SendOutcome::Gone;
        }
        let env = self.envelope(id, ctx.now());
        self.stats.sent += 1;
        if self.unacked.insert(id, env.seq).is_some() {
            self.stats.retries += 1;
        }
        if ctx.should_inject("transport.drop") {
            // Silent loss: the sender learns nothing until the ack times out.
            self.stats.dropped += 1;
            self.drop_times.push(ctx.now());
            return SendOutcome::InFlight;
        }
        if ctx.should_inject("transport.delay") {
            let delay = ctx
                .fault_delay("transport.delay")
                .unwrap_or_else(|| SimDuration::from_secs(2));
            self.stats.delayed += 1;
            ctx.schedule_in(delay, DbmsEvent::TransportDeliver(env).into());
            return SendOutcome::InFlight;
        }
        if ctx.should_inject("transport.reorder") {
            // A short jitter lets later sends overtake this one.
            let jitter = ctx
                .fault_delay("transport.reorder")
                .unwrap_or_else(|| SimDuration::from_millis(500));
            self.stats.reordered += 1;
            ctx.schedule_in(jitter, DbmsEvent::TransportDeliver(env).into());
            return SendOutcome::InFlight;
        }
        if ctx.should_inject("transport.dup") {
            // The primary copy arrives now; a clone arrives later and is
            // suppressed by the receiver's seq book.
            let lag = ctx
                .fault_delay("transport.dup")
                .unwrap_or_else(|| SimDuration::from_secs(1));
            self.stats.duplicated += 1;
            ctx.schedule_in(lag, DbmsEvent::TransportDeliver(env).into());
        }
        if dbms.deliver_release(ctx, env) {
            self.unacked.remove(&id);
            self.stats.sync_delivered += 1;
            SendOutcome::Delivered
        } else if !dbms.patroller().is_held(id) {
            self.unacked.remove(&id);
            SendOutcome::Gone
        } else {
            // The envelope arrived but the in-engine channel ate the
            // release; the seq is burnt, the next attempt sends a fresh one.
            self.unacked.remove(&id);
            SendOutcome::Failed
        }
    }

    fn on_ack(&mut self, id: QueryId, seq: u64) -> bool {
        match self.unacked.get(&id) {
            Some(&cur) if seq <= cur => {
                self.unacked.remove(&id);
                self.stats.acked += 1;
                true
            }
            _ => false,
        }
    }

    fn flush<E: From<DbmsEvent>>(&mut self, ctx: &mut Ctx<'_, E>) {
        self.flush_pending(ctx);
    }

    fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.unacked.clear();
        // A batch under construction belongs to the dead incarnation; the
        // receiver would fence it anyway.
        self.pending = None;
    }

    fn snapshot(&self) -> Option<SenderSnapshot> {
        Some(SenderSnapshot {
            stats: self.stats.clone(),
            in_flight: self.unacked.len(),
            drop_times: self.drop_times.clone(),
        })
    }
}

/// Statically-dispatched transport choice (the scheduler's field type), so
/// the inline path stays a direct call with no vtable between the control
/// loop and the engine. One instance lives per scheduler, so the size gap
/// between the zero-sized inline arm and the batching sim sender is moot.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ReleaseTransport {
    /// Direct call.
    Inline(InlineTransport),
    /// Enveloped through the DES engine.
    Sim(SimTransport),
}

impl ReleaseTransport {
    /// Build the transport an experiment config asks for.
    pub fn from_config(cfg: &TransportConfig) -> Self {
        match cfg.mode {
            TransportMode::Inline => ReleaseTransport::Inline(InlineTransport),
            TransportMode::Sim => ReleaseTransport::Sim(SimTransport::with_batching(cfg.max_batch)),
        }
    }
}

impl Transport for ReleaseTransport {
    fn send_release<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        id: QueryId,
    ) -> SendOutcome {
        match self {
            ReleaseTransport::Inline(t) => t.send_release(ctx, dbms, id),
            ReleaseTransport::Sim(t) => t.send_release(ctx, dbms, id),
        }
    }

    fn on_ack(&mut self, id: QueryId, seq: u64) -> bool {
        match self {
            ReleaseTransport::Inline(t) => t.on_ack(id, seq),
            ReleaseTransport::Sim(t) => t.on_ack(id, seq),
        }
    }

    fn flush<E: From<DbmsEvent>>(&mut self, ctx: &mut Ctx<'_, E>) {
        match self {
            ReleaseTransport::Inline(t) => t.flush(ctx),
            ReleaseTransport::Sim(t) => t.flush(ctx),
        }
    }

    fn set_epoch(&mut self, epoch: u64) {
        match self {
            ReleaseTransport::Inline(t) => t.set_epoch(epoch),
            ReleaseTransport::Sim(t) => t.set_epoch(epoch),
        }
    }

    fn snapshot(&self) -> Option<SenderSnapshot> {
        match self {
            ReleaseTransport::Inline(t) => t.snapshot(),
            ReleaseTransport::Sim(t) => t.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_reproduces_the_degradation_schedule() {
        // The shared policy must match the original hardcoded backoff:
        // base · 2^min(n, 16), capped.
        let p = RetryPolicy::default();
        assert_eq!(p.delay_for(0), SimDuration::from_millis(500));
        assert_eq!(p.delay_for(1), SimDuration::from_secs(1));
        assert_eq!(p.delay_for(6), SimDuration::from_secs(30), "capped");
        assert_eq!(p.delay_for(40), SimDuration::from_secs(30), "clamped");
    }

    #[test]
    fn retry_policy_rejects_degenerate_schedules() {
        assert!(RetryPolicy::default().validate().is_ok());
        let zero_base = RetryPolicy::new(SimDuration::ZERO, SimDuration::from_secs(1), 4);
        assert!(zero_base.validate().is_err());
        let cap_below_base =
            RetryPolicy::new(SimDuration::from_secs(2), SimDuration::from_secs(1), 4);
        assert!(cap_below_base.validate().is_err());
        let zero_budget =
            RetryPolicy::new(SimDuration::from_millis(100), SimDuration::from_secs(1), 0);
        assert!(zero_budget.validate().is_err());
    }

    #[test]
    fn acks_resolve_current_and_superseded_seqs_only() {
        let mut t = SimTransport::default();
        t.unacked.insert(QueryId(7), 5);
        assert!(!t.on_ack(QueryId(7), 6), "future seq is not ours");
        assert!(t.on_ack(QueryId(7), 5));
        assert!(!t.on_ack(QueryId(7), 5), "already resolved");
        t.unacked.insert(QueryId(9), 8);
        assert!(t.on_ack(QueryId(9), 3), "superseded seq still resolves");
    }

    #[test]
    fn epoch_change_abandons_in_flight_envelopes() {
        let mut t = SimTransport::default();
        t.unacked.insert(QueryId(7), 5);
        t.set_epoch(3);
        assert_eq!(t.snapshot().unwrap().in_flight, 0);
        assert_eq!(t.epoch, 3);
    }

    #[test]
    fn max_batch_knob_is_validated() {
        let mut cfg = TransportConfig::default();
        assert_eq!(cfg.max_batch, 1, "default is the unbatched wire");
        assert!(cfg.validate().is_ok());
        // 0 is what an absent field deserializes to; it means "unbatched".
        cfg.max_batch = 0;
        assert!(cfg.validate().is_ok());
        cfg.max_batch = (MAX_BATCH + 1) as u8;
        assert!(cfg.validate().is_err());
        cfg.max_batch = MAX_BATCH as u8;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn epoch_change_abandons_the_pending_batch() {
        let mut t = SimTransport::with_batching(4);
        let mut batch = ReleaseBatch::new(0, 1, SimTime::ZERO);
        batch.push(QueryId(7));
        t.pending = Some(batch);
        t.set_epoch(1);
        assert!(t.pending.is_none());
    }
}
