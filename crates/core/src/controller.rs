//! The controller interface experiments drive.
//!
//! A controller is the *policy* layer in front of the DBMS: it owns the
//! intercepted queries and decides when to release them. The experiment
//! world routes DBMS notices and controller timer events here.

use crate::checkpoint::{Checkpoint, RestartStats};
use qsched_dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use qsched_dbms::metrics::DegradationStats;
use qsched_dbms::query::QueryId;
use qsched_sim::Ctx;

/// Timer events owned by controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlEvent {
    /// A control interval ends: re-plan.
    ControlTick,
    /// Sample the DBMS snapshot monitor.
    SnapshotTick,
    /// Re-issue a release command that was lost in flight. `attempt` is the
    /// number of failures so far (drives the exponential backoff).
    RetryRelease {
        /// The query whose release is being retried.
        id: QueryId,
        /// Failed attempts so far.
        attempt: u32,
    },
    /// A transported release envelope was applied by the receiver; the ack
    /// travelled back over the (equally unreliable) reverse channel.
    ReleaseAcked {
        /// The released query.
        id: QueryId,
        /// Sequence number of the envelope that was applied.
        seq: u64,
    },
    /// A whole release batch was applied by the receiver (batched sim
    /// transport): one ack event covering every envelope in the batch.
    ReleaseBatchAcked(qsched_dbms::transport::ReleaseBatch),
    /// The global allocator of a sharded topology re-divided the fleet-wide
    /// cost budget: adopt this system cost limit for all future planning.
    /// The value rides as integer milli-timerons so the event stays
    /// `Copy + Eq` like every other event in the union.
    SetSystemLimit {
        /// The new system cost limit, in thousandths of a timeron.
        millitimerons: u64,
    },
}

impl CtrlEvent {
    /// Build a [`CtrlEvent::SetSystemLimit`] from a timeron value.
    pub fn set_system_limit(limit: qsched_dbms::cost::Timerons) -> Self {
        CtrlEvent::SetSystemLimit {
            millitimerons: (limit.get().max(0.0) * 1e3).round() as u64,
        }
    }

    /// Decode the limit carried by a [`CtrlEvent::SetSystemLimit`].
    pub fn decoded_limit(millitimerons: u64) -> qsched_dbms::cost::Timerons {
        qsched_dbms::cost::Timerons::new(millitimerons as f64 / 1e3)
    }
}

/// A workload-control policy. Generic over the enclosing world's event type
/// `E`, which must be able to carry both controller timers and DBMS events
/// (releases schedule engine work).
///
/// `Send` because the sharded orchestrator hands whole backend engines —
/// controller included — to pool workers between allocation barriers.
pub trait Controller<E: From<CtrlEvent> + From<DbmsEvent>>: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Called once at simulation start; schedule recurring timers here.
    fn start(&mut self, ctx: &mut Ctx<'_, E>, dbms: &mut Dbms);

    /// A DBMS notice arrived (interception, completion or rejection).
    /// Notices produced by controller-initiated engine actions (e.g.
    /// [`Dbms::reject`]) must be appended to `out` so the enclosing world
    /// can route them.
    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        out: &mut Vec<DbmsNotice>,
    );

    /// A controller timer fired. Side notices go to `out` as in
    /// [`Controller::on_notice`].
    fn on_event(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        ev: CtrlEvent,
        out: &mut Vec<DbmsNotice>,
    );

    /// The plan history, if this controller maintains one (Figure 7).
    fn plan_log(&self) -> Option<&crate::plan::PlanLog> {
        None
    }

    /// Degraded-mode counters, if this controller tracks them (merged with
    /// the engine-side counters in experiment reports).
    fn degradation_stats(&self) -> Option<DegradationStats> {
        None
    }

    /// Snapshot the durable state worth persisting across a crash. `None`
    /// (the default) means this controller is stateless — a crash loses
    /// nothing and [`Controller::restart_from`] is a no-op.
    fn checkpoint(&self, _now: qsched_sim::SimTime) -> Option<Checkpoint> {
        None
    }

    /// The controller process crashed and restarted: wipe all volatile
    /// state, restore what `ckpt` carries (or fall back to a cold start),
    /// and *reconcile* against the DBMS — the Patroller's control table is
    /// the authoritative record of blocked queries, and the engine knows
    /// which released queries are still executing. Implementations must
    /// leave the controller in a state where its usual timer events can
    /// simply keep arriving (the enclosing world does not re-run
    /// [`Controller::start`]). Side notices go to `out`. The default is a
    /// no-op for stateless controllers.
    fn restart_from(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _ckpt: Option<Checkpoint>,
        _out: &mut Vec<DbmsNotice>,
    ) -> RestartStats {
        RestartStats::default()
    }

    /// The controller's transport epoch (its restart incarnation number,
    /// stamped into every release envelope). The enclosing world fences the
    /// DBMS-side receiver to this epoch right after a restart, so commands
    /// from the dead incarnation are rejected. Stateless controllers stay
    /// in epoch 0 forever.
    fn transport_epoch(&self) -> u64 {
        0
    }

    /// Send-side transport books for the run report's resilience ledger.
    /// `None` (the default) means this controller releases over the perfect
    /// inline channel and has nothing to report.
    fn transport_stats(&self) -> Option<crate::transport::SenderSnapshot> {
        None
    }

    /// An operator (or scenario) re-ranked a service class mid-run: set its
    /// importance level for all *future* planning. Importance only enters
    /// the utility function at solve time, so implementations just update
    /// their class table; queries already released are unaffected. The
    /// default is a no-op for controllers without a class table.
    fn set_class_importance(&mut self, _class: qsched_dbms::query::ClassId, _importance: u8) {}

    /// Offered load this controller is currently managing: estimated cost
    /// executing under its released books plus cost queued for release, in
    /// timerons. The global allocator of a sharded topology polls this at
    /// every epoch boundary to re-divide the fleet budget. `None` (the
    /// default) means this controller does not account in cost and its
    /// backend is allocated by even split.
    fn offered_load(&self) -> Option<qsched_dbms::cost::Timerons> {
        None
    }

    /// The system cost limit this controller currently enforces. The fleet
    /// oracle reads it at every allocation barrier to check that a shard's
    /// applied limit always traces to a live lease or its declared
    /// fallback. `None` (the default) means this controller has no cost
    /// budget to trace.
    fn system_limit(&self) -> Option<qsched_dbms::cost::Timerons> {
        None
    }

    /// Invariant-oracle hook: cross-check this controller's books against
    /// the engine's state (queued ⊆ held, held rows reconciled against
    /// queues/retries, plan within budget…). Called at event boundaries when
    /// the oracle is enabled; must be read-only and consume no randomness.
    /// Controllers without internal books have nothing to check.
    fn oracle_audit(&self, _dbms: &Dbms) -> Result<(), String> {
        Ok(())
    }
}

/// A pass-through controller that releases everything immediately.
///
/// Useful as the identity element in tests: with interception enabled it
/// exercises the hold/release path with zero policy; with interception off
/// it never sees a notice.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReleaseAll;

impl<E: From<CtrlEvent> + From<DbmsEvent>> Controller<E> for ReleaseAll {
    fn name(&self) -> &'static str {
        "release-all"
    }

    fn start(&mut self, _ctx: &mut Ctx<'_, E>, _dbms: &mut Dbms) {}

    fn on_notice(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        dbms: &mut Dbms,
        notice: &DbmsNotice,
        _out: &mut Vec<DbmsNotice>,
    ) {
        if let DbmsNotice::Intercepted(row) = notice {
            let released = dbms.release(ctx, row.id);
            debug_assert!(released, "intercepted query must be releasable");
        }
    }

    fn on_event(
        &mut self,
        _ctx: &mut Ctx<'_, E>,
        _dbms: &mut Dbms,
        _ev: CtrlEvent,
        _out: &mut Vec<DbmsNotice>,
    ) {
    }
}
