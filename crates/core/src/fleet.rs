//! Fleet control-plane envelopes: the epoch-stamped messages exchanged
//! between the global allocator and its backend shards, plus the
//! allocator-side report book the bounded-staleness guard reads.
//!
//! The sharded orchestrator used to poll every shard's offered load
//! synchronously and apply `SetSystemLimit` directly at each epoch barrier —
//! an omniscient, immortal allocator. This module makes both directions of
//! that loop explicit wire messages:
//!
//! * **Up:** [`ShardReportMsg`] — a shard's load report. Besides the offered
//!   load it echoes the shard's *applied* system limit and the highest
//!   allocator epoch it has accepted, which is exactly what a cold-restarted
//!   allocator needs to reconstruct its warm-start lattice, its lease table
//!   and a safe new epoch purely from incoming reports.
//! * **Down:** [`LimitDirective`] — a granted allocation with a lease TTL,
//!   fenced at the shard by a [`LeaseReceiver`].
//!
//! Both are plain `Copy` values; constructing, dropping or delaying them
//! consumes no randomness, so a fault-free control plane is invisible in
//! every digest.
//!
//! [`LeaseReceiver`]: qsched_dbms::transport::LeaseReceiver

use qsched_dbms::cost::Timerons;
use qsched_dbms::transport::LeaseDirective;
use qsched_sim::{SimDuration, SimTime};

/// One shard's load report to the global allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardReportMsg {
    /// The reporting shard's index.
    pub shard: usize,
    /// Monotone per-shard report sequence number.
    pub seq: u64,
    /// Highest allocator epoch this shard has accepted (its lease fence).
    /// A restarted allocator sets its own epoch past the maximum echoed
    /// here, so its directives are never fenced as stale.
    pub epoch_seen: u64,
    /// Offered load: cost executing plus cost queued for release.
    pub offered: Timerons,
    /// The system cost limit the shard is actually running under — leased
    /// or autonomous fallback. Feeds warm-start reconstruction after an
    /// allocator crash.
    pub applied_limit: Timerons,
    /// When the shard handed the report to the transport.
    pub sent_at: SimTime,
}

/// A granted allocation on the wire, addressed to one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitDirective {
    /// The addressed shard's index.
    pub shard: usize,
    /// Allocator incarnation (see [`LeaseDirective::epoch`]).
    pub epoch: u64,
    /// Monotone sequence number (unique fleet-wide per epoch).
    pub seq: u64,
    /// The granted system cost limit.
    pub limit: Timerons,
    /// The lease runs out at this instant unless renewed.
    pub lease_until: SimTime,
    /// When the allocator handed the directive to the transport.
    pub sent_at: SimTime,
}

impl LimitDirective {
    /// The shard-side view of this directive (what the [`LeaseReceiver`]
    /// book admits).
    ///
    /// [`LeaseReceiver`]: qsched_dbms::transport::LeaseReceiver
    pub fn lease(&self) -> LeaseDirective {
        LeaseDirective {
            epoch: self.epoch,
            seq: self.seq,
            limit: self.limit,
            lease_until: self.lease_until,
            sent_at: self.sent_at,
        }
    }
}

/// The allocator-side report book: the last *received* report per shard and
/// when it arrived. The solve reads demand from here (not from a live poll),
/// so a dropped or delayed report simply leaves the previous entry in place
/// with a growing age — which the bounded-staleness guard turns into a hold.
#[derive(Debug, Clone)]
pub struct ReportBook {
    last: Vec<Option<(ShardReportMsg, SimTime)>>,
}

impl ReportBook {
    /// An empty book for an `n`-shard fleet (every shard unreported).
    pub fn new(n: usize) -> Self {
        ReportBook {
            last: vec![None; n],
        }
    }

    /// Record a delivered report. Out-of-order deliveries are resolved by
    /// sequence number: an older report never overwrites a newer one.
    pub fn record(&mut self, report: ShardReportMsg, received_at: SimTime) {
        let slot = &mut self.last[report.shard];
        if let Some((prev, _)) = slot {
            if prev.seq >= report.seq {
                return;
            }
        }
        *slot = Some((report, received_at));
    }

    /// Age of the *data* in shard `k`'s newest received report at `now`:
    /// time since the shard sent it, not since it arrived — a long-delayed
    /// report is stale the moment it lands (`None` = the shard has never
    /// reported into this book).
    pub fn staleness(&self, k: usize, now: SimTime) -> Option<SimDuration> {
        self.last[k].map(|(r, _)| now.saturating_since(r.sent_at))
    }

    /// Shard `k`'s last reported offered load.
    pub fn offered(&self, k: usize) -> Option<Timerons> {
        self.last[k].map(|(r, _)| r.offered)
    }

    /// Highest allocator epoch echoed by any received report (0 for an
    /// empty book). A restarting allocator resumes at this plus one.
    pub fn max_epoch_seen(&self) -> u64 {
        self.last
            .iter()
            .flatten()
            .map(|(r, _)| r.epoch_seen)
            .max()
            .unwrap_or(0)
    }

    /// Per-shard applied limits as reported (`None` for silent shards) —
    /// the input to warm-start reconstruction.
    pub fn applied_limits(&self) -> Vec<Option<Timerons>> {
        self.last
            .iter()
            .map(|s| s.map(|(r, _)| r.applied_limit))
            .collect()
    }

    /// Forget everything (an allocator crash loses the book with the
    /// process; the cold restart refills it from incoming reports).
    pub fn clear(&mut self) {
        self.last.iter_mut().for_each(|s| *s = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(shard: usize, seq: u64, epoch_seen: u64, offered: f64) -> ShardReportMsg {
        ShardReportMsg {
            shard,
            seq,
            epoch_seen,
            offered: Timerons::new(offered),
            applied_limit: Timerons::new(offered / 2.0),
            sent_at: SimTime::from_secs(10 * seq),
        }
    }

    #[test]
    fn book_tracks_the_newest_report_per_shard() {
        let mut book = ReportBook::new(2);
        assert_eq!(book.staleness(0, SimTime::from_secs(10)), None);
        book.record(report(0, 1, 1, 100.0), SimTime::from_secs(10));
        book.record(report(0, 2, 1, 200.0), SimTime::from_secs(20));
        // A delayed older report must not clobber the newer one.
        book.record(report(0, 1, 1, 100.0), SimTime::from_secs(25));
        assert_eq!(book.offered(0), Some(Timerons::new(200.0)));
        // Staleness is the age of the data: seq 2 was sent at t = 20 s.
        assert_eq!(
            book.staleness(0, SimTime::from_secs(50)),
            Some(SimDuration::from_secs(30))
        );
        assert_eq!(book.offered(1), None);
    }

    #[test]
    fn epoch_and_limits_feed_reconstruction() {
        let mut book = ReportBook::new(3);
        book.record(report(0, 1, 4, 100.0), SimTime::from_secs(5));
        book.record(report(2, 7, 6, 300.0), SimTime::from_secs(5));
        assert_eq!(book.max_epoch_seen(), 6);
        let limits = book.applied_limits();
        assert_eq!(limits[0], Some(Timerons::new(50.0)));
        assert_eq!(limits[1], None);
        assert_eq!(limits[2], Some(Timerons::new(150.0)));
        book.clear();
        assert_eq!(book.max_epoch_seen(), 0);
        assert!(book.applied_limits().iter().all(Option::is_none));
    }
}
