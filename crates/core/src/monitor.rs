//! The Monitor: per-control-interval performance measurement.
//!
//! OLAP classes are measured from the completion stream (mean query velocity
//! of queries finished during the interval). The OLTP class — invisible to
//! the interceptor — is measured by sampling the DBMS snapshot monitor at a
//! fixed interval and averaging the *fresh* per-client response-time samples
//! (§3.3).

use qsched_dbms::query::{ClassId, QueryKind, QueryRecord};
use qsched_dbms::snapshot::ClientSample;
use qsched_sim::stats::Welford;
use qsched_sim::SimTime;
use std::collections::BTreeMap;

/// Measurements of one class over one control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMeasurement {
    /// Mean query velocity of completions in the interval (OLAP classes).
    pub velocity: Option<f64>,
    /// Mean response time in seconds from snapshot samples (OLTP classes).
    pub response_secs: Option<f64>,
    /// Completions observed in the interval.
    pub completions: u64,
}

/// Accumulates measurements between control ticks.
#[derive(Debug, Clone)]
pub struct IntervalMonitor {
    velocity: BTreeMap<ClassId, Welford>,
    response: BTreeMap<ClassId, Welford>,
    completions: BTreeMap<ClassId, u64>,
    last_snapshot: SimTime,
}

impl IntervalMonitor {
    /// A monitor starting its first interval at `start`.
    pub fn new(start: SimTime) -> Self {
        IntervalMonitor {
            velocity: BTreeMap::new(),
            response: BTreeMap::new(),
            completions: BTreeMap::new(),
            last_snapshot: start,
        }
    }

    /// Feed one completed query (velocity measurement for OLAP classes).
    pub fn on_completed(&mut self, rec: &QueryRecord) {
        *self.completions.entry(rec.class).or_insert(0) += 1;
        if rec.kind == QueryKind::Olap {
            self.velocity
                .entry(rec.class)
                .or_default()
                .push(rec.velocity());
        }
    }

    /// Feed one snapshot read: `samples` as returned by the DBMS at `now`.
    /// Only samples that finished since the previous snapshot count (each
    /// completion must not be double-counted across reads).
    pub fn on_snapshot(&mut self, now: SimTime, samples: &[ClientSample]) {
        for s in samples {
            if s.kind == QueryKind::Oltp && s.finished_at >= self.last_snapshot {
                self.response
                    .entry(s.class)
                    .or_default()
                    .push(s.response_time.as_secs_f64());
            }
        }
        self.last_snapshot = now;
    }

    /// When the last snapshot was successfully read (staleness checks: a
    /// dropped snapshot leaves this unchanged).
    pub fn last_snapshot_time(&self) -> SimTime {
        self.last_snapshot
    }

    /// Close the interval: return per-class measurements and reset.
    pub fn end_interval(&mut self, classes: &[ClassId]) -> BTreeMap<ClassId, ClassMeasurement> {
        let mut out = BTreeMap::new();
        for &c in classes {
            let velocity = self
                .velocity
                .get(&c)
                .filter(|w| !w.is_empty())
                .map(Welford::mean);
            let response_secs = self
                .response
                .get(&c)
                .filter(|w| !w.is_empty())
                .map(Welford::mean);
            let completions = self.completions.get(&c).copied().unwrap_or(0);
            out.insert(
                c,
                ClassMeasurement {
                    velocity,
                    response_secs,
                    completions,
                },
            );
        }
        self.velocity.clear();
        self.response.clear();
        self.completions.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsched_dbms::query::{ClientId, QueryId};
    use qsched_dbms::Timerons;
    use qsched_sim::SimDuration;

    fn olap_rec(class: u16, submit: u64, admit: u64, finish: u64) -> QueryRecord {
        QueryRecord {
            id: QueryId(finish),
            client: ClientId(0),
            class: ClassId(class),
            kind: QueryKind::Olap,
            template: 0,
            estimated_cost: Timerons::new(1.0),
            submitted: SimTime::from_secs(submit),
            admitted: SimTime::from_secs(admit),
            finished: SimTime::from_secs(finish),
        }
    }

    fn sample(client: u32, class: u16, resp_ms: u64, finished_s: u64) -> ClientSample {
        ClientSample {
            client: ClientId(client),
            class: ClassId(class),
            kind: QueryKind::Oltp,
            execution_time: SimDuration::from_millis(resp_ms / 2),
            response_time: SimDuration::from_millis(resp_ms),
            finished_at: SimTime::from_secs(finished_s),
        }
    }

    #[test]
    fn velocity_is_mean_of_interval_completions() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        m.on_completed(&olap_rec(1, 0, 0, 10)); // velocity 1.0
        m.on_completed(&olap_rec(1, 0, 5, 10)); // velocity 0.5
        let out = m.end_interval(&[ClassId(1)]);
        let meas = out[&ClassId(1)];
        assert!((meas.velocity.unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(meas.completions, 2);
        // The next interval starts empty.
        let out = m.end_interval(&[ClassId(1)]);
        assert!(out[&ClassId(1)].velocity.is_none());
        assert_eq!(out[&ClassId(1)].completions, 0);
    }

    #[test]
    fn snapshot_samples_are_not_double_counted() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        let s1 = sample(1, 3, 100, 5);
        // First read at t=10 sees the sample (finished at 5 ≥ 0).
        m.on_snapshot(SimTime::from_secs(10), &[s1]);
        // Second read at t=20: the same register (finished at 5 < 10) is stale.
        m.on_snapshot(SimTime::from_secs(20), &[s1]);
        let out = m.end_interval(&[ClassId(3)]);
        let meas = out[&ClassId(3)];
        assert!((meas.response_secs.unwrap() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn mixed_classes_are_kept_separate() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        m.on_completed(&olap_rec(1, 0, 0, 10));
        m.on_completed(&olap_rec(2, 0, 8, 10));
        m.on_snapshot(SimTime::from_secs(10), &[sample(1, 3, 200, 5)]);
        let out = m.end_interval(&[ClassId(1), ClassId(2), ClassId(3)]);
        assert!((out[&ClassId(1)].velocity.unwrap() - 1.0).abs() < 1e-12);
        assert!((out[&ClassId(2)].velocity.unwrap() - 0.2).abs() < 1e-12);
        assert!(out[&ClassId(3)].velocity.is_none());
        assert!((out[&ClassId(3)].response_secs.unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_reports_none() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        let out = m.end_interval(&[ClassId(1), ClassId(3)]);
        assert!(out[&ClassId(1)].velocity.is_none());
        assert!(out[&ClassId(3)].response_secs.is_none());
    }
}
