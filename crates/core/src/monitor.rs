//! The Monitor: per-control-interval performance measurement.
//!
//! OLAP classes are measured from the completion stream (mean query velocity
//! of queries finished during the interval). The OLTP class — invisible to
//! the interceptor — is measured by sampling the DBMS snapshot monitor at a
//! fixed interval and averaging the *fresh* per-client response-time samples
//! (§3.3).

use qsched_dbms::query::{ClassId, QueryKind, QueryRecord};
use qsched_dbms::snapshot::ClientSample;
use qsched_sim::stats::Welford;
use qsched_sim::SimTime;
use std::collections::BTreeMap;

/// Measurements of one class over one control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMeasurement {
    /// Mean query velocity of completions in the interval (OLAP classes).
    pub velocity: Option<f64>,
    /// Mean response time in seconds from snapshot samples (OLTP classes).
    pub response_secs: Option<f64>,
    /// Completions observed in the interval.
    pub completions: u64,
}

/// Per-class running aggregates for the current interval.
#[derive(Debug, Clone, Default)]
struct ClassSlot {
    velocity: Welford,
    response: Welford,
    completions: u64,
}

impl ClassSlot {
    fn measurement(&self) -> ClassMeasurement {
        ClassMeasurement {
            velocity: (!self.velocity.is_empty()).then(|| self.velocity.mean()),
            response_secs: (!self.response.is_empty()).then(|| self.response.mean()),
            completions: self.completions,
        }
    }

    fn reset(&mut self) {
        self.velocity.reset();
        self.response.reset();
        self.completions = 0;
    }
}

/// Accumulates measurements between control ticks.
///
/// Aggregates are updated incrementally per completion/snapshot into a
/// sorted per-class slot vector that is *reset in place* at each interval
/// boundary, so the steady-state measurement path is O(active classes) per
/// interval with no allocation (slots are only allocated the first time a
/// class is observed).
#[derive(Debug, Clone)]
pub struct IntervalMonitor {
    /// Per-class aggregates, sorted by class for O(log n) lookup.
    slots: Vec<(ClassId, ClassSlot)>,
    last_snapshot: SimTime,
}

impl IntervalMonitor {
    /// A monitor starting its first interval at `start`.
    pub fn new(start: SimTime) -> Self {
        IntervalMonitor {
            slots: Vec::new(),
            last_snapshot: start,
        }
    }

    fn slot_mut(&mut self, class: ClassId) -> &mut ClassSlot {
        let i = match self.slots.binary_search_by_key(&class, |&(c, _)| c) {
            Ok(i) => i,
            Err(i) => {
                self.slots.insert(i, (class, ClassSlot::default()));
                i
            }
        };
        &mut self.slots[i].1
    }

    fn slot(&self, class: ClassId) -> Option<&ClassSlot> {
        self.slots
            .binary_search_by_key(&class, |&(c, _)| c)
            .ok()
            .map(|i| &self.slots[i].1)
    }

    /// Feed one completed query (velocity measurement for OLAP classes).
    pub fn on_completed(&mut self, rec: &QueryRecord) {
        let velocity = rec.velocity();
        let slot = self.slot_mut(rec.class);
        slot.completions += 1;
        if rec.kind == QueryKind::Olap {
            slot.velocity.push(velocity);
        }
    }

    /// Feed one snapshot read: `samples` as returned by the DBMS at `now`.
    /// Only samples that finished since the previous snapshot count (each
    /// completion must not be double-counted across reads).
    pub fn on_snapshot(&mut self, now: SimTime, samples: &[ClientSample]) {
        for s in samples {
            if s.kind == QueryKind::Oltp && s.finished_at >= self.last_snapshot {
                self.slot_mut(s.class)
                    .response
                    .push(s.response_time.as_secs_f64());
            }
        }
        self.last_snapshot = now;
    }

    /// When the last snapshot was successfully read (staleness checks: a
    /// dropped snapshot leaves this unchanged).
    pub fn last_snapshot_time(&self) -> SimTime {
        self.last_snapshot
    }

    /// Close the interval: push per-class measurements (in `classes` order)
    /// into a caller-owned buffer, then reset every slot in place. The
    /// allocation-free path for the scheduler's replan loop.
    pub fn end_interval_into(
        &mut self,
        classes: &[ClassId],
        out: &mut Vec<(ClassId, ClassMeasurement)>,
    ) {
        out.clear();
        for &c in classes {
            let m = self
                .slot(c)
                .map_or_else(ClassSlot::default_measurement, ClassSlot::measurement);
            out.push((c, m));
        }
        for (_, slot) in &mut self.slots {
            slot.reset();
        }
    }

    /// Close the interval: return per-class measurements and reset.
    pub fn end_interval(&mut self, classes: &[ClassId]) -> BTreeMap<ClassId, ClassMeasurement> {
        let mut buf = Vec::with_capacity(classes.len());
        self.end_interval_into(classes, &mut buf);
        buf.into_iter().collect()
    }
}

impl ClassSlot {
    fn default_measurement() -> ClassMeasurement {
        ClassMeasurement {
            velocity: None,
            response_secs: None,
            completions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsched_dbms::query::{ClientId, QueryId};
    use qsched_dbms::Timerons;
    use qsched_sim::SimDuration;

    fn olap_rec(class: u16, submit: u64, admit: u64, finish: u64) -> QueryRecord {
        QueryRecord {
            id: QueryId(finish),
            client: ClientId(0),
            class: ClassId(class),
            kind: QueryKind::Olap,
            template: 0,
            estimated_cost: Timerons::new(1.0),
            submitted: SimTime::from_secs(submit),
            admitted: SimTime::from_secs(admit),
            finished: SimTime::from_secs(finish),
        }
    }

    fn sample(client: u32, class: u16, resp_ms: u64, finished_s: u64) -> ClientSample {
        ClientSample {
            client: ClientId(client),
            class: ClassId(class),
            kind: QueryKind::Oltp,
            execution_time: SimDuration::from_millis(resp_ms / 2),
            response_time: SimDuration::from_millis(resp_ms),
            finished_at: SimTime::from_secs(finished_s),
        }
    }

    #[test]
    fn velocity_is_mean_of_interval_completions() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        m.on_completed(&olap_rec(1, 0, 0, 10)); // velocity 1.0
        m.on_completed(&olap_rec(1, 0, 5, 10)); // velocity 0.5
        let out = m.end_interval(&[ClassId(1)]);
        let meas = out[&ClassId(1)];
        assert!((meas.velocity.unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(meas.completions, 2);
        // The next interval starts empty.
        let out = m.end_interval(&[ClassId(1)]);
        assert!(out[&ClassId(1)].velocity.is_none());
        assert_eq!(out[&ClassId(1)].completions, 0);
    }

    #[test]
    fn snapshot_samples_are_not_double_counted() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        let s1 = sample(1, 3, 100, 5);
        // First read at t=10 sees the sample (finished at 5 ≥ 0).
        m.on_snapshot(SimTime::from_secs(10), &[s1]);
        // Second read at t=20: the same register (finished at 5 < 10) is stale.
        m.on_snapshot(SimTime::from_secs(20), &[s1]);
        let out = m.end_interval(&[ClassId(3)]);
        let meas = out[&ClassId(3)];
        assert!((meas.response_secs.unwrap() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn mixed_classes_are_kept_separate() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        m.on_completed(&olap_rec(1, 0, 0, 10));
        m.on_completed(&olap_rec(2, 0, 8, 10));
        m.on_snapshot(SimTime::from_secs(10), &[sample(1, 3, 200, 5)]);
        let out = m.end_interval(&[ClassId(1), ClassId(2), ClassId(3)]);
        assert!((out[&ClassId(1)].velocity.unwrap() - 1.0).abs() < 1e-12);
        assert!((out[&ClassId(2)].velocity.unwrap() - 0.2).abs() < 1e-12);
        assert!(out[&ClassId(3)].velocity.is_none());
        assert!((out[&ClassId(3)].response_secs.unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_reports_none() {
        let mut m = IntervalMonitor::new(SimTime::ZERO);
        let out = m.end_interval(&[ClassId(1), ClassId(3)]);
        assert!(out[&ClassId(1)].velocity.is_none());
        assert!(out[&ClassId(3)].response_secs.is_none());
    }
}
