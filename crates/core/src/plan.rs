//! Scheduling plans: per-class cost-limit vectors, and their history.
//!
//! "A scheduling plan is … expressed as a set of class cost limits, which
//! determine the number of queries of each class that can execute at any one
//! time. … The sum of all class cost limits must not exceed the system cost
//! limit" (§2).

use qsched_dbms::query::ClassId;
use qsched_dbms::Timerons;
use qsched_sim::stats::Series;
use qsched_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A scheduling plan: one cost limit per controlled class.
///
/// ```
/// use qsched_core::plan::Plan;
/// use qsched_dbms::query::ClassId;
/// use qsched_dbms::Timerons;
///
/// let plan = Plan::even_split(&[ClassId(1), ClassId(2), ClassId(3)], Timerons::new(30_000.0));
/// assert_eq!(plan.limit(ClassId(2)).unwrap().get(), 10_000.0);
/// assert!(plan.respects(Timerons::new(30_000.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    limits: Vec<(ClassId, Timerons)>,
}

impl Plan {
    /// Build a plan from `(class, limit)` pairs, normalising to class order.
    ///
    /// # Panics
    /// Panics on duplicate classes or an empty plan.
    pub fn new(mut limits: Vec<(ClassId, Timerons)>) -> Self {
        assert!(!limits.is_empty(), "a plan needs at least one class");
        limits.sort_by_key(|&(c, _)| c);
        for w in limits.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate class {} in plan", w[0].0);
        }
        Plan { limits }
    }

    /// An even split of `system_limit` across `classes`.
    pub fn even_split(classes: &[ClassId], system_limit: Timerons) -> Self {
        assert!(!classes.is_empty(), "a plan needs at least one class");
        let share = system_limit / classes.len() as f64;
        Plan::new(classes.iter().map(|&c| (c, share)).collect())
    }

    /// The `(class, limit)` pairs in class order.
    pub fn limits(&self) -> &[(ClassId, Timerons)] {
        &self.limits
    }

    /// The limit for `class`, if the plan covers it.
    pub fn limit(&self, class: ClassId) -> Option<Timerons> {
        self.limits
            .binary_search_by_key(&class, |&(c, _)| c)
            .ok()
            .map(|i| self.limits[i].1)
    }

    /// Sum of all class limits.
    pub fn total(&self) -> Timerons {
        self.limits.iter().map(|&(_, l)| l).sum()
    }

    /// Classes covered by this plan, in order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.limits.iter().map(|&(c, _)| c)
    }

    /// Sum of limits over classes satisfying `pred` (e.g. the OLAP total
    /// that drives the OLTP model).
    pub fn total_where(&self, mut pred: impl FnMut(ClassId) -> bool) -> Timerons {
        self.limits
            .iter()
            .filter(|&&(c, _)| pred(c))
            .map(|&(_, l)| l)
            .sum()
    }

    /// Check `Σ limits ≤ system_limit` (with a small tolerance).
    pub fn respects(&self, system_limit: Timerons) -> bool {
        self.total().get() <= system_limit.get() * (1.0 + 1e-9)
    }

    /// Overwrite this plan's limits with the matching classes' limits from
    /// `source`, which may cover a superset of classes. In place, so a
    /// steady-state caller (the scheduler's dispatch sub-plan) reuses one
    /// allocation across control intervals.
    ///
    /// # Panics
    /// Panics if `source` lacks one of this plan's classes.
    pub fn copy_limits_from(&mut self, source: &Plan) {
        for (c, l) in &mut self.limits {
            *l = source
                .limit(*c)
                .unwrap_or_else(|| panic!("source plan lacks {c}"));
        }
    }
}

/// Time-stamped history of plans — the data behind the paper's Figure 7.
#[derive(Debug, Clone)]
pub struct PlanLog {
    series: Vec<(ClassId, Series)>,
}

impl PlanLog {
    /// A log for the classes of `initial`, seeded with the initial plan.
    pub fn new(initial: &Plan, at: SimTime) -> Self {
        let mut log = PlanLog {
            series: initial
                .classes()
                .map(|c| (c, Series::new(format!("cost_limit_{c}"))))
                .collect(),
        };
        log.record(initial, at);
        log
    }

    /// Append a plan at `at`.
    pub fn record(&mut self, plan: &Plan, at: SimTime) {
        for (class, series) in &mut self.series {
            if let Some(l) = plan.limit(*class) {
                series.force_push(at, l.get());
            }
        }
    }

    /// The recorded series for `class`.
    pub fn series(&self, class: ClassId) -> Option<&Series> {
        self.series
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| s)
    }

    /// All `(class, series)` pairs.
    pub fn all(&self) -> &[(ClassId, Series)] {
        &self.series
    }

    /// Mean limit of `class` over `[from, to)`.
    pub fn mean_limit_in(&self, class: ClassId, from: SimTime, to: SimTime) -> Option<f64> {
        self.series(class)?.mean_in(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pairs: &[(u16, f64)]) -> Plan {
        Plan::new(
            pairs
                .iter()
                .map(|&(c, l)| (ClassId(c), Timerons::new(l)))
                .collect(),
        )
    }

    #[test]
    fn lookup_and_total() {
        let plan = p(&[(2, 10.0), (1, 20.0), (3, 5.0)]);
        assert_eq!(plan.limit(ClassId(1)).unwrap().get(), 20.0);
        assert_eq!(plan.limit(ClassId(9)), None);
        assert_eq!(plan.total().get(), 35.0);
        let order: Vec<u16> = plan.classes().map(|c| c.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn even_split_sums_to_system_limit() {
        let plan = Plan::even_split(
            &[ClassId(1), ClassId(2), ClassId(3)],
            Timerons::new(30_000.0),
        );
        assert!((plan.total().get() - 30_000.0).abs() < 1e-6);
        assert!(plan.respects(Timerons::new(30_000.0)));
        assert!(!plan.respects(Timerons::new(29_000.0)));
    }

    #[test]
    fn total_where_filters() {
        let plan = p(&[(1, 10.0), (2, 20.0), (3, 30.0)]);
        let olap = plan.total_where(|c| c.0 != 3);
        assert_eq!(olap.get(), 30.0);
    }

    #[test]
    fn plan_log_records_trajectories() {
        let p0 = p(&[(1, 10.0), (2, 20.0)]);
        let mut log = PlanLog::new(&p0, SimTime::ZERO);
        log.record(&p(&[(1, 15.0), (2, 15.0)]), SimTime::from_secs(60));
        log.record(&p(&[(1, 25.0), (2, 5.0)]), SimTime::from_secs(120));
        let s1 = log.series(ClassId(1)).unwrap();
        assert_eq!(s1.len(), 3);
        assert_eq!(s1.last_value(), Some(25.0));
        let mean = log
            .mean_limit_in(ClassId(1), SimTime::ZERO, SimTime::from_secs(121))
            .unwrap();
        assert!((mean - (10.0 + 15.0 + 25.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let _ = p(&[(1, 10.0), (1, 20.0)]);
    }
}
