//! Property-based tests of the control plane: solver feasibility, utility
//! monotonicity, and dispatcher budget conservation.

use proptest::prelude::*;
use qsched_core::class::Goal;
use qsched_core::dispatch::Dispatcher;
use qsched_core::model::{OlapVelocityModel, OltpLinearModel};
use qsched_core::plan::Plan;
use qsched_core::queue::ClassQueues;
use qsched_core::solver::{
    project_to_simplex, ClassState, GridSolver, HillClimbSolver, MarginalSolver, PlanProblem,
    ProportionalSolver, Solver,
};
use qsched_core::utility::{GoalUtility, UtilityFn};
use qsched_dbms::query::{ClassId, ClientId, QueryId, QueryKind, QueryRecord};
use qsched_dbms::Timerons;
use qsched_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Build the paper's 3-class problem from arbitrary measurements.
fn problem_fixture(
    v1: f64,
    v2: f64,
    t3: f64,
    slope: f64,
) -> (BTreeMap<ClassId, OlapVelocityModel>, OltpLinearModel) {
    let mut olap_models = BTreeMap::new();
    for (id, v) in [(1u16, v1), (2, v2)] {
        let mut m = OlapVelocityModel::new(Timerons::new(10_000.0));
        m.observe(Some(v), Timerons::new(10_000.0));
        olap_models.insert(ClassId(id), m);
    }
    let mut oltp = OltpLinearModel::new(slope, 1.0, Timerons::new(20_000.0));
    oltp.observe(Some(t3), Timerons::new(20_000.0));
    (olap_models, oltp)
}

fn classes() -> Vec<ClassState> {
    vec![
        ClassState {
            class: ClassId(1),
            kind: QueryKind::Olap,
            importance: 1,
            goal: Goal::VelocityAtLeast(0.4),
            current_limit: Timerons::new(10_000.0),
        },
        ClassState {
            class: ClassId(2),
            kind: QueryKind::Olap,
            importance: 2,
            goal: Goal::VelocityAtLeast(0.6),
            current_limit: Timerons::new(10_000.0),
        },
        ClassState {
            class: ClassId(3),
            kind: QueryKind::Oltp,
            importance: 3,
            goal: Goal::AvgResponseAtMost(SimDuration::from_millis(250)),
            current_limit: Timerons::new(10_000.0),
        },
    ]
}

/// Shared body for the solver feasibility/dominance property: checked both
/// against generated cases and against the recorded regression inputs in
/// `proptests.proptest-regressions` (which the offline harness does not
/// replay automatically).
fn check_solvers_feasible_and_grid_dominates(v1: f64, v2: f64, t3: f64, slope: f64) {
    let (olap_models, oltp_model) = problem_fixture(v1, v2, t3, slope);
    let utility = GoalUtility::default();
    let class_states = classes();
    let problem = PlanProblem {
        system_limit: Timerons::new(30_000.0),
        floor: Timerons::new(600.0),
        classes: &class_states,
        olap_models: &olap_models,
        oltp_model: &oltp_model,
        utility: &utility,
    };
    let eval =
        |plan: &Plan| problem.evaluate(&plan.limits().iter().map(|&(_, l)| l).collect::<Vec<_>>());
    for solver in [
        Box::new(GridSolver::default()) as Box<dyn Solver>,
        Box::new(MarginalSolver::default()),
        Box::new(HillClimbSolver::default()),
        Box::new(ProportionalSolver),
    ] {
        let plan = solver.solve(&problem);
        assert!(
            (plan.total().get() - 30_000.0).abs() < 1.0,
            "{} plan sums to {}",
            solver.name(),
            plan.total().get()
        );
        for &(c, l) in plan.limits() {
            assert!(l.get() >= 600.0 - 1e-6, "{} starves {c}", solver.name());
        }
    }
    // The grid optimum is exact only up to the grid step: the naive
    // point may fall between grid points, and with importance² utility
    // slopes of ~1e-4 per timeron a ~470-timeron step can cost ~0.1
    // utility. Allow exactly that one-cell slack.
    let grid = GridSolver::default().solve(&problem);
    let naive = ProportionalSolver.solve(&problem);
    assert!(
        eval(&grid) >= eval(&naive) - 0.1,
        "grid ({}) must dominate proportional ({}) up to one grid cell",
        eval(&grid),
        eval(&naive)
    );
}

/// Replay the shrunk failure cases recorded in `proptests.proptest-regressions`.
#[test]
fn solver_dominance_regressions() {
    check_solvers_feasible_and_grid_dominates(
        0.9330752626072307,
        0.6164416380298252,
        1.9499868904922415,
        2.87249975990947e-5,
    );
    check_solvers_feasible_and_grid_dominates(
        0.7924242799738612,
        0.6216637107663762,
        1.0585480663818032,
        3.8651401198726e-5,
    );
}

proptest! {
    /// Every solver returns a feasible plan (sums to the system limit,
    /// respects the floor) for arbitrary measurements, and the grid solver
    /// is never worse than the naive proportional split.
    #[test]
    fn solvers_always_feasible_and_grid_dominates_naive(
        v1 in 0.01f64..1.0,
        v2 in 0.01f64..1.0,
        t3 in 0.01f64..2.0,
        slope in 0.0f64..5e-5,
    ) {
        check_solvers_feasible_and_grid_dominates(v1, v2, t3, slope);
    }

    /// Utility is monotone in achievement for every importance level.
    #[test]
    fn utility_monotone(imp in 1u8..6, a in 0.0f64..5.0, delta in 0.0f64..1.0) {
        let u = GoalUtility::default();
        prop_assert!(u.utility(imp, a + delta) >= u.utility(imp, a) - 1e-12);
    }

    /// Simplex projection always lands on the simplex and preserves order.
    #[test]
    fn projection_feasible_and_order_preserving(
        xs in prop::collection::vec(0.0f64..50_000.0, 1..8),
        total in 10_000.0f64..100_000.0,
    ) {
        let floor = total / (xs.len() as f64) / 10.0;
        let v: Vec<Timerons> = xs.iter().map(|&x| Timerons::new(x)).collect();
        let p = project_to_simplex(&v, Timerons::new(total), Timerons::new(floor));
        let sum: f64 = p.iter().map(|t| t.get()).sum();
        prop_assert!((sum - total).abs() < 1e-6 * total, "sum {sum} vs {total}");
        for t in &p {
            prop_assert!(t.get() >= floor - 1e-9);
        }
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] {
                    prop_assert!(p[i].get() >= p[j].get() - 1e-9, "order inverted");
                }
            }
        }
    }

    /// Projecting twice is the same as projecting once: the projection's
    /// image is inside the feasible simplex, and points already on the
    /// simplex are (approximately) fixed.
    #[test]
    fn projection_is_idempotent(
        xs in prop::collection::vec(0.0f64..50_000.0, 1..8),
        total in 10_000.0f64..100_000.0,
    ) {
        let floor = total / (xs.len() as f64) / 10.0;
        let v: Vec<Timerons> = xs.iter().map(|&x| Timerons::new(x)).collect();
        let once = project_to_simplex(&v, Timerons::new(total), Timerons::new(floor));
        let twice = project_to_simplex(&once, Timerons::new(total), Timerons::new(floor));
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!(
                (a.get() - b.get()).abs() < 1e-6 * total,
                "re-projection moved {} -> {}",
                a.get(),
                b.get()
            );
        }
    }

    /// Permutation equivariance: projecting a shuffled vector equals
    /// shuffling the projection — no coordinate is privileged.
    #[test]
    fn projection_is_permutation_equivariant(
        xs in prop::collection::vec(0.0f64..50_000.0, 2..8),
        total in 10_000.0f64..100_000.0,
        rot in 1usize..8,
    ) {
        let n = xs.len();
        let rot = rot % n;
        let floor = total / (n as f64) / 10.0;
        let v: Vec<Timerons> = xs.iter().map(|&x| Timerons::new(x)).collect();
        let p = project_to_simplex(&v, Timerons::new(total), Timerons::new(floor));
        // Rotate the input, project, rotate the result back.
        let rotated: Vec<Timerons> = (0..n).map(|i| v[(i + rot) % n]).collect();
        let pr = project_to_simplex(&rotated, Timerons::new(total), Timerons::new(floor));
        for i in 0..n {
            let direct = p[(i + rot) % n].get();
            let via = pr[i].get();
            prop_assert!(
                (direct - via).abs() < 1e-9 * total,
                "coordinate {i}: {direct} vs {via} after rotation {rot}"
            );
        }
    }

    /// The dispatcher's executing cost never exceeds the class limit unless
    /// the oversize-when-idle guard released a single oversize head, and
    /// draining all completions returns it to exactly zero.
    #[test]
    fn dispatcher_budget_conservation(
        costs in prop::collection::vec(1.0f64..20_000.0, 1..60),
        limit in 1_000.0f64..20_000.0,
    ) {
        let class = ClassId(1);
        let plan = Plan::new(vec![(class, Timerons::new(limit))]);
        let mut d = Dispatcher::new(&plan);
        let mut q = ClassQueues::new();
        let mut running: Vec<(QueryId, f64)> = Vec::new();
        let mut next_complete = 0usize;
        for (i, &cost) in costs.iter().enumerate() {
            q.enqueue(class, QueryId(i as u64), Timerons::new(cost));
            let released = d.on_enqueued(class, &mut q);
            for (c, id) in released {
                prop_assert_eq!(c, class);
                running.push((id, costs[id.0 as usize]));
            }
            let exec = d.executing_cost(class).get();
            let count = d.executing_count(class);
            // Either within the limit, or a single oversize query is alone.
            prop_assert!(
                exec <= limit + 1e-6 || (count == 1 && running.last().is_some_and(|&(_, c)| c > limit)),
                "executing {exec} exceeds limit {limit} with {count} running"
            );
            // Complete one query every other step (FIFO order).
            if i % 2 == 1 && next_complete < running.len() {
                let (id, cost) = running[next_complete];
                next_complete += 1;
                let rec = QueryRecord {
                    id,
                    client: ClientId(0),
                    class,
                    kind: QueryKind::Olap,
                    template: 0,
                    estimated_cost: Timerons::new(cost),
                    submitted: SimTime::ZERO,
                    admitted: SimTime::ZERO,
                    finished: SimTime::ZERO,
                };
                for (c, rid) in d.on_completed(&rec, &mut q) {
                    prop_assert_eq!(c, class);
                    running.push((rid, costs[rid.0 as usize]));
                }
            }
        }
        // Drain everything.
        let mut guard = 0;
        while next_complete < running.len() {
            let (id, cost) = running[next_complete];
            next_complete += 1;
            let rec = QueryRecord {
                id,
                client: ClientId(0),
                class,
                kind: QueryKind::Olap,
                template: 0,
                estimated_cost: Timerons::new(cost),
                submitted: SimTime::ZERO,
                admitted: SimTime::ZERO,
                finished: SimTime::ZERO,
            };
            for (_, rid) in d.on_completed(&rec, &mut q) {
                running.push((rid, costs[rid.0 as usize]));
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain loop diverged");
        }
        prop_assert_eq!(running.len(), costs.len(), "every enqueued query was released");
        prop_assert_eq!(d.executing_count(class), 0);
        prop_assert_eq!(d.executing_cost(class), Timerons::ZERO);
        prop_assert!(q.is_empty());
    }

    /// The OLAP model prediction is always a valid velocity, and the OLTP
    /// prediction is always a non-negative response time.
    #[test]
    fn model_predictions_stay_in_range(
        v in 0.0f64..1.0,
        base in 1.0f64..40_000.0,
        cand in 0.0f64..60_000.0,
        t in 0.0f64..5.0,
        slope in 0.0f64..1e-3,
    ) {
        let mut m = OlapVelocityModel::new(Timerons::new(base));
        m.observe(Some(v), Timerons::new(base));
        let pred = m.predict(Timerons::new(cand));
        prop_assert!((0.0..=1.0).contains(&pred), "velocity prediction {pred}");

        let mut o = OltpLinearModel::new(slope, 1.0, Timerons::new(base));
        o.observe(Some(t), Timerons::new(base));
        prop_assert!(o.predict(Timerons::new(cand)) >= 0.0);
    }
}
