//! Solver equivalence swarm: the `MarginalSolver` is proven against the
//! exhaustive `GridSolver` (the executable spec) on seeded random problems
//! where the grid is feasible, and against `HillClimbSolver` where it isn't.

use qsched_core::probgen::GenProblem;
use qsched_core::solver::{GridSolver, HillClimbSolver, MarginalSolver, PlanProblem, Solver};
use qsched_dbms::Timerons;

fn utility_of(p: &PlanProblem<'_>, plan: &qsched_core::plan::Plan) -> f64 {
    p.evaluate(&plan.limits().iter().map(|&(_, l)| l).collect::<Vec<_>>())
}

fn assert_feasible(p: &PlanProblem<'_>, plan: &qsched_core::plan::Plan, who: &str, seed: u64) {
    let total = plan.total().get();
    assert!(
        (total - p.system_limit.get()).abs() < 1.0,
        "{who} seed {seed}: plan sums to {total}"
    );
    for &(c, l) in plan.limits() {
        assert!(
            l.get() >= p.floor.get() - 1e-6,
            "{who} seed {seed}: {c} below floor ({l:?})"
        );
    }
}

/// The worth of one grid step at the grid optimum: the largest utility
/// change from moving a single budget unit between any class pair. The
/// ISSUE's equivalence criterion — "within one grid step" — made concrete.
fn one_step_worth(p: &PlanProblem<'_>, plan: &qsched_core::plan::Plan, steps: u32) -> f64 {
    let base: Vec<Timerons> = plan.limits().iter().map(|&(_, l)| l).collect();
    let u0 = p.evaluate(&base);
    let step = (p.system_limit.get() - p.floor.get() * base.len() as f64) / f64::from(steps);
    let mut worst: f64 = 0.0;
    for i in 0..base.len() {
        for j in 0..base.len() {
            if i == j || base[j].get() - step < p.floor.get() - 1e-9 {
                continue;
            }
            let mut x = base.clone();
            x[i] = Timerons::new(x[i].get() + step);
            x[j] = Timerons::new(x[j].get() - step);
            worst = worst.max((p.evaluate(&x) - u0).abs());
        }
    }
    worst
}

/// At grid-feasible class counts the marginal solver must match the grid
/// optimum — the objective is separable and the OLAP utilities are concave,
/// so water-filling plus the OLTP pool scan is exact on the lattice. The
/// assertion allows one grid step's worth of slack (the ISSUE's criterion);
/// in practice the gap is zero.
#[test]
fn marginal_matches_grid_within_one_step_at_small_n() {
    let grid = GridSolver::default();
    let marginal = MarginalSolver::default();
    let mut worst_gap = 0.0f64;
    for n in 2..=4usize {
        for with_oltp in [false, true] {
            for seed in 0..40u64 {
                let gen = GenProblem::generate(n, with_oltp, 1000 * n as u64 + seed);
                let p = gen.problem();
                let g = grid.solve(&p);
                let m = marginal.solve(&p);
                assert_feasible(&p, &m, "marginal", seed);
                let (gu, mu) = (utility_of(&p, &g), utility_of(&p, &m));
                let slack = one_step_worth(&p, &g, grid.steps).max(1e-6);
                assert!(
                    mu >= gu - slack,
                    "n={n} oltp={with_oltp} seed {seed}: marginal {mu} more than one \
                     grid step ({slack}) below grid {gu}"
                );
                worst_gap = worst_gap.max(gu - mu);
            }
        }
    }
    // The strong form of the equivalence: the gap never exceeds float noise.
    assert!(
        worst_gap < 1e-6,
        "marginal fell {worst_gap} below the grid optimum somewhere"
    );
}

/// Past the grid's feasibility horizon the yardstick is the hill climber:
/// the marginal solver must dominate it in aggregate and never trail by a
/// meaningful margin on any instance (the lattice-exact solution can only
/// trail the continuous local search by sub-step rounding).
#[test]
fn marginal_beats_hill_climb_at_large_n() {
    let marginal = MarginalSolver::default();
    let hill = HillClimbSolver::default();
    let mut marg_total = 0.0;
    let mut hill_total = 0.0;
    let mut wins = 0usize;
    let mut cases = 0usize;
    for n in [8usize, 16, 32] {
        for seed in 0..30u64 {
            let gen = GenProblem::generate(n, true, 7000 * n as u64 + seed);
            let p = gen.problem();
            let m = marginal.solve(&p);
            let h = hill.solve(&p);
            assert_feasible(&p, &m, "marginal", seed);
            let (mu, hu) = (utility_of(&p, &m), utility_of(&p, &h));
            assert!(
                mu >= hu - 0.1,
                "n={n} seed {seed}: marginal {mu} far below hill climb {hu}"
            );
            marg_total += mu;
            hill_total += hu;
            wins += usize::from(mu >= hu - 1e-9);
            cases += 1;
        }
    }
    assert!(
        marg_total > hill_total,
        "marginal total {marg_total} does not beat hill climb total {hill_total}"
    );
    assert!(
        wins * 10 >= cases * 9,
        "marginal only matched-or-beat hill climb on {wins}/{cases} instances"
    );
}

/// Warm starting must not change what the solver converges to: solving the
/// same problem from a perturbed incumbent lands on the same utility.
#[test]
fn marginal_result_is_warm_start_independent() {
    for seed in 0..20u64 {
        let mut gen = GenProblem::generate(12, true, 31 + seed);
        let a = {
            let p = gen.problem();
            let plan = MarginalSolver::default().solve(&p);
            utility_of(&p, &plan)
        };
        // Rotate the incumbent limits between classes: same budget, very
        // different warm start.
        let limits: Vec<Timerons> = gen.classes.iter().map(|c| c.current_limit).collect();
        let k = gen.classes.len();
        for (i, c) in gen.classes.iter_mut().enumerate() {
            c.current_limit = limits[(i + 1) % k];
        }
        let b = {
            let p = gen.problem();
            let plan = MarginalSolver::default().solve(&p);
            utility_of(&p, &plan)
        };
        assert!(
            (a - b).abs() < 1e-6,
            "seed {seed}: warm start changed the solution ({a} vs {b})"
        );
    }
}
