//! Property-based tests of the DBMS substrate: the weighted
//! processor-sharing CPU conserves work, the disk array never overcommits,
//! and whole-engine runs complete every submitted query exactly once.

use proptest::prelude::*;
use qsched_dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use qsched_dbms::patroller::InterceptPolicy;
use qsched_dbms::query::{ClassId, ClientId, ExecShape, Query, QueryId, QueryKind};
use qsched_dbms::resource::{DiskArray, PsCpu};
use qsched_dbms::{DbmsConfig, Timerons};
use qsched_sim::{Ctx, Engine, SimDuration, SimTime, World};

proptest! {
    /// Weighted PS conserves work: running any job set to completion
    /// delivers exactly the total submitted core-seconds.
    #[test]
    fn ps_cpu_conserves_work(
        jobs in prop::collection::vec((1.0f64..20.0, 1u64..5_000), 1..40),
        cores in 1u32..8,
    ) {
        let mut cpu: PsCpu<usize> = PsCpu::new(cores, SimTime::ZERO);
        let mut total_ms = 0u64;
        for (i, &(w, ms)) in jobs.iter().enumerate() {
            cpu.add_weighted(i, w, SimDuration::from_millis(ms));
            total_ms += ms;
        }
        let mut done = Vec::new();
        let mut guard = 0;
        while !cpu.is_empty() {
            let next = cpu.next_completion().expect("busy CPU has a completion");
            cpu.advance(next);
            cpu.take_finished(&mut done);
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop diverged");
        }
        prop_assert_eq!(done.len(), jobs.len());
        let delivered = cpu.delivered_core_seconds();
        let expected = total_ms as f64 / 1e3;
        prop_assert!(
            (delivered - expected).abs() < 1e-3 * (1.0 + expected),
            "delivered {delivered} vs submitted {expected}"
        );
    }

    /// Under weighted PS, heavier-weight jobs of equal size never finish
    /// after lighter ones that arrived together.
    #[test]
    fn ps_cpu_weight_orders_equal_jobs(w_light in 1.0f64..5.0, extra in 0.1f64..10.0) {
        let mut cpu: PsCpu<u8> = PsCpu::new(2, SimTime::ZERO);
        cpu.add_weighted(0, w_light, SimDuration::from_secs(1));
        cpu.add_weighted(1, w_light + extra, SimDuration::from_secs(1));
        let mut done = Vec::new();
        let next = cpu.next_completion().unwrap();
        cpu.advance(next);
        cpu.take_finished(&mut done);
        prop_assert!(done.contains(&1), "the heavier job must finish first, got {done:?}");
    }

    /// The disk array serves at most `n` bursts concurrently and completes
    /// exactly as many bursts as were requested.
    #[test]
    fn disk_array_never_overcommits(
        services in prop::collection::vec(1u64..100, 1..100),
        n_disks in 1u32..20,
    ) {
        let mut d: DiskArray<usize> = DiskArray::new(n_disks);
        let mut pending: Vec<(usize, SimTime)> = Vec::new();
        let mut completed = 0usize;
        let mut now = SimTime::ZERO;
        for (i, &svc) in services.iter().enumerate() {
            prop_assert!(d.busy() <= n_disks as usize);
            if let Some(end) = d.request(now, i, SimDuration::from_millis(svc)) {
                pending.push((i, end));
            }
            // Complete the earliest pending burst half the time.
            if i % 2 == 0 && !pending.is_empty() {
                pending.sort_by_key(|&(_, t)| t);
                let (_, end) = pending.remove(0);
                now = now.max(end);
                completed += 1;
                if let Some((id, t)) = d.complete(now) {
                    pending.push((id, t));
                }
            }
        }
        while !pending.is_empty() {
            pending.sort_by_key(|&(_, t)| t);
            let (_, end) = pending.remove(0);
            now = now.max(end);
            completed += 1;
            if let Some((id, t)) = d.complete(now) {
                pending.push((id, t));
            }
        }
        prop_assert_eq!(completed, services.len());
        prop_assert_eq!(d.busy(), 0);
        prop_assert_eq!(d.queued(), 0);
    }

    /// Timeron arithmetic: sums are order-independent up to float tolerance,
    /// and saturating subtraction never goes negative.
    #[test]
    fn timeron_arithmetic(xs in prop::collection::vec(0.0f64..1e6, 1..50), y in 0.0f64..1e6) {
        let fwd: Timerons = xs.iter().map(|&v| Timerons::new(v)).sum();
        let rev: Timerons = xs.iter().rev().map(|&v| Timerons::new(v)).sum();
        prop_assert!((fwd.get() - rev.get()).abs() < 1e-6 * (1.0 + fwd.get()));
        let a = Timerons::new(y);
        prop_assert!(a.saturating_sub(fwd).get() >= 0.0);
        prop_assert!(fwd.saturating_sub(a).get() >= 0.0);
    }
}

/// Whole-engine property: every submitted query completes exactly once, with
/// a consistent lifecycle, regardless of the (arbitrary) mix of shapes.
#[derive(Default)]
struct Sink {
    dbms: Option<Dbms>,
    completed: Vec<QueryId>,
    to_submit: Vec<Query>,
}

enum Ev {
    Kick,
    Db(DbmsEvent),
}

impl From<DbmsEvent> for Ev {
    fn from(e: DbmsEvent) -> Self {
        Ev::Db(e)
    }
}

impl World for Sink {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let mut dbms = self.dbms.take().expect("dbms present");
        let mut out = Vec::new();
        match ev {
            Ev::Kick => {
                for q in self.to_submit.drain(..) {
                    dbms.submit(ctx, q, &mut out);
                }
            }
            Ev::Db(e) => dbms.handle(ctx, e, &mut out),
        }
        for n in out {
            match n {
                DbmsNotice::Completed(rec) => {
                    assert!(rec.finished >= rec.admitted);
                    assert!(rec.admitted >= rec.submitted);
                    self.completed.push(rec.id);
                }
                DbmsNotice::Intercepted(row) => {
                    // Not intercepting in this test world.
                    panic!("unexpected interception of {:?}", row.id);
                }
                DbmsNotice::Rejected(row) => {
                    panic!("unexpected rejection of {:?}", row.id);
                }
                DbmsNotice::Starved(row) => {
                    panic!("unexpected starvation release of {:?}", row.id);
                }
            }
        }
        self.dbms = Some(dbms);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn engine_completes_every_query_once(
        specs in prop::collection::vec(
            (1u64..2_000, 0u64..2_000, 1u32..8, 1.0f64..10.0),
            1..30,
        ),
    ) {
        let queries: Vec<Query> = specs
            .iter()
            .enumerate()
            .map(|(i, &(cpu_ms, io_ms, cycles, weight))| Query {
                id: QueryId(i as u64),
                client: ClientId(i as u32),
                class: ClassId(1),
                kind: if cpu_ms > io_ms { QueryKind::Oltp } else { QueryKind::Olap },
                template: 0,
                estimated_cost: Timerons::new(100.0),
                true_cost: Timerons::new(100.0),
                shape: ExecShape::new(
                    SimDuration::from_millis(cpu_ms),
                    SimDuration::from_millis(io_ms),
                    cycles,
                )
                .with_weight(weight),
            })
            .collect();
        let n = queries.len();
        let dbms = Dbms::new(DbmsConfig::default(), InterceptPolicy::intercept_none(), SimTime::ZERO);
        let mut engine = Engine::new(Sink { dbms: Some(dbms), completed: Vec::new(), to_submit: queries });
        engine.schedule_at(SimTime::ZERO, Ev::Kick);
        engine.run();
        let world = engine.into_world();
        prop_assert_eq!(world.completed.len(), n, "every query completes");
        let mut ids: Vec<u64> = world.completed.iter().map(|q| q.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "no query completes twice");
        let dbms = world.dbms.expect("dbms");
        prop_assert_eq!(dbms.executing_count(), 0);
        prop_assert!(dbms.admitted_true_cost().abs() < 1e-6);
    }
}

proptest! {
    /// The release receiver's dedup/epoch book is idempotent under
    /// arbitrary duplication and reordering: across any interleaving of
    /// deliveries and epoch fences, each distinct `(epoch, seq)` envelope
    /// is admitted `Fresh` at most once, everything beneath the fence is
    /// `Stale`, the per-bucket accounting always sums to `received`, and
    /// replaying the entire delivery history afterwards admits nothing.
    /// Each op tuple is `(kind, envelope index, fence epoch)`: kind 0 is an
    /// epoch fence (a controller restart), anything else delivers.
    #[test]
    fn release_receiver_dedup_is_idempotent(
        ops in prop::collection::vec((0u64..6, 0usize..16, 0u64..5), 1..200),
    ) {
        use qsched_dbms::{Admit, ReleaseEnvelope, ReleaseReceiver};
        // 16 distinct envelopes over 4 epochs; ids repeat across epochs the
        // way a retried release re-sends the same query under a fresh seq.
        let pool: Vec<ReleaseEnvelope> = (0..16u64)
            .map(|k| ReleaseEnvelope {
                epoch: k / 4,
                seq: k,
                id: QueryId(k % 8),
                sent_at: SimTime::ZERO,
            })
            .collect();
        let mut rx = ReleaseReceiver::default();
        let mut min_epoch = 0u64;
        let mut fresh_seen = std::collections::HashSet::new();
        let mut applied_ids = std::collections::HashSet::new();
        for (step, &(kind, k, fence)) in ops.iter().enumerate() {
            let now = SimTime::ZERO + SimDuration::from_secs(step as u64 + 1);
            if kind == 0 {
                rx.observe_epoch(fence);
                min_epoch = min_epoch.max(fence);
            } else {
                let env = pool[k];
                let expect = if env.epoch < min_epoch {
                    Admit::Stale
                } else if fresh_seen.contains(&k) {
                    Admit::Duplicate
                } else {
                    Admit::Fresh
                };
                prop_assert_eq!(rx.admit(&env), expect, "step {}: {:?}", step, env);
                if expect == Admit::Fresh {
                    fresh_seen.insert(k);
                    // First delivery for a query id applies the release; a
                    // re-sent seq for the same id finds the query gone.
                    let applies = applied_ids.insert(env.id);
                    rx.note_outcome(&env, now, applies);
                }
            }
        }
        prop_assert_eq!(rx.min_epoch(), min_epoch);
        // Replaying every delivery the receiver ever saw admits nothing:
        // the book is idempotent whatever the network re-offers.
        for &(kind, k, _) in &ops {
            if kind != 0 {
                let env = pool[k];
                let verdict = rx.admit(&env);
                prop_assert!(
                    verdict == Admit::Duplicate || verdict == Admit::Stale,
                    "replayed {:?} admitted as {:?}",
                    env,
                    verdict
                );
            }
        }
        let s = rx.stats();
        prop_assert_eq!(s.double_applied, 0);
        prop_assert_eq!(
            s.applied + s.admitted_noop + s.deduped + s.stale_rejected,
            s.received,
            "every envelope lands in exactly one bucket: {:?}",
            s
        );
    }

    /// The shard-side lease book is idempotent under arbitrary duplication,
    /// reordering and stale-epoch replay, interleaved with TTL expiries:
    /// each distinct `(epoch, seq)` directive arms the lease `Fresh` at most
    /// once, every directive beneath the fence is `Stale`, an expired lease
    /// is never resurrected by anything but a `Fresh` directive, expiry
    /// fires exactly once per lapse, the stats buckets always sum to
    /// `received`, and replaying the entire delivery history afterwards
    /// admits nothing and leaves the lease state (armed, expired, fence)
    /// untouched. Each op tuple is `(kind, directive index, fence epoch)`:
    /// kind 0 fences (an allocator restart observed out-of-band), kind 1
    /// runs the TTL clock, anything else delivers a directive.
    #[test]
    fn lease_receiver_fencing_is_idempotent(
        ops in prop::collection::vec((0u64..8, 0usize..16, 0u64..5), 1..200),
    ) {
        use qsched_dbms::transport::{Admit, LeaseDirective, LeaseReceiver, LeaseState};
        // 16 distinct directives over 4 allocator incarnations, with TTLs
        // short enough that the advancing per-step clock lapses them.
        let pool: Vec<LeaseDirective> = (0..16u64)
            .map(|k| LeaseDirective {
                epoch: k / 4,
                seq: k,
                limit: Timerons::new(100.0 + k as f64),
                lease_until: SimTime::from_secs((k % 7 + 1) * 20),
                sent_at: SimTime::ZERO,
            })
            .collect();
        let mut rx = LeaseReceiver::default();
        let mut min_epoch = 0u64;
        let mut fresh_seen = std::collections::HashSet::new();
        let mut lease: Option<LeaseState> = None;
        let mut expired = false;
        let mut expiries = 0u64;
        for (step, &(kind, k, fence)) in ops.iter().enumerate() {
            let now = SimTime::from_secs(step as u64 + 1);
            if kind == 0 {
                rx.observe_epoch(fence);
                min_epoch = min_epoch.max(fence);
            } else if kind == 1 {
                let lapse_due = lease
                    .filter(|_| !expired)
                    .filter(|l| now >= l.lease_until);
                let lapsed = rx.expire_due(now);
                prop_assert_eq!(lapsed, lapse_due, "step {}: expiry verdict", step);
                if lapse_due.is_some() {
                    expired = true;
                    expiries += 1;
                }
            } else {
                let d = pool[k];
                let expect = if d.epoch < min_epoch {
                    Admit::Stale
                } else if fresh_seen.contains(&k) {
                    Admit::Duplicate
                } else {
                    Admit::Fresh
                };
                prop_assert_eq!(rx.admit(&d), expect, "step {}: {:?}", step, d);
                if expect == Admit::Fresh {
                    fresh_seen.insert(k);
                    min_epoch = min_epoch.max(d.epoch);
                    lease = Some(LeaseState {
                        limit: d.limit,
                        lease_until: d.lease_until,
                        epoch: d.epoch,
                    });
                    expired = false;
                } else {
                    // A duplicate or stale directive changes no lease state:
                    // in particular it never resurrects an expired lease.
                    prop_assert_eq!(rx.is_expired(), expired, "step {}", step);
                    prop_assert_eq!(rx.lease().copied(), lease, "step {}", step);
                }
            }
        }
        prop_assert_eq!(rx.min_epoch(), min_epoch);
        prop_assert_eq!(rx.is_expired(), expired);
        prop_assert_eq!(rx.lease().copied(), lease);
        // Replaying every directive the receiver ever saw admits nothing
        // and leaves the whole lease state machine untouched — whatever the
        // network re-offers, an expired shard stays in fallback until a
        // genuinely fresh grant arrives.
        for &(kind, k, _) in &ops {
            if kind > 1 {
                let d = pool[k];
                let verdict = rx.admit(&d);
                prop_assert!(
                    verdict == Admit::Duplicate || verdict == Admit::Stale,
                    "replayed {:?} admitted as {:?}",
                    d,
                    verdict
                );
                prop_assert_eq!(rx.is_expired(), expired, "replay resurrected the lease");
                prop_assert_eq!(rx.lease().copied(), lease);
            }
        }
        let s = rx.stats();
        prop_assert_eq!(s.expiries, expiries);
        prop_assert_eq!(
            s.renewed + s.deduped + s.stale_rejected,
            s.received,
            "every directive lands in exactly one bucket: {:?}",
            s
        );
    }
}
