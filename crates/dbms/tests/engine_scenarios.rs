//! Scenario tests of the engine: agent-pool pressure, runtime interception
//! policy changes, snapshot overhead, and saturation recovery.

use qsched_dbms::engine::{Dbms, DbmsEvent, DbmsNotice};
use qsched_dbms::patroller::InterceptPolicy;
use qsched_dbms::query::{ClassId, ClientId, ExecShape, Query, QueryId, QueryKind, QueryRecord};
use qsched_dbms::{DbmsConfig, Timerons};
use qsched_sim::{Ctx, Engine, SimDuration, SimTime, World};

/// A scriptable world: submissions at given instants, optional auto-release,
/// optional periodic snapshots.
struct Script {
    dbms: Dbms,
    submissions: Vec<(SimTime, Query)>,
    auto_release: bool,
    snapshot_every: Option<SimDuration>,
    completed: Vec<(SimTime, QueryRecord)>,
    intercepted: u64,
    snapshots_taken: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Kick,
    Snapshot,
    Db(DbmsEvent),
}

impl From<DbmsEvent> for Ev {
    fn from(e: DbmsEvent) -> Self {
        Ev::Db(e)
    }
}

impl World for Script {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let mut out = Vec::new();
        match ev {
            Ev::Kick => {
                let now = ctx.now();
                let due: Vec<Query> = {
                    let mut due = Vec::new();
                    self.submissions.retain(|(t, q)| {
                        if *t == now {
                            due.push(q.clone());
                            false
                        } else {
                            true
                        }
                    });
                    due
                };
                for q in due {
                    self.dbms.submit(ctx, q, &mut out);
                }
            }
            Ev::Snapshot => {
                let _ = self.dbms.take_snapshot(ctx);
                self.snapshots_taken += 1;
                if let Some(gap) = self.snapshot_every {
                    ctx.schedule_in(gap, Ev::Snapshot);
                }
            }
            Ev::Db(e) => self.dbms.handle(ctx, e, &mut out),
        }
        for n in out {
            match n {
                DbmsNotice::Intercepted(row) => {
                    self.intercepted += 1;
                    if self.auto_release {
                        self.dbms.release(ctx, row.id);
                    }
                }
                DbmsNotice::Completed(rec) => self.completed.push((ctx.now(), rec)),
                DbmsNotice::Rejected(_) | DbmsNotice::Starved(_) => {}
            }
        }
    }
}

fn query(id: u64, cpu_ms: u64, io_ms: u64) -> Query {
    Query {
        id: QueryId(id),
        client: ClientId(id as u32),
        class: ClassId(1),
        kind: QueryKind::Olap,
        template: 0,
        estimated_cost: Timerons::new(100.0),
        true_cost: Timerons::new(100.0),
        shape: ExecShape::new(
            SimDuration::from_millis(cpu_ms),
            SimDuration::from_millis(io_ms),
            1,
        ),
    }
}

fn run(
    cfg: DbmsConfig,
    policy: InterceptPolicy,
    submissions: Vec<(SimTime, Query)>,
    auto_release: bool,
    snapshot_every: Option<SimDuration>,
    horizon: SimTime,
) -> Script {
    let kicks: Vec<SimTime> = submissions.iter().map(|(t, _)| *t).collect();
    let mut e = Engine::new(Script {
        dbms: Dbms::new(cfg, policy, SimTime::ZERO),
        submissions,
        auto_release,
        snapshot_every,
        completed: Vec::new(),
        intercepted: 0,
        snapshots_taken: 0,
    });
    for t in kicks {
        e.schedule_at(t, Ev::Kick);
    }
    if snapshot_every.is_some() {
        e.schedule_at(SimTime::ZERO, Ev::Snapshot);
    }
    e.run_until(horizon);
    e.into_world()
}

#[test]
fn agent_pool_exhaustion_serialises_admissions() {
    // Two agents, four identical CPU-only queries: the engine admits two,
    // queues two at the pool, and hands agents over as work finishes.
    let cfg = DbmsConfig {
        agents: 2,
        ..DbmsConfig::default()
    };
    let subs = (0..4).map(|i| (SimTime::ZERO, query(i, 1000, 0))).collect();
    let w = run(
        cfg,
        InterceptPolicy::intercept_none(),
        subs,
        false,
        None,
        SimTime::from_secs(60),
    );
    assert_eq!(w.completed.len(), 4, "everything completes eventually");
    // With 2 cores and only 2 admitted at a time, each pair takes 1 s:
    // completions at ~1 s and ~2 s, not all at once.
    let first = w.completed[0].0;
    let last = w.completed[3].0;
    assert!(last.saturating_since(first) >= SimDuration::from_millis(900));
}

#[test]
fn intercept_policy_can_change_at_runtime() {
    // First query intercepted (and never released); then interception is
    // turned off and a second query flows straight through.
    struct Flip {
        dbms: Dbms,
        phase: u8,
        completed: u64,
        held: u64,
    }
    #[derive(Clone, Copy)]
    enum FEv {
        SubmitFirst,
        FlipAndSubmitSecond,
        Db(DbmsEvent),
    }
    impl From<DbmsEvent> for FEv {
        fn from(e: DbmsEvent) -> Self {
            FEv::Db(e)
        }
    }
    impl World for Flip {
        type Event = FEv;
        fn handle(&mut self, ctx: &mut Ctx<'_, FEv>, ev: FEv) {
            let mut out = Vec::new();
            match ev {
                FEv::SubmitFirst => {
                    self.dbms.submit(ctx, query(1, 100, 0), &mut out);
                    self.phase = 1;
                }
                FEv::FlipAndSubmitSecond => {
                    self.dbms
                        .set_intercept_policy(InterceptPolicy::intercept_none());
                    self.dbms.submit(ctx, query(2, 100, 0), &mut out);
                    self.phase = 2;
                }
                FEv::Db(e) => self.dbms.handle(ctx, e, &mut out),
            }
            for n in out {
                match n {
                    DbmsNotice::Intercepted(_) => self.held += 1,
                    DbmsNotice::Completed(_) => self.completed += 1,
                    DbmsNotice::Rejected(_) | DbmsNotice::Starved(_) => {}
                }
            }
        }
    }
    let mut e = Engine::new(Flip {
        dbms: Dbms::new(
            DbmsConfig::default(),
            InterceptPolicy::intercept_all(),
            SimTime::ZERO,
        ),
        phase: 0,
        completed: 0,
        held: 0,
    });
    e.schedule_at(SimTime::ZERO, FEv::SubmitFirst);
    e.schedule_at(SimTime::from_secs(10), FEv::FlipAndSubmitSecond);
    e.run_until(SimTime::from_secs(60));
    let w = e.world();
    assert_eq!(w.held, 1, "the first query was intercepted");
    assert_eq!(w.completed, 1, "only the post-flip query completed");
    assert_eq!(
        e.world().dbms.patroller().held_count(),
        1,
        "the first is still held"
    );
}

#[test]
fn snapshot_sampling_consumes_cpu() {
    // Identical workloads; one run samples the snapshot monitor very
    // aggressively with an exaggerated per-client cost. The monitored run's
    // queries must finish later.
    // Five quick queries populate the snapshot registry (5 client
    // registers), then the measured batch arrives at t=1 s.
    let mk_subs = || {
        let mut subs: Vec<(SimTime, Query)> = (0..5)
            .map(|i| (SimTime::ZERO, query(100 + i, 10, 0)))
            .collect();
        subs.extend((0..8).map(|i| (SimTime::from_secs(1), query(i, 2_000, 0))));
        subs
    };
    let quiet = run(
        DbmsConfig::default(),
        InterceptPolicy::intercept_none(),
        mk_subs(),
        false,
        None,
        SimTime::from_secs(300),
    );
    let noisy_cfg = DbmsConfig {
        snapshot_cpu_per_client: SimDuration::from_millis(50),
        ..DbmsConfig::default()
    };
    let noisy = run(
        noisy_cfg,
        InterceptPolicy::intercept_none(),
        mk_subs(),
        false,
        Some(SimDuration::from_millis(200)),
        SimTime::from_secs(300),
    );
    assert!(noisy.snapshots_taken > 100);
    let end = |w: &Script| w.completed.last().expect("completions").0;
    assert!(
        end(&noisy) > end(&quiet),
        "snapshot overhead must slow the workload: {:?} vs {:?}",
        end(&noisy),
        end(&quiet)
    );
}

#[test]
fn saturation_recovers_when_load_drains() {
    // A burst far past the knee thrashes; a later identical query runs at
    // full speed again.
    let mut subs = Vec::new();
    for i in 0..4 {
        let mut q = query(i, 500, 0);
        q.true_cost = Timerons::new(20_000.0); // 80 K total: deep overload
        subs.push((SimTime::ZERO, q));
    }
    subs.push((SimTime::from_secs(120), query(99, 500, 0)));
    let w = run(
        DbmsConfig::default(),
        InterceptPolicy::intercept_none(),
        subs,
        false,
        None,
        SimTime::from_secs(300),
    );
    assert_eq!(w.completed.len(), 5);
    let late = w
        .completed
        .iter()
        .find(|(_, r)| r.id == QueryId(99))
        .expect("late query completed");
    // Alone on an idle machine: exactly its solo time (0.5 s CPU, 1 core).
    assert_eq!(late.1.execution_time(), SimDuration::from_millis(500));
    // The burst queries, by contrast, were slowed by thrashing.
    let burst = w
        .completed
        .iter()
        .find(|(_, r)| r.id == QueryId(0))
        .unwrap();
    assert!(burst.1.execution_time() > SimDuration::from_millis(800));
}

#[test]
fn interception_bypass_only_affects_listed_classes() {
    let policy = InterceptPolicy::intercept_all().with_bypass(ClassId(3));
    let mut q_olap = query(1, 50, 0);
    q_olap.class = ClassId(1);
    let mut q_oltp = query(2, 50, 0);
    q_oltp.class = ClassId(3);
    q_oltp.kind = QueryKind::Oltp;
    let w = run(
        DbmsConfig::default(),
        policy,
        vec![(SimTime::ZERO, q_olap), (SimTime::ZERO, q_oltp)],
        true,
        None,
        SimTime::from_secs(60),
    );
    assert_eq!(w.intercepted, 1, "only the OLAP query is intercepted");
    assert_eq!(w.completed.len(), 2);
    let oltp = w
        .completed
        .iter()
        .find(|(_, r)| r.class == ClassId(3))
        .unwrap();
    assert_eq!(oltp.1.held_time(), SimDuration::ZERO);
    let olap = w
        .completed
        .iter()
        .find(|(_, r)| r.class == ClassId(1))
        .unwrap();
    assert!(olap.1.held_time() > SimDuration::ZERO);
}

#[test]
fn buffer_pool_contention_slows_concurrent_io() {
    use qsched_dbms::bufferpool::BufferPoolConfig;
    // Eight I/O-heavy queries; a tiny pool forces misses when they overlap.
    let mk_subs = || {
        (0..8)
            .map(|i| {
                let mut q = query(i, 0, 1_000);
                q.true_cost = Timerons::new(4_000.0);
                (SimTime::ZERO, q)
            })
            .collect::<Vec<_>>()
    };
    let roomy = run(
        DbmsConfig::default(),
        InterceptPolicy::intercept_none(),
        mk_subs(),
        false,
        None,
        SimTime::from_secs(600),
    );
    let tight_cfg = DbmsConfig {
        buffer_pool: Some(BufferPoolConfig {
            pages: 2_000.0,
            pages_per_io_timeron: 1.0,
            miss_penalty: 3.0,
        }),
        ..DbmsConfig::default()
    };
    let tight = run(
        tight_cfg,
        InterceptPolicy::intercept_none(),
        mk_subs(),
        false,
        None,
        SimTime::from_secs(600),
    );
    assert_eq!(roomy.completed.len(), 8);
    assert_eq!(tight.completed.len(), 8);
    let end = |w: &Script| w.completed.last().unwrap().0;
    assert!(
        end(&tight) > end(&roomy).checked_add(SimDuration::from_secs(1)).unwrap(),
        "buffer-pool misses must stretch the I/O phase: {:?} vs {:?}",
        end(&tight),
        end(&roomy)
    );
    // A lone query (pool released) runs at full speed even in the tight run:
    // the *last* finisher ran partly alone, so its exec is shorter than the
    // run's makespan would suggest — just assert nothing hangs.
}

#[test]
fn default_config_has_no_buffer_pool_and_is_unchanged() {
    // Regression guard: enabling the feature must be strictly opt-in.
    let cfg = DbmsConfig::default();
    assert!(cfg.buffer_pool.is_none());
    let subs = vec![(SimTime::ZERO, query(1, 100, 200))];
    let w = run(
        cfg,
        InterceptPolicy::intercept_none(),
        subs,
        false,
        None,
        SimTime::from_secs(60),
    );
    assert_eq!(
        w.completed[0].1.execution_time(),
        SimDuration::from_millis(300),
        "solo execution must equal the calibrated solo time"
    );
}

#[test]
fn lock_list_contention_slows_concurrent_oltp_only() {
    use qsched_dbms::locklist::LockListConfig;
    // 30 concurrent OLTP transactions overflow a 1 000-entry list
    // (30 × 60 = 1 800 locks); an OLAP query in the same run is untouched.
    let mk_subs = || {
        let mut subs: Vec<(SimTime, Query)> = (0..30)
            .map(|i| {
                let mut q = query(i, 50, 0);
                q.kind = QueryKind::Oltp;
                q.true_cost = Timerons::new(60.0);
                (SimTime::ZERO, q)
            })
            .collect();
        let mut olap = query(99, 0, 500);
        olap.true_cost = Timerons::new(60.0);
        subs.push((SimTime::ZERO, olap));
        subs
    };
    let free = run(
        DbmsConfig::default(),
        InterceptPolicy::intercept_none(),
        mk_subs(),
        false,
        None,
        SimTime::from_secs(600),
    );
    let locked_cfg = DbmsConfig {
        lock_list: Some(LockListConfig {
            entries: 1_000.0,
            locks_per_timeron: 1.0,
            wait_penalty: 3.0,
        }),
        ..DbmsConfig::default()
    };
    let locked = run(
        locked_cfg,
        InterceptPolicy::intercept_none(),
        mk_subs(),
        false,
        None,
        SimTime::from_secs(600),
    );
    assert_eq!(free.completed.len(), 31);
    assert_eq!(locked.completed.len(), 31);
    let oltp_end = |w: &Script| {
        w.completed
            .iter()
            .filter(|(_, r)| r.kind == QueryKind::Oltp)
            .map(|(t, _)| *t)
            .max()
            .unwrap()
    };
    assert!(
        oltp_end(&locked) > oltp_end(&free),
        "lock waits must stretch the OLTP burst: {:?} vs {:?}",
        oltp_end(&locked),
        oltp_end(&free)
    );
    // The OLAP query's execution is identical in both runs: lock contention
    // only touches the OLTP class.
    let olap_exec = |w: &Script| {
        w.completed
            .iter()
            .find(|(_, r)| r.kind == QueryKind::Olap)
            .map(|(_, r)| r.execution_time())
            .unwrap()
    };
    assert_eq!(olap_exec(&locked), olap_exec(&free));
}
