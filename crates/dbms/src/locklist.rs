//! Optional lock-list contention model.
//!
//! The second contention dimension the paper excluded by separating the
//! databases ("ignoring other sources of contention … such as buffer pools
//! and lock lists", §4). When configured, the engine tracks the aggregate
//! lock footprint of executing *OLTP* transactions and stretches their CPU
//! bursts as the lock list saturates — modelling lock-wait time and lock
//! escalation overhead.
//!
//! Like [`crate::bufferpool`], this is a coarse aggregate curve: the
//! experiments only need the direction (more concurrent transactions ⇒
//! more lock waits ⇒ slower transactions), not a two-phase-locking
//! simulation.

use serde::{Deserialize, Serialize};

/// Lock-list configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LockListConfig {
    /// Lock-list capacity, in lock entries.
    pub entries: f64,
    /// Lock entries held per timeron of an OLTP transaction's cost.
    pub locks_per_timeron: f64,
    /// CPU-burst slowdown at full saturation: bursts scale by
    /// `1 + wait_penalty · overflow_ratio`.
    pub wait_penalty: f64,
}

impl Default for LockListConfig {
    fn default() -> Self {
        // ~25 concurrent mid-size transactions fit; beyond that, waits grow.
        LockListConfig {
            entries: 1_200.0,
            locks_per_timeron: 1.0,
            wait_penalty: 3.0,
        }
    }
}

impl LockListConfig {
    /// Validate tunables.
    ///
    /// # Panics
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(self.entries > 0.0, "lock list must have entries");
        assert!(
            self.locks_per_timeron >= 0.0,
            "locks per timeron must be non-negative"
        );
        assert!(self.wait_penalty >= 0.0, "penalty must be non-negative");
    }
}

/// Live lock-list state: the aggregate footprint of executing transactions.
#[derive(Debug, Clone)]
pub struct LockList {
    cfg: LockListConfig,
    held: f64,
}

impl LockList {
    /// An empty lock list.
    pub fn new(cfg: LockListConfig) -> Self {
        cfg.validate();
        LockList { cfg, held: 0.0 }
    }

    /// Lock entries a transaction of this cost would hold.
    pub fn locks_of(&self, cost_timerons: f64) -> f64 {
        cost_timerons * self.cfg.locks_per_timeron
    }

    /// A transaction was admitted: acquire its locks.
    pub fn acquire(&mut self, cost_timerons: f64) {
        self.held += self.locks_of(cost_timerons);
    }

    /// A transaction finished: release its locks.
    pub fn release(&mut self, cost_timerons: f64) {
        self.held = (self.held - self.locks_of(cost_timerons)).max(0.0);
    }

    /// Currently held lock entries.
    pub fn held(&self) -> f64 {
        self.held
    }

    /// Fraction by which the footprint exceeds the list (0 while it fits).
    pub fn overflow_ratio(&self) -> f64 {
        if self.held <= self.cfg.entries {
            0.0
        } else {
            (self.held - self.cfg.entries) / self.cfg.entries
        }
    }

    /// Multiplier applied to OLTP CPU bursts under current contention.
    pub fn cpu_factor(&self) -> f64 {
        1.0 + self.cfg.wait_penalty * self.overflow_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_no_penalty() {
        let mut l = LockList::new(LockListConfig::default());
        l.acquire(600.0);
        assert_eq!(l.overflow_ratio(), 0.0);
        assert_eq!(l.cpu_factor(), 1.0);
    }

    #[test]
    fn overflow_stretches_cpu() {
        let mut l = LockList::new(LockListConfig {
            entries: 100.0,
            locks_per_timeron: 1.0,
            wait_penalty: 2.0,
        });
        l.acquire(300.0);
        assert!((l.overflow_ratio() - 2.0).abs() < 1e-12);
        assert!((l.cpu_factor() - 5.0).abs() < 1e-12);
        l.release(200.0);
        assert_eq!(l.cpu_factor(), 1.0);
        l.release(1e9);
        assert_eq!(l.held(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lock list must have entries")]
    fn zero_entries_panics() {
        let _ = LockList::new(LockListConfig {
            entries: 0.0,
            locks_per_timeron: 1.0,
            wait_penalty: 1.0,
        });
    }
}
