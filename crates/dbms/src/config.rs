//! Engine configuration: the simulated hardware and its calibration.
//!
//! Defaults model the paper's testbed — an IBM xSeries 240 with two 1 GHz
//! CPUs and 17 SCSI disks — calibrated so that the paper's anchor numbers
//! hold: TPC-C transactions are sub-second, TPC-H queries run seconds to
//! minutes, and a total admitted cost of ~30 K timerons sits at the
//! saturation knee.

use qsched_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Static configuration of the simulated DBMS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbmsConfig {
    /// Number of CPU cores (processor-sharing capacity).
    pub cores: u32,
    /// Number of disks in the I/O subsystem.
    pub disks: u32,
    /// CPU core-time per timeron of CPU-attributed cost.
    pub cpu_per_timeron: SimDuration,
    /// Disk service time per timeron of I/O-attributed cost.
    pub io_per_timeron: SimDuration,
    /// Size of the agent pool. Each admitted *or held* query occupies an
    /// agent (DB2 QP blocks the agent of an intercepted query).
    pub agents: u32,
    /// Total admitted cost at which thrashing begins (the saturation knee).
    pub saturation_knee: f64,
    /// Strength of the efficiency decline past the knee: efficiency =
    /// `1 / (1 + alpha * overload)` where `overload = (cost-knee)/knee`.
    pub thrash_alpha: f64,
    /// Extra CPU work charged to every *intercepted* query (Query Patroller
    /// records query information in its control tables). This is the
    /// overhead that makes direct OLTP interception impractical (§3).
    pub interception_cpu: SimDuration,
    /// Latency between submission and the query becoming visible/held in the
    /// patroller control table.
    pub interception_latency: SimDuration,
    /// CPU work charged per snapshot-monitor sample (per monitored client).
    pub snapshot_cpu_per_client: SimDuration,
    /// Optional buffer-pool contention model (None = the paper's separated
    /// databases: no cross-workload buffer contention).
    pub buffer_pool: Option<crate::bufferpool::BufferPoolConfig>,
    /// Optional lock-list contention model for the OLTP class (None = the
    /// paper's separated databases).
    pub lock_list: Option<crate::locklist::LockListConfig>,
    /// Timerons of estimated cost per unit of CPU resource intensity: a
    /// query's weighted-processor-sharing weight is
    /// `max(1, true_cost / cost_per_weight)`. Expensive queries run with
    /// parallel plans and aggressive prefetching, so they pressure the CPU
    /// in proportion to their cost — the coupling behind the paper's
    /// Figure 2 linearity.
    pub cost_per_weight: f64,
    /// Starvation watchdog for held queries (see [`WatchdogConfig`]).
    #[serde(default)]
    pub watchdog: WatchdogConfig,
}

/// Starvation watchdog: a DBMS-side safety net that force-releases held
/// queries when the controller has stopped releasing anything for too long
/// (wedged controller, all release commands lost). It is deliberately
/// conservative — it only acts when the *whole* control loop looks dead, so
/// a healthy scheduler never sees it fire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Master switch. Disabled watchdogs never schedule checks.
    pub enabled: bool,
    /// A held query is *starved* once it has been held this long while no
    /// release or reject command arrived from the controller either.
    pub starvation_timeout: SimDuration,
    /// Interval between watchdog checks while queries are held.
    pub check_interval: SimDuration,
    /// At most this many starved queries are force-released per check — a
    /// trickle, so the floor admission limits still roughly hold even in a
    /// fully wedged run.
    pub max_releases_per_check: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            // Far beyond any healthy control interval (the paper replans
            // every 240 s and releases on every interval) so the watchdog
            // cannot race a live controller.
            starvation_timeout: SimDuration::from_secs(600),
            check_interval: SimDuration::from_secs(60),
            max_releases_per_check: 4,
        }
    }
}

impl WatchdogConfig {
    /// A watchdog that never fires (for tests that assert held-forever
    /// semantics).
    pub fn disabled() -> Self {
        WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::default()
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on a nonsensical configuration.
    pub fn validate(&self) {
        if self.enabled {
            assert!(
                !self.check_interval.is_zero(),
                "watchdog check interval must be positive"
            );
            assert!(
                !self.starvation_timeout.is_zero(),
                "starvation timeout must be positive"
            );
            assert!(
                self.max_releases_per_check >= 1,
                "watchdog must release at least one query"
            );
        }
    }
}

impl Default for DbmsConfig {
    fn default() -> Self {
        DbmsConfig {
            cores: 2,
            disks: 17,
            // Calibration: a TPC-C transaction (~60 timerons, 20 % I/O) costs
            // ~12 ms CPU + ~4 ms disk — sub-second even under load; a TPC-H
            // query (~6 000 timerons, 85 % I/O) costs ~0.2 s CPU + ~1.7 s of
            // disk work spread over many bursts.
            cpu_per_timeron: SimDuration::from_micros(250),
            io_per_timeron: SimDuration::from_micros(333),
            agents: 512,
            saturation_knee: 30_000.0,
            thrash_alpha: 1.6,
            // DB2 QP interception: ~0.5 s of bookkeeping per query — far
            // larger than a sub-second OLTP statement, negligible for a
            // multi-second OLAP query.
            interception_cpu: SimDuration::from_millis(150),
            interception_latency: SimDuration::from_millis(350),
            snapshot_cpu_per_client: SimDuration::from_micros(200),
            buffer_pool: None,
            lock_list: None,
            cost_per_weight: 600.0,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl DbmsConfig {
    /// Validate invariants; call after manual construction.
    ///
    /// # Panics
    /// Panics on a nonsensical configuration.
    pub fn validate(&self) {
        assert!(self.cores >= 1, "need at least one core");
        assert!(self.disks >= 1, "need at least one disk");
        assert!(self.agents >= 1, "need at least one agent");
        assert!(self.saturation_knee > 0.0, "knee must be positive");
        assert!(self.thrash_alpha >= 0.0, "alpha must be non-negative");
        assert!(
            self.cost_per_weight > 0.0,
            "cost_per_weight must be positive"
        );
        if let Some(bp) = &self.buffer_pool {
            bp.validate();
        }
        if let Some(ll) = &self.lock_list {
            ll.validate();
        }
        self.watchdog.validate();
    }

    /// Map a true cost and I/O fraction onto an execution shape.
    ///
    /// `io_fraction` of the cost is attributed to I/O work and the rest to
    /// CPU work, converted through the per-timeron calibration constants.
    /// The work is spread over `cycles` alternating CPU/I-O bursts.
    ///
    /// # Panics
    /// Panics unless `io_fraction ∈ [0, 1]` and `cycles >= 1`.
    pub fn shape(
        &self,
        true_cost: crate::cost::Timerons,
        io_fraction: f64,
        cycles: u32,
    ) -> crate::query::ExecShape {
        assert!(
            (0.0..=1.0).contains(&io_fraction),
            "io_fraction out of range: {io_fraction}"
        );
        let cpu = self
            .cpu_per_timeron
            .mul_f64(true_cost.get() * (1.0 - io_fraction));
        let io = self.io_per_timeron.mul_f64(true_cost.get() * io_fraction);
        let weight = (true_cost.get() / self.cost_per_weight).max(1.0);
        crate::query::ExecShape::new(cpu, io, cycles).with_weight(weight)
    }

    /// CPU efficiency factor for a given total admitted cost.
    ///
    /// 1.0 while under the knee; declines hyperbolically past it. This models
    /// buffer-pool and memory contention: past the knee each extra admitted
    /// timeron *reduces* useful work, so completed-work throughput falls —
    /// the paper's criterion for choosing the system cost limit
    /// ("running in a healthy state or under-saturated").
    pub fn efficiency(&self, admitted_cost: f64) -> f64 {
        debug_assert!(admitted_cost >= -1e-6, "negative admitted cost");
        let overload = ((admitted_cost - self.saturation_knee) / self.saturation_knee).max(0.0);
        1.0 / (1.0 + self.thrash_alpha * overload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DbmsConfig::default().validate();
    }

    #[test]
    fn efficiency_is_one_under_knee() {
        let c = DbmsConfig::default();
        assert_eq!(c.efficiency(0.0), 1.0);
        assert_eq!(c.efficiency(29_999.0), 1.0);
        assert_eq!(c.efficiency(30_000.0), 1.0);
    }

    #[test]
    fn efficiency_declines_past_knee() {
        let c = DbmsConfig::default();
        let e1 = c.efficiency(35_000.0);
        let e2 = c.efficiency(60_000.0);
        assert!(e1 < 1.0);
        assert!(e2 < e1);
        assert!(e2 > 0.0);
    }

    #[test]
    fn effective_capacity_declines_past_knee() {
        // The knee is a *maximum* of useful capacity: cost × efficiency(cost)
        // must not grow once well past the knee.
        let c = DbmsConfig::default();
        let useful = |cost: f64| cost * c.efficiency(cost);
        assert!(useful(30_000.0) >= useful(90_000.0) * 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_invalid() {
        let cfg = DbmsConfig {
            cores: 0,
            ..DbmsConfig::default()
        };
        cfg.validate();
    }
}
