//! Timerons — DB2's generic cost unit.
//!
//! A *timeron* is the DB2 optimizer's abstract measure of the combined
//! resource usage needed to execute a query. The Query Scheduler expresses
//! every scheduling plan as a vector of per-class *cost limits* in timerons,
//! so the unit gets a dedicated newtype to keep cost arithmetic separate from
//! other floating-point quantities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A non-negative quantity of optimizer cost, in timerons.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Timerons(f64);

impl Timerons {
    /// Zero cost.
    pub const ZERO: Timerons = Timerons(0.0);

    /// Construct from a raw timeron count.
    ///
    /// # Panics
    /// Panics if `t` is negative or not finite.
    #[inline]
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "invalid timeron value: {t}");
        Timerons(t)
    }

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// True if zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, other: Timerons) -> Timerons {
        Timerons((self.0 - other.0).max(0.0))
    }

    /// The smaller of two costs.
    #[inline]
    pub fn min(self, other: Timerons) -> Timerons {
        Timerons(self.0.min(other.0))
    }

    /// The larger of two costs.
    #[inline]
    pub fn max(self, other: Timerons) -> Timerons {
        Timerons(self.0.max(other.0))
    }

    /// The ratio `self / other`; 0.0 when `other` is zero.
    #[inline]
    pub fn ratio(self, other: Timerons) -> f64 {
        if other.0 == 0.0 {
            0.0
        } else {
            self.0 / other.0
        }
    }
}

impl Add for Timerons {
    type Output = Timerons;
    #[inline]
    fn add(self, rhs: Timerons) -> Timerons {
        Timerons(self.0 + rhs.0)
    }
}

impl AddAssign for Timerons {
    #[inline]
    fn add_assign(&mut self, rhs: Timerons) {
        self.0 += rhs.0;
    }
}

impl Sub for Timerons {
    type Output = Timerons;
    /// # Panics
    /// Panics in debug builds on underflow; use
    /// [`Timerons::saturating_sub`] when clamping is intended.
    #[inline]
    fn sub(self, rhs: Timerons) -> Timerons {
        debug_assert!(rhs.0 <= self.0 + 1e-9, "timeron subtraction underflow");
        Timerons((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Timerons {
    #[inline]
    fn sub_assign(&mut self, rhs: Timerons) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Timerons {
    type Output = Timerons;
    #[inline]
    fn mul(self, rhs: f64) -> Timerons {
        Timerons::new(self.0 * rhs)
    }
}

impl Div<f64> for Timerons {
    type Output = Timerons;
    #[inline]
    fn div(self, rhs: f64) -> Timerons {
        Timerons::new(self.0 / rhs)
    }
}

impl Sum for Timerons {
    fn sum<I: Iterator<Item = Timerons>>(iter: I) -> Timerons {
        iter.fold(Timerons::ZERO, Add::add)
    }
}

impl fmt::Debug for Timerons {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}tm", self.0)
    }
}

impl fmt::Display for Timerons {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.1}K timerons", self.0 / 1000.0)
        } else {
            write!(f, "{:.0} timerons", self.0)
        }
    }
}

/// Deterministically corrupt a cost estimate (fault injection: a broken
/// optimizer). Alternates between gross over-estimation (×1000, the
/// "stale-statistics cartesian join" failure) and gross under-estimation
/// (÷1000, the "missing statistics" failure) by injection sequence number,
/// so a corruption schedule exercises both directions.
pub fn corrupt_estimate(estimate: Timerons, seq: u64) -> Timerons {
    const FACTOR: f64 = 1000.0;
    if seq.is_multiple_of(2) {
        Timerons::new((estimate.get() * FACTOR).min(f64::MAX / 2.0))
    } else {
        Timerons::new(estimate.get() / FACTOR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Timerons::new(100.0);
        let b = Timerons::new(40.0);
        assert_eq!((a + b).get(), 140.0);
        assert_eq!((a - b).get(), 60.0);
        assert_eq!((a * 2.0).get(), 200.0);
        assert_eq!((a / 4.0).get(), 25.0);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Timerons::new(10.0);
        let b = Timerons::new(40.0);
        assert_eq!(a.saturating_sub(b), Timerons::ZERO);
        assert_eq!(b.saturating_sub(a).get(), 30.0);
    }

    #[test]
    fn sum_and_ratio() {
        let total: Timerons = [10.0, 20.0, 30.0].into_iter().map(Timerons::new).sum();
        assert_eq!(total.get(), 60.0);
        assert!((Timerons::new(30.0).ratio(total) - 0.5).abs() < 1e-12);
        assert_eq!(total.ratio(Timerons::ZERO), 0.0);
    }

    #[test]
    fn min_max() {
        let a = Timerons::new(5.0);
        let b = Timerons::new(9.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "invalid timeron value")]
    fn negative_panics() {
        let _ = Timerons::new(-1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Timerons::new(500.0).to_string(), "500 timerons");
        assert_eq!(Timerons::new(30_000.0).to_string(), "30.0K timerons");
    }
}
