//! The execution engine: agents, interception, and the central-server
//! CPU/disk loop.
//!
//! ## Query lifecycle
//!
//! ```text
//! submit ──► [agent pool] ──► intercepted? ──yes──► (latency) ──► HELD ──release──► ADMIT
//!                                  │                                                 │
//!                                  no ──────────────────────────────────────────────►│
//!                                                                                    ▼
//!                    ┌──────────────────── cycles × ────────────────────┐
//!                    │  CPU burst (processor sharing) ─► I/O burst (FCFS) │ ──► COMPLETE
//!                    └──────────────────────────────────────────────────┘
//! ```
//!
//! Admission raises the total admitted (true) cost, which sets the CPU
//! efficiency through the saturation model; completion lowers it again.
//! Completions update the snapshot registry and are reported to the caller
//! as [`DbmsNotice::Completed`]; interceptions as [`DbmsNotice::Intercepted`].

use crate::agent::AgentPool;
use crate::bufferpool::BufferPool;
use crate::config::DbmsConfig;
use crate::cost::Timerons;
use crate::locklist::LockList;
use crate::metrics::EngineMetrics;
use crate::patroller::{ControlRow, InterceptPolicy, Patroller};
use crate::query::{ClassId, Query, QueryId, QueryKind, QueryRecord};
use crate::resource::{DiskArray, PsCpu};
use crate::snapshot::{ClientSample, SnapshotRegistry};
use crate::transport::{Admit, ReleaseBatch, ReleaseEnvelope, ReleaseReceiver};
use qsched_sim::{Ctx, SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Events internal to the DBMS. The enclosing world must route these back to
/// [`Dbms::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbmsEvent {
    /// Interception bookkeeping finished; the query enters the control table.
    InterceptReady(QueryId),
    /// A CPU completion may be due (stale generations are ignored).
    CpuTick {
        /// Generation at scheduling time; compared against the current one.
        gen: u64,
    },
    /// The disk burst of this query finished.
    DiskDone(QueryId),
    /// A release command that was delayed in flight is now due.
    ReleaseDue(QueryId),
    /// A transported release envelope arrives at the Patroller (sim
    /// transport only; the envelope passes the dedup/epoch book first).
    TransportDeliver(ReleaseEnvelope),
    /// A batched wire message arrives at the Patroller: every envelope it
    /// carries passes the dedup/epoch book individually (batching changes
    /// the event count, never the protocol).
    TransportDeliverBatch(ReleaseBatch),
    /// Periodic starvation-watchdog check (scheduled while queries are held).
    WatchdogCheck,
}

/// Notifications surfaced to the enclosing world.
#[derive(Debug, Clone, PartialEq)]
pub enum DbmsNotice {
    /// A query was intercepted and now sits in the control table, held.
    Intercepted(ControlRow),
    /// A query finished; the record carries its full lifecycle.
    Completed(QueryRecord),
    /// A held query was rejected by policy (DB2 QP max-cost rules / load
    /// shedding); it never executed.
    Rejected(ControlRow),
    /// The starvation watchdog force-released this held query because the
    /// controller showed no release activity past the starvation timeout.
    /// Controllers should reconcile their queue/dispatcher books.
    Starved(ControlRow),
}

/// CPU job tag: a query burst or an overhead task (interception/snapshot
/// bookkeeping that consumes CPU but produces no completion notice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CpuJob {
    Query(QueryId),
    Overhead(u64),
}

/// Execution phase of an in-flight query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for an agent.
    WaitingAgent,
    /// Agent held; interception latency in progress.
    Intercepting,
    /// In the patroller control table, waiting for release.
    Held,
    /// A CPU burst is in progress.
    Cpu,
    /// An I/O burst is in progress (possibly queued for a disk).
    Io,
}

/// O(1) per-phase population counters, maintained at every phase
/// transition. The invariant oracle reads these through
/// [`Dbms::accounting`] on every event; [`Dbms::deep_audit`] cross-checks
/// them against a full `inflight` iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PhaseTally {
    waiting_agent: u64,
    intercepting: u64,
    held: u64,
    cpu: u64,
    io: u64,
}

impl PhaseTally {
    fn slot(&mut self, phase: Phase) -> &mut u64 {
        match phase {
            Phase::WaitingAgent => &mut self.waiting_agent,
            Phase::Intercepting => &mut self.intercepting,
            Phase::Held => &mut self.held,
            Phase::Cpu => &mut self.cpu,
            Phase::Io => &mut self.io,
        }
    }

    fn inc(&mut self, phase: Phase) {
        *self.slot(phase) += 1;
    }

    fn dec(&mut self, phase: Phase) {
        let slot = self.slot(phase);
        debug_assert!(*slot > 0, "phase tally underflow: {phase:?}");
        *slot = slot.saturating_sub(1);
    }

    fn moved(&mut self, from: Phase, to: Phase) {
        self.dec(from);
        self.inc(to);
    }
}

/// Read-only accounting snapshot for the invariant oracle: lifecycle
/// counters that must reconcile (conservation) at every event boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbmsAccounting {
    /// Queries ever submitted.
    pub submitted: u64,
    /// Queries rejected by policy (left without executing).
    pub rejected: u64,
    /// Queries completed (OLAP + OLTP).
    pub completed: u64,
    /// In flight, waiting for an agent.
    pub waiting_agent: u64,
    /// In flight, interception latency in progress.
    pub intercepting: u64,
    /// In flight, held in the control table.
    pub held: u64,
    /// In flight, in a CPU burst.
    pub cpu: u64,
    /// In flight, in an I/O burst.
    pub io: u64,
}

impl DbmsAccounting {
    /// All queries currently in flight, whatever the phase.
    pub fn in_flight(&self) -> u64 {
        self.waiting_agent + self.intercepting + self.held + self.cpu + self.io
    }

    /// Queries currently executing (admitted, not finished).
    pub fn executing(&self) -> u64 {
        self.cpu + self.io
    }
}

/// Book-keeping for one in-flight query.
#[derive(Debug, Clone)]
struct Inflight {
    query: Query,
    submitted: SimTime,
    admitted: Option<SimTime>,
    cycles_left: u32,
    phase: Phase,
    was_intercepted: bool,
}

/// The simulated DBMS.
///
/// All methods that can advance the simulation take the engine's [`Ctx`] so
/// they can schedule [`DbmsEvent`]s; the world's event type only needs a
/// `From<DbmsEvent>` conversion.
pub struct Dbms {
    cfg: DbmsConfig,
    cpu: PsCpu<CpuJob>,
    disks: DiskArray<QueryId>,
    agents: AgentPool,
    patroller: Patroller,
    snapshots: SnapshotRegistry,
    inflight: HashMap<QueryId, Inflight>,
    admitted_true_cost: f64,
    buffer_pool: Option<BufferPool>,
    lock_list: Option<LockList>,
    cpu_gen: u64,
    /// Instant of the currently pending (latest-generation) CpuTick, if any.
    /// Lets `reschedule_cpu` skip re-scheduling when the next completion is
    /// unchanged instead of flooding the event queue with stale ticks.
    cpu_wakeup: Option<SimTime>,
    overhead_seq: u64,
    metrics: EngineMetrics,
    /// True while a WatchdogCheck event is pending (exactly one at a time).
    watchdog_armed: bool,
    /// Last instant the *controller* released or rejected a held query.
    /// Watchdog force-releases deliberately do not count, so a wedged
    /// controller stays detected across checks.
    last_release_activity: SimTime,
    /// Per-phase population counters (oracle conservation surface).
    tally: PhaseTally,
    /// Queries ever submitted.
    submitted_total: u64,
    /// Queries rejected without executing.
    rejected_total: u64,
    /// Release commands delayed in flight ("release.delay"): the query is
    /// still held, but a `ReleaseDue` event is pending for it. The oracle's
    /// fault-book reconciliation treats these as covered.
    delayed_release: BTreeSet<QueryId>,
    /// Transport receiver book: duplicate suppression and epoch fencing for
    /// release envelopes arriving over the sim transport.
    transport_rx: ReleaseReceiver,
}

impl Dbms {
    /// Build a DBMS with the given hardware configuration and interception
    /// policy, with the clock at `start`.
    pub fn new(cfg: DbmsConfig, policy: InterceptPolicy, start: SimTime) -> Self {
        cfg.validate();
        Dbms {
            cpu: PsCpu::new(cfg.cores, start),
            disks: DiskArray::new(cfg.disks),
            agents: AgentPool::new(cfg.agents),
            patroller: Patroller::new(policy),
            snapshots: SnapshotRegistry::new(),
            inflight: HashMap::new(),
            admitted_true_cost: 0.0,
            buffer_pool: cfg.buffer_pool.clone().map(BufferPool::new),
            lock_list: cfg.lock_list.clone().map(LockList::new),
            cpu_gen: 0,
            cpu_wakeup: None,
            overhead_seq: 0,
            metrics: EngineMetrics::new(start),
            watchdog_armed: false,
            last_release_activity: start,
            tally: PhaseTally::default(),
            submitted_total: 0,
            rejected_total: 0,
            delayed_release: BTreeSet::new(),
            transport_rx: ReleaseReceiver::default(),
            cfg,
        }
    }

    /// [`Dbms::new`] with the in-flight arena pre-sized for an expected
    /// resident population (closed-loop clients each contribute at most one
    /// in-flight query). Sharded scaling sweeps build engines through this
    /// so 100k+-client backends don't measure hash-map rehash churn; the
    /// hint changes no behaviour, only initial capacity.
    pub fn with_capacity(
        cfg: DbmsConfig,
        policy: InterceptPolicy,
        start: SimTime,
        expected_clients: usize,
    ) -> Self {
        let mut dbms = Self::new(cfg, policy, start);
        dbms.inflight.reserve(expected_clients);
        dbms
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbmsConfig {
        &self.cfg
    }

    /// Engine metrics (throughput, MPL, utilization…).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Mutable metrics access (for window rolls between experiment periods).
    pub fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    /// The patroller (read access for monitors).
    pub fn patroller(&self) -> &Patroller {
        &self.patroller
    }

    /// Replace the interception policy at runtime.
    pub fn set_intercept_policy(&mut self, policy: InterceptPolicy) {
        self.patroller.set_policy(policy);
    }

    /// Number of queries currently *executing* (admitted, not finished).
    pub fn executing_count(&self) -> usize {
        self.inflight
            .values()
            .filter(|f| matches!(f.phase, Phase::Cpu | Phase::Io))
            .count()
    }

    /// Total *true* cost of currently executing queries.
    pub fn admitted_true_cost(&self) -> f64 {
        self.admitted_true_cost
    }

    /// Most jobs (query bursts + overhead tasks) ever resident on the CPU
    /// at once — the scale the O(log n) kernel actually faced.
    pub fn peak_cpu_jobs(&self) -> usize {
        self.cpu.peak_jobs()
    }

    /// Longest the shared disk queue ever got.
    pub fn peak_disk_queue(&self) -> usize {
        self.disks.peak_queue()
    }

    /// O(1) lifecycle accounting snapshot (the oracle's conservation
    /// surface): every submitted query is in exactly one phase bucket or
    /// has completed or been rejected.
    pub fn accounting(&self) -> DbmsAccounting {
        DbmsAccounting {
            submitted: self.submitted_total,
            rejected: self.rejected_total,
            completed: self.metrics.olap_completed + self.metrics.oltp_completed,
            waiting_agent: self.tally.waiting_agent,
            intercepting: self.tally.intercepting,
            held: self.tally.held,
            cpu: self.tally.cpu,
            io: self.tally.io,
        }
    }

    /// Full cross-check of the O(1) tallies against an `inflight` iteration
    /// and the patroller's held set. O(in-flight); the oracle runs this on
    /// a stride rather than at every event.
    pub fn deep_audit(&self) -> Result<(), String> {
        let mut recount = PhaseTally::default();
        for f in self.inflight.values() {
            recount.inc(f.phase);
        }
        if recount != self.tally {
            return Err(format!(
                "phase tally drift: counted {recount:?}, maintained {:?}",
                self.tally
            ));
        }
        let held = self.patroller.held_count() as u64;
        if held != self.tally.held {
            return Err(format!(
                "patroller holds {held} rows but {} queries are in phase Held",
                self.tally.held
            ));
        }
        for row in self.patroller.held_rows() {
            if !self.inflight.contains_key(&row.id) {
                return Err(format!("held row {:?} is not in flight", row.id));
            }
        }
        Ok(())
    }

    /// True when a delayed release command ("release.delay" fault) is still
    /// in flight for this query — the query is held, but a `ReleaseDue`
    /// event will arrive for it.
    pub fn delayed_release_pending(&self, id: QueryId) -> bool {
        self.delayed_release.contains(&id)
    }

    /// Enumerate the *executing* queries that passed through interception
    /// (admitted via a release, so they count against the releasing
    /// controller's cost books), as `(id, class, estimated cost)` sorted by
    /// id. This is the authoritative view a restarted controller charges
    /// its dispatcher from — the estimated cost is what admission control
    /// works in, and the deterministic order keeps floating-point sums
    /// bit-identical across replays (`inflight` itself is a `HashMap`).
    pub fn resync_executing(&self) -> Vec<(QueryId, ClassId, Timerons)> {
        let mut rows: Vec<(QueryId, ClassId, Timerons)> = self
            .inflight
            .iter()
            .filter(|(_, f)| f.was_intercepted && matches!(f.phase, Phase::Cpu | Phase::Io))
            .map(|(&id, f)| (id, f.query.class, f.query.estimated_cost))
            .collect();
        rows.sort_by_key(|&(id, _, _)| id);
        rows
    }

    /// Submit a query. Interception and admission happen according to the
    /// patroller policy; notices are appended to `out`.
    pub fn submit<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        mut query: Query,
        out: &mut Vec<DbmsNotice>,
    ) {
        // Fault channel "cost.corrupt": the optimizer hands the patroller a
        // grossly wrong estimate. Execution (true cost, shape) is untouched —
        // only the number every cost-based decision sees.
        if ctx.should_inject("cost.corrupt") {
            let seq = self.metrics.degradation.estimates_corrupted;
            query.estimated_cost = crate::cost::corrupt_estimate(query.estimated_cost, seq);
            self.metrics.degradation.estimates_corrupted += 1;
        }
        let id = query.id;
        debug_assert!(!self.inflight.contains_key(&id), "duplicate submit: {id:?}");
        self.submitted_total += 1;
        self.tally.inc(Phase::WaitingAgent);
        self.inflight.insert(
            id,
            Inflight {
                query,
                submitted: ctx.now(),
                admitted: None,
                cycles_left: 0,
                phase: Phase::WaitingAgent,
                was_intercepted: false,
            },
        );
        if self.agents.acquire(id) {
            self.proceed_with_agent(ctx, id, out);
        }
    }

    /// Release a held query (the Query Patroller unblock API). Returns
    /// `false` if the query was not held **or the command was lost in
    /// flight** (fault channel "release.drop") — in the latter case the
    /// query stays held, so callers can distinguish the two by re-checking
    /// [`Patroller::is_held`] and retry.
    pub fn release<E: From<DbmsEvent>>(&mut self, ctx: &mut Ctx<'_, E>, id: QueryId) -> bool {
        if !self.patroller.is_held(id) {
            return false;
        }
        if ctx.should_inject("release.drop") {
            self.metrics.degradation.releases_dropped += 1;
            return false;
        }
        if ctx.should_inject("release.delay") {
            let delay = ctx
                .fault_delay("release.delay")
                .unwrap_or_else(|| SimDuration::from_secs(5));
            self.metrics.degradation.releases_delayed += 1;
            self.delayed_release.insert(id);
            ctx.schedule_in(delay, DbmsEvent::ReleaseDue(id).into());
            return true;
        }
        self.do_release(ctx, id)
    }

    /// Deliver a transported release envelope: run it through the receiver's
    /// duplicate-suppression and epoch-fence book, and only if it is fresh
    /// hand it to [`Dbms::release`] (so in-engine release faults still
    /// compose underneath the transport). Returns `true` iff the release
    /// effect was applied by *this* envelope — duplicates, stale epochs, and
    /// no-longer-held queries all return `false`.
    pub fn deliver_release<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        env: ReleaseEnvelope,
    ) -> bool {
        match self.transport_rx.admit(&env) {
            Admit::Stale | Admit::Duplicate => false,
            Admit::Fresh => {
                let applied = self.release(ctx, env.id);
                self.transport_rx.note_outcome(&env, ctx.now(), applied);
                applied
            }
        }
    }

    /// Deliver a batched wire message: unpack it and run every envelope
    /// through [`Dbms::deliver_release`]. Returns `true` iff at least one
    /// envelope's release effect was applied by this batch.
    pub fn deliver_release_batch<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        batch: ReleaseBatch,
    ) -> bool {
        let mut any = false;
        for env in batch.envelopes() {
            any |= self.deliver_release(ctx, env);
        }
        any
    }

    /// Read access to the transport receiver book (ledger + oracle).
    pub fn transport_rx(&self) -> &ReleaseReceiver {
        &self.transport_rx
    }

    /// Fence the transport receiver to a new sender epoch (called by the
    /// world immediately after a controller restart).
    pub fn observe_transport_epoch(&mut self, epoch: u64) {
        self.transport_rx.observe_epoch(epoch);
    }

    /// Actually unblock a held query (no fault interposition). A success is
    /// controller release activity — the watchdog's liveness signal.
    fn do_release<E: From<DbmsEvent>>(&mut self, ctx: &mut Ctx<'_, E>, id: QueryId) -> bool {
        if self.patroller.release(id).is_none() {
            return false;
        }
        self.last_release_activity = ctx.now();
        self.admit(ctx, id);
        true
    }

    /// Reject a *held* query (DB2 QP maximum-cost rules, or controller load
    /// shedding): it leaves the control table without executing, its agent
    /// is freed, and a [`DbmsNotice::Rejected`] is emitted. Returns `false`
    /// if the query was not held.
    pub fn reject<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        id: QueryId,
        out: &mut Vec<DbmsNotice>,
    ) -> bool {
        let Some(row) = self.patroller.release(id) else {
            return false;
        };
        self.last_release_activity = ctx.now();
        let removed = self.inflight.remove(&id);
        debug_assert!(removed.is_some(), "held query must be in flight");
        self.tally.dec(Phase::Held);
        self.rejected_total += 1;
        // The blocked agent is freed; a waiting submission may take it.
        if let Some(next) = self.agents.release() {
            self.proceed_with_agent(ctx, next, out);
        }
        out.push(DbmsNotice::Rejected(row));
        true
    }

    /// Handle a [`DbmsEvent`], appending notices to `out`.
    pub fn handle<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        ev: DbmsEvent,
        out: &mut Vec<DbmsNotice>,
    ) {
        match ev {
            DbmsEvent::InterceptReady(id) => self.on_intercept_ready(ctx, id, out),
            DbmsEvent::CpuTick { gen } => self.on_cpu_tick(ctx, gen, out),
            DbmsEvent::DiskDone(id) => self.on_disk_done(ctx, id, out),
            DbmsEvent::ReleaseDue(id) => {
                // A delayed release command finally arrives. The query may
                // already be gone (watchdog or a retry won the race).
                self.delayed_release.remove(&id);
                self.do_release(ctx, id);
            }
            DbmsEvent::TransportDeliver(env) => {
                // Worlds that want to ack intercept this variant before
                // calling `handle`; routing it here is still correct (the
                // sender's retry timer covers the missing ack).
                self.deliver_release(ctx, env);
            }
            DbmsEvent::TransportDeliverBatch(batch) => {
                self.deliver_release_batch(ctx, batch);
            }
            DbmsEvent::WatchdogCheck => self.on_watchdog_check(ctx, out),
        }
    }

    /// Take a snapshot: returns the per-client registers and charges the
    /// sampling overhead to the CPU (per monitored client, §3.3).
    ///
    /// Returns `None` when the fault channel "snapshot.drop" fires — the
    /// monitor connection failed, no sample was collected (and no sampling
    /// CPU was spent). Callers keep their previous observation and must
    /// treat their inputs as stale.
    pub fn take_snapshot<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
    ) -> Option<Vec<ClientSample>> {
        if ctx.should_inject("snapshot.drop") {
            self.metrics.degradation.snapshots_lost += 1;
            return None;
        }
        let clients = self.snapshots.client_count() as u64;
        if clients > 0 && !self.cfg.snapshot_cpu_per_client.is_zero() {
            let work = self.cfg.snapshot_cpu_per_client * clients;
            let now = ctx.now();
            self.cpu.advance(now);
            self.overhead_seq += 1;
            self.cpu.add(CpuJob::Overhead(self.overhead_seq), work);
            self.reschedule_cpu(ctx);
        }
        Some(self.snapshots.samples().copied().collect())
    }

    /// Read-only snapshot registry (no overhead; for experiment reporting,
    /// not for controllers).
    pub fn snapshot_registry(&self) -> &SnapshotRegistry {
        &self.snapshots
    }

    // ---- internal transitions -------------------------------------------

    /// Query has an agent: intercept or admit.
    fn proceed_with_agent<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        id: QueryId,
        out: &mut Vec<DbmsNotice>,
    ) {
        let intercept = {
            let f = self.inflight.get(&id).expect("in-flight query");
            self.patroller.intercepts(&f.query)
        };
        if intercept {
            let f = self.inflight.get_mut(&id).expect("in-flight query");
            f.phase = Phase::Intercepting;
            f.was_intercepted = true;
            self.tally.moved(Phase::WaitingAgent, Phase::Intercepting);
            ctx.schedule_in(
                self.cfg.interception_latency,
                DbmsEvent::InterceptReady(id).into(),
            );
        } else {
            self.admit(ctx, id);
        }
        let _ = out;
    }

    fn on_intercept_ready<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        id: QueryId,
        out: &mut Vec<DbmsNotice>,
    ) {
        let now = ctx.now();
        let f = self.inflight.get_mut(&id).expect("in-flight query");
        debug_assert_eq!(f.phase, Phase::Intercepting);
        f.phase = Phase::Held;
        self.tally.moved(Phase::Intercepting, Phase::Held);
        let row = self.patroller.hold(&f.query, now);
        out.push(DbmsNotice::Intercepted(row));
        // Arm the starvation watchdog: while anything is held, exactly one
        // WatchdogCheck is in flight.
        if self.cfg.watchdog.enabled && !self.watchdog_armed {
            self.watchdog_armed = true;
            ctx.schedule_in(
                self.cfg.watchdog.check_interval,
                DbmsEvent::WatchdogCheck.into(),
            );
        }
    }

    /// Periodic starvation check. Fires only while armed; disarms itself
    /// when nothing is held (so drained simulations terminate).
    fn on_watchdog_check<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        out: &mut Vec<DbmsNotice>,
    ) {
        if !self.cfg.watchdog.enabled || self.patroller.held_count() == 0 {
            self.watchdog_armed = false;
            return;
        }
        let now = ctx.now();
        let timeout = self.cfg.watchdog.starvation_timeout;
        // The controller is considered dead only when *nothing* left the
        // held set through it for a whole timeout. A live controller
        // releasing anything at all resets this clock, so the watchdog can
        // never race healthy scheduling decisions.
        let controller_idle = now.saturating_since(self.last_release_activity) > timeout;
        if controller_idle {
            let starved: Vec<ControlRow> = self
                .patroller
                .held_rows()
                .filter(|r| now.saturating_since(r.intercepted_at) > timeout)
                .take(self.cfg.watchdog.max_releases_per_check as usize)
                .copied()
                .collect();
            for row in starved {
                let released = self.patroller.release(row.id).is_some();
                debug_assert!(released, "held row must release");
                // Deliberately not release activity: the controller is still
                // dead, and the next check must keep draining.
                self.metrics.degradation.starvation_releases += 1;
                self.admit(ctx, row.id);
                out.push(DbmsNotice::Starved(row));
            }
        }
        ctx.schedule_in(
            self.cfg.watchdog.check_interval,
            DbmsEvent::WatchdogCheck.into(),
        );
    }

    /// Start executing: first CPU burst, saturation update.
    fn admit<E: From<DbmsEvent>>(&mut self, ctx: &mut Ctx<'_, E>, id: QueryId) {
        let now = ctx.now();
        let (burst, true_cost) = {
            let f = self.inflight.get_mut(&id).expect("in-flight query");
            debug_assert!(
                matches!(
                    f.phase,
                    Phase::Held | Phase::WaitingAgent | Phase::Intercepting
                ),
                "admit from bad phase {:?}",
                f.phase
            );
            f.admitted = Some(now);
            f.cycles_left = f.query.shape.cycles;
            self.tally.moved(f.phase, Phase::Cpu);
            f.phase = Phase::Cpu;
            let mut burst = f.query.shape.cpu_per_cycle();
            if f.was_intercepted {
                burst += self.cfg.interception_cpu;
            }
            (burst, f.query.true_cost.get())
        };
        let weight = self.inflight[&id].query.shape.weight;
        self.admitted_true_cost += true_cost;
        if let Some(bp) = self.buffer_pool.as_mut() {
            let io_timerons = self.inflight[&id].query.shape.io_work.as_secs_f64()
                / self.cfg.io_per_timeron.as_secs_f64().max(1e-12);
            bp.admit(io_timerons);
        }
        let is_oltp = self.inflight[&id].query.kind == QueryKind::Oltp;
        if is_oltp {
            if let Some(ll) = self.lock_list.as_mut() {
                ll.acquire(true_cost);
            }
        }
        let burst = match (&self.lock_list, is_oltp) {
            (Some(ll), true) => burst.mul_f64(ll.cpu_factor()),
            _ => burst,
        };
        self.metrics.mpl.add(now, 1.0);
        self.metrics.admitted_cost.add(now, true_cost);
        self.cpu.advance(now);
        self.cpu.add_weighted(CpuJob::Query(id), weight, burst);
        self.apply_efficiency();
        self.reschedule_cpu(ctx);
    }

    /// Recompute the saturation efficiency from the admitted cost.
    /// Caller must have advanced the CPU to `now` first.
    fn apply_efficiency(&mut self) {
        self.cpu
            .set_speed(self.cfg.efficiency(self.admitted_true_cost.max(0.0)));
    }

    /// Schedule the next CPU wake-up, if it moved.
    ///
    /// With the virtual-time kernel a membership change only alters the head
    /// completion when the new job's finish tag undercuts it (or the head
    /// itself left), so most calls find `next_completion` unchanged and
    /// return without invalidating the pending tick — the event queue no
    /// longer accumulates a stale CpuTick per admission.
    fn reschedule_cpu<E: From<DbmsEvent>>(&mut self, ctx: &mut Ctx<'_, E>) {
        let next = self.cpu.next_completion();
        if next == self.cpu_wakeup {
            return; // pending tick (or idle state) still accurate
        }
        self.cpu_gen += 1;
        self.cpu_wakeup = next;
        if let Some(t) = next {
            ctx.schedule_at(t, DbmsEvent::CpuTick { gen: self.cpu_gen }.into());
        }
    }

    fn on_cpu_tick<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        gen: u64,
        out: &mut Vec<DbmsNotice>,
    ) {
        if gen != self.cpu_gen {
            return; // stale wake-up; membership changed since scheduling
        }
        self.cpu_wakeup = None; // the pending tick is being consumed
        let now = ctx.now();
        self.cpu.advance(now);
        let mut finished = Vec::new();
        self.cpu.take_finished(&mut finished);
        // Deterministic processing order regardless of Vec internals.
        finished.sort_unstable_by_key(|j| match *j {
            CpuJob::Query(q) => (0u8, q.0),
            CpuJob::Overhead(s) => (1u8, s),
        });
        for job in finished {
            match job {
                CpuJob::Overhead(_) => {} // bookkeeping work, nothing to do
                CpuJob::Query(id) => self.on_cpu_burst_done(ctx, id, out),
            }
        }
        self.reschedule_cpu(ctx);
    }

    /// A query finished its CPU burst: issue the I/O burst or end the cycle.
    fn on_cpu_burst_done<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        id: QueryId,
        out: &mut Vec<DbmsNotice>,
    ) {
        let now = ctx.now();
        let io = {
            let f = self.inflight.get_mut(&id).expect("in-flight query");
            debug_assert_eq!(f.phase, Phase::Cpu);
            f.query.shape.io_per_cycle()
        };
        if io.is_zero() {
            self.end_cycle(ctx, id, out);
        } else {
            // Buffer-pool pressure stretches I/O service (misses that a
            // roomier pool would have absorbed).
            let io = match &self.buffer_pool {
                Some(bp) => io.mul_f64(bp.io_factor()),
                None => io,
            };
            let f = self.inflight.get_mut(&id).expect("in-flight query");
            f.phase = Phase::Io;
            self.tally.moved(Phase::Cpu, Phase::Io);
            if let Some(t) = self.disks.request(now, id, io) {
                ctx.schedule_at(t, DbmsEvent::DiskDone(id).into());
            }
        }
    }

    fn on_disk_done<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        id: QueryId,
        out: &mut Vec<DbmsNotice>,
    ) {
        let now = ctx.now();
        // Free the disk; a queued burst may start.
        if let Some((next_id, t)) = self.disks.complete(now) {
            ctx.schedule_at(t, DbmsEvent::DiskDone(next_id).into());
        }
        self.end_cycle(ctx, id, out);
    }

    /// One CPU+I/O cycle finished: start the next or complete the query.
    fn end_cycle<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        id: QueryId,
        out: &mut Vec<DbmsNotice>,
    ) {
        let now = ctx.now();
        let next_burst = {
            let f = self.inflight.get_mut(&id).expect("in-flight query");
            debug_assert!(f.cycles_left >= 1);
            f.cycles_left -= 1;
            if f.cycles_left > 0 {
                self.tally.moved(f.phase, Phase::Cpu);
                f.phase = Phase::Cpu;
                Some(f.query.shape.cpu_per_cycle())
            } else {
                None
            }
        };
        match next_burst {
            Some(burst) => {
                let f = &self.inflight[&id];
                let weight = f.query.shape.weight;
                let burst = match (&self.lock_list, f.query.kind) {
                    (Some(ll), QueryKind::Oltp) => burst.mul_f64(ll.cpu_factor()),
                    _ => burst,
                };
                self.cpu.advance(now);
                self.cpu.add_weighted(CpuJob::Query(id), weight, burst);
                self.reschedule_cpu(ctx);
            }
            None => self.complete(ctx, id, out),
        }
    }

    fn complete<E: From<DbmsEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        id: QueryId,
        out: &mut Vec<DbmsNotice>,
    ) {
        let now = ctx.now();
        let f = self.inflight.remove(&id).expect("in-flight query");
        self.tally.dec(f.phase);
        let record = QueryRecord {
            id,
            client: f.query.client,
            class: f.query.class,
            kind: f.query.kind,
            template: f.query.template,
            estimated_cost: f.query.estimated_cost,
            submitted: f.submitted,
            admitted: f.admitted.expect("completed query was admitted"),
            finished: now,
        };
        self.snapshots.record(&record);
        self.admitted_true_cost = (self.admitted_true_cost - f.query.true_cost.get()).max(0.0);
        if let Some(bp) = self.buffer_pool.as_mut() {
            let io_timerons = f.query.shape.io_work.as_secs_f64()
                / self.cfg.io_per_timeron.as_secs_f64().max(1e-12);
            bp.release(io_timerons);
        }
        if f.query.kind == QueryKind::Oltp {
            if let Some(ll) = self.lock_list.as_mut() {
                ll.release(f.query.true_cost.get());
            }
        }
        // Fault channel "test.mpl_leak": a deliberately broken accounting
        // path that skips the MPL decrement. Exists purely so the invariant
        // oracle can be proven to catch real accounting bugs end-to-end; no
        // production configuration ever enables it.
        if !ctx.should_inject("test.mpl_leak") {
            self.metrics.mpl.add(now, -1.0);
        }
        self.metrics
            .admitted_cost
            .add(now, -f.query.true_cost.get());
        self.metrics.throughput.tick();
        match f.query.kind {
            QueryKind::Olap => self.metrics.olap_completed += 1,
            QueryKind::Oltp => self.metrics.oltp_completed += 1,
        }
        self.metrics
            .execution_times
            .push(record.execution_time().as_secs_f64());
        self.metrics
            .response_times
            .push(record.response_time().as_secs_f64());
        // Efficiency improves as admitted cost falls.
        self.cpu.advance(now);
        self.apply_efficiency();
        self.reschedule_cpu(ctx);
        // The freed agent may go to a waiting submission.
        if let Some(next) = self.agents.release() {
            self.proceed_with_agent(ctx, next, out);
        }
        out.push(DbmsNotice::Completed(record));
    }

    /// Estimate of how long `shape` would take to execute with no
    /// contention (used by tests and calibration).
    pub fn solo_time_estimate(&self, shape: &crate::query::ExecShape) -> SimDuration {
        shape.solo_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Timerons;
    use crate::query::{ClassId, ClientId, ExecShape, QueryKind};
    use qsched_sim::{Engine, World};

    /// Test world: a bare DBMS and a log of notices.
    struct Db {
        dbms: Dbms,
        notices: Vec<(SimTime, DbmsNotice)>,
    }

    impl World for Db {
        type Event = DbmsEvent;
        fn handle(&mut self, ctx: &mut Ctx<'_, DbmsEvent>, ev: DbmsEvent) {
            let mut out = Vec::new();
            self.dbms.handle(ctx, ev, &mut out);
            let now = ctx.now();
            self.notices.extend(out.into_iter().map(|n| (now, n)));
        }
    }

    fn mk_query(id: u64, kind: QueryKind, cpu_ms: u64, io_ms: u64, cycles: u32) -> Query {
        Query {
            id: QueryId(id),
            client: ClientId(id as u32),
            class: ClassId(if kind == QueryKind::Oltp { 3 } else { 1 }),
            kind,
            template: 1,
            estimated_cost: Timerons::new(100.0),
            true_cost: Timerons::new(100.0),
            shape: ExecShape::new(
                SimDuration::from_millis(cpu_ms),
                SimDuration::from_millis(io_ms),
                cycles,
            ),
        }
    }

    /// Run a closure that submits into a fresh engine, then run to quiescence.
    fn run_with(policy: InterceptPolicy, f: impl FnOnce(&mut Engine<Db>)) -> Db {
        let dbms = Dbms::new(DbmsConfig::default(), policy, SimTime::ZERO);
        let mut engine = Engine::new(Db {
            dbms,
            notices: Vec::new(),
        });
        f(&mut engine);
        engine.run();
        engine.into_world()
    }

    /// Submit helper usable before the engine runs: drive submit through a
    /// one-shot event by scheduling it via a tiny wrapper world... Simpler:
    /// we call submit with a synthetic Ctx by scheduling a no-op first.
    /// Instead, tests construct the engine and call submit on the world via
    /// `Engine::world_mut` plus a manual Ctx — not possible; so we use the
    /// pattern of an initial event. To keep tests direct, `Db` also accepts
    /// submissions through events:
    struct SubmitDb {
        dbms: Dbms,
        to_submit: Vec<(SimTime, Query)>,
        notices: Vec<(SimTime, DbmsNotice)>,
        auto_release: bool,
    }

    enum SubmitEv {
        Kick,
        Db(DbmsEvent),
    }

    impl From<DbmsEvent> for SubmitEv {
        fn from(e: DbmsEvent) -> Self {
            SubmitEv::Db(e)
        }
    }

    impl World for SubmitDb {
        type Event = SubmitEv;
        fn handle(&mut self, ctx: &mut Ctx<'_, SubmitEv>, ev: SubmitEv) {
            let mut out = Vec::new();
            match ev {
                SubmitEv::Kick => {
                    let now = ctx.now();
                    let due: Vec<Query> = {
                        let mut due = Vec::new();
                        self.to_submit.retain(|(t, q)| {
                            if *t == now {
                                due.push(q.clone());
                                false
                            } else {
                                true
                            }
                        });
                        due
                    };
                    for q in due {
                        self.dbms.submit(ctx, q, &mut out);
                    }
                }
                SubmitEv::Db(e) => self.dbms.handle(ctx, e, &mut out),
            }
            let now = ctx.now();
            for n in out {
                if self.auto_release {
                    if let DbmsNotice::Intercepted(row) = &n {
                        self.dbms.release(ctx, row.id);
                    }
                }
                self.notices.push((now, n));
            }
        }
    }

    fn run_queries(
        policy: InterceptPolicy,
        auto_release: bool,
        queries: Vec<(SimTime, Query)>,
    ) -> SubmitDb {
        run_queries_cfg(DbmsConfig::default(), policy, auto_release, queries)
    }

    fn run_queries_cfg(
        cfg: DbmsConfig,
        policy: InterceptPolicy,
        auto_release: bool,
        queries: Vec<(SimTime, Query)>,
    ) -> SubmitDb {
        let dbms = Dbms::new(cfg, policy, SimTime::ZERO);
        let kicks: Vec<SimTime> = queries.iter().map(|(t, _)| *t).collect();
        let mut engine = Engine::new(SubmitDb {
            dbms,
            to_submit: queries,
            notices: Vec::new(),
            auto_release,
        });
        for t in kicks {
            engine.schedule_at(t, SubmitEv::Kick);
        }
        engine.run();
        engine.into_world()
    }

    fn completions(db: &SubmitDb) -> Vec<QueryRecord> {
        db.notices
            .iter()
            .filter_map(|(_, n)| match n {
                DbmsNotice::Completed(r) => Some(*r),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn uncontrolled_query_runs_solo_time() {
        let q = mk_query(1, QueryKind::Oltp, 12, 4, 2);
        let db = run_queries(
            InterceptPolicy::intercept_none(),
            false,
            vec![(SimTime::ZERO, q)],
        );
        let recs = completions(&db);
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        // Solo: 12 ms CPU + 4 ms I/O = 16 ms, no held time.
        assert_eq!(r.execution_time(), SimDuration::from_millis(16));
        assert_eq!(r.held_time(), SimDuration::ZERO);
        assert!((r.velocity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interception_holds_until_release() {
        use crate::config::WatchdogConfig;
        let q = mk_query(1, QueryKind::Olap, 100, 100, 2);
        // No auto-release and no watchdog: the query must stay held forever.
        let cfg = DbmsConfig {
            watchdog: WatchdogConfig::disabled(),
            ..DbmsConfig::default()
        };
        let db = run_queries_cfg(
            cfg,
            InterceptPolicy::intercept_all(),
            false,
            vec![(SimTime::ZERO, q)],
        );
        assert!(completions(&db).is_empty());
        assert_eq!(db.dbms.patroller().held_count(), 1);
        let intercepted = db
            .notices
            .iter()
            .any(|(_, n)| matches!(n, DbmsNotice::Intercepted(_)));
        assert!(intercepted);
    }

    #[test]
    fn watchdog_force_releases_starved_query() {
        // Default config, no auto-release: the watchdog detects the dead
        // controller and force-releases, so the query still completes.
        let q = mk_query(1, QueryKind::Olap, 100, 100, 2);
        let db = run_queries(
            InterceptPolicy::intercept_all(),
            false,
            vec![(SimTime::ZERO, q)],
        );
        let recs = completions(&db);
        assert_eq!(recs.len(), 1, "the watchdog must rescue the held query");
        let wd = DbmsConfig::default().watchdog;
        assert!(
            recs[0].held_time() > wd.starvation_timeout,
            "held past the timeout"
        );
        assert_eq!(db.dbms.metrics().degradation.starvation_releases, 1);
        let starved = db
            .notices
            .iter()
            .any(|(_, n)| matches!(n, DbmsNotice::Starved(_)));
        assert!(starved, "a Starved notice must be emitted");
        assert_eq!(db.dbms.patroller().held_count(), 0);
    }

    #[test]
    fn watchdog_does_not_fire_while_controller_is_live() {
        // Auto-release on interception: every hold is released immediately,
        // so the watchdog must never act.
        let queries: Vec<(SimTime, Query)> = (0..20)
            .map(|i| {
                (
                    SimTime::from_secs(i * 90),
                    mk_query(i, QueryKind::Olap, 100, 100, 2),
                )
            })
            .collect();
        let db = run_queries(InterceptPolicy::intercept_all(), true, queries);
        assert_eq!(completions(&db).len(), 20);
        assert_eq!(db.dbms.metrics().degradation.starvation_releases, 0);
        assert!(!db
            .notices
            .iter()
            .any(|(_, n)| matches!(n, DbmsNotice::Starved(_))));
    }

    #[test]
    fn released_query_completes_with_interception_overhead() {
        let q = mk_query(1, QueryKind::Olap, 100, 100, 2);
        let db = run_queries(
            InterceptPolicy::intercept_all(),
            true,
            vec![(SimTime::ZERO, q)],
        );
        let recs = completions(&db);
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        let cfg = DbmsConfig::default();
        // Held time = interception latency (released immediately on notice).
        assert_eq!(r.held_time(), cfg.interception_latency);
        // Execution includes the interception CPU overhead.
        let expected = SimDuration::from_millis(200) + cfg.interception_cpu;
        assert_eq!(r.execution_time(), expected);
    }

    #[test]
    fn interception_overhead_dwarfs_oltp_query() {
        // The paper's §3 argument: a sub-second OLTP statement pays more in
        // interception than in execution.
        let q = mk_query(1, QueryKind::Oltp, 12, 4, 2);
        let db = run_queries(
            InterceptPolicy::intercept_all(),
            true,
            vec![(SimTime::ZERO, q)],
        );
        let r = completions(&db)[0];
        let solo = SimDuration::from_millis(16);
        assert!(
            r.response_time() > solo * 10,
            "intercepted OLTP response {:?} should be ≫ solo {:?}",
            r.response_time(),
            solo
        );
    }

    #[test]
    fn two_cpu_queries_share_the_cores() {
        // Two CPU-only queries (3 s each) on 2 cores run in parallel: both
        // finish at t=3. A third makes them share.
        let mk = |id| mk_query(id, QueryKind::Oltp, 3000, 0, 1);
        let db = run_queries(
            InterceptPolicy::intercept_none(),
            false,
            vec![
                (SimTime::ZERO, mk(1)),
                (SimTime::ZERO, mk(2)),
                (SimTime::ZERO, mk(3)),
            ],
        );
        let recs = completions(&db);
        assert_eq!(recs.len(), 3);
        // 3 jobs on 2 cores: rate 2/3 → 3 s of work takes 4.5 s.
        for r in &recs {
            assert_eq!(r.execution_time(), SimDuration::from_millis(4500));
        }
    }

    #[test]
    fn io_queries_use_parallel_disks() {
        // Two I/O-only queries with one cycle each: both get a disk.
        let mk = |id| mk_query(id, QueryKind::Olap, 0, 2000, 1);
        let db = run_queries(
            InterceptPolicy::intercept_none(),
            false,
            vec![(SimTime::ZERO, mk(1)), (SimTime::ZERO, mk(2))],
        );
        let recs = completions(&db);
        assert_eq!(recs.len(), 2);
        for r in &recs {
            assert_eq!(r.execution_time(), SimDuration::from_secs(2));
        }
    }

    #[test]
    fn cycles_alternate_cpu_and_io() {
        // 4 cycles of (10 ms CPU + 20 ms I/O): solo time 120 ms.
        let q = mk_query(1, QueryKind::Olap, 40, 80, 4);
        let db = run_queries(
            InterceptPolicy::intercept_none(),
            false,
            vec![(SimTime::ZERO, q)],
        );
        let r = completions(&db)[0];
        assert_eq!(r.execution_time(), SimDuration::from_millis(120));
    }

    #[test]
    fn saturation_slows_execution() {
        // Total true cost far beyond the knee halves CPU efficiency.
        let mut q1 = mk_query(1, QueryKind::Olap, 1000, 0, 1);
        let mut q2 = mk_query(2, QueryKind::Olap, 1000, 0, 1);
        q1.true_cost = Timerons::new(45_000.0);
        q2.true_cost = Timerons::new(45_000.0);
        let db = run_queries(
            InterceptPolicy::intercept_none(),
            false,
            vec![(SimTime::ZERO, q1), (SimTime::ZERO, q2)],
        );
        let recs = completions(&db);
        // 90 K admitted vs 30 K knee: overload 2 → efficiency 1/(1+3.2).
        // Both 1 s jobs on separate cores, so exec ≈ 4.2 s each... efficiency
        // recovers when the first finishes, but they tie, so both see the
        // full slowdown.
        for r in &recs {
            assert!(
                r.execution_time() > SimDuration::from_secs(4),
                "expected thrashing slowdown, got {:?}",
                r.execution_time()
            );
        }
    }

    #[test]
    fn metrics_track_completions() {
        let db = run_queries(
            InterceptPolicy::intercept_none(),
            false,
            vec![
                (SimTime::ZERO, mk_query(1, QueryKind::Oltp, 10, 0, 1)),
                (SimTime::ZERO, mk_query(2, QueryKind::Olap, 10, 10, 1)),
            ],
        );
        assert_eq!(db.dbms.metrics().oltp_completed, 1);
        assert_eq!(db.dbms.metrics().olap_completed, 1);
        assert_eq!(db.dbms.metrics().throughput.total_count(), 2);
        assert_eq!(db.dbms.executing_count(), 0);
        assert_eq!(db.dbms.admitted_true_cost(), 0.0);
    }

    #[test]
    fn snapshot_reflects_last_completion_per_client() {
        let db = run_queries(
            InterceptPolicy::intercept_none(),
            false,
            vec![
                (SimTime::ZERO, mk_query(1, QueryKind::Oltp, 10, 0, 1)),
                (
                    SimTime::from_secs(1),
                    mk_query(2, QueryKind::Oltp, 20, 0, 1),
                ),
            ],
        );
        let reg = db.dbms.snapshot_registry();
        assert_eq!(reg.client_count(), 2);
        let avg = reg
            .avg_response_time(ClassId(3), SimTime::ZERO)
            .unwrap()
            .as_secs_f64();
        assert!((avg - 0.015).abs() < 1e-6, "avg {avg}");
    }

    #[test]
    fn double_release_is_rejected() {
        // Use the closure-style world to reach `release` directly.
        let db = run_with(InterceptPolicy::intercept_none(), |_e| {});
        drop(db);
        // Release of an unknown id must be rejected (covered via auto_release
        // worlds above for the accept path).
        let mut dbms = Dbms::new(
            DbmsConfig::default(),
            InterceptPolicy::intercept_all(),
            SimTime::ZERO,
        );
        // A Ctx is only available inside a world; use a throwaway engine.
        struct Once {
            dbms: Option<Dbms>,
            ok: bool,
        }
        impl World for Once {
            type Event = DbmsEvent;
            fn handle(&mut self, ctx: &mut Ctx<'_, DbmsEvent>, _ev: DbmsEvent) {
                let mut d = self.dbms.take().unwrap();
                self.ok = !d.release(ctx, QueryId(999));
                self.dbms = Some(d);
            }
        }
        dbms.cpu_gen += 1; // silence unused warnings through state touch
        let mut e = Engine::new(Once {
            dbms: Some(dbms),
            ok: false,
        });
        e.schedule_at(SimTime::ZERO, DbmsEvent::CpuTick { gen: 0 });
        e.run();
        assert!(e.world().ok, "releasing an unknown query must return false");
    }
}
