//! Engine-level metrics: throughput, multiprogramming level, admitted cost
//! and resource utilization over time — plus the degradation counters that
//! record every time the control loop fell back to a degraded mode.

use qsched_sim::stats::{Meter, TimeWeighted, Welford};
use qsched_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Counters of every degraded-mode action taken by the DBMS or the
/// controller. Split across the two layers at runtime (the DBMS counts the
/// faults it absorbs, the controller counts its own fallbacks) and merged
/// into one report with [`DegradationStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationStats {
    /// Monitor snapshots lost before reaching the controller.
    #[serde(default)]
    pub snapshots_lost: u64,
    /// Optimizer cost estimates corrupted at submission time.
    #[serde(default)]
    pub estimates_corrupted: u64,
    /// Patroller release commands dropped in flight.
    #[serde(default)]
    pub releases_dropped: u64,
    /// Patroller release commands delayed in flight.
    #[serde(default)]
    pub releases_delayed: u64,
    /// Held queries force-released by the starvation watchdog.
    #[serde(default)]
    pub starvation_releases: u64,
    /// Controller event deliveries stalled by fault injection.
    #[serde(default)]
    pub controller_stalls: u64,
    /// Solver invocations that failed (timeout / non-convergence).
    #[serde(default)]
    pub solver_failures: u64,
    /// Control intervals whose monitor inputs were stale past the bound.
    #[serde(default)]
    pub stale_intervals: u64,
    /// Replans that fell back to the last-known-good plan.
    #[serde(default)]
    pub plan_fallbacks: u64,
    /// Intercepted queries whose cost estimate was implausible.
    #[serde(default)]
    pub estimates_implausible: u64,
    /// Release commands re-issued after a drop was detected.
    #[serde(default)]
    pub release_retries: u64,
}

impl DegradationStats {
    /// Add every counter of `other` into `self`.
    pub fn merge(&mut self, other: &DegradationStats) {
        self.snapshots_lost += other.snapshots_lost;
        self.estimates_corrupted += other.estimates_corrupted;
        self.releases_dropped += other.releases_dropped;
        self.releases_delayed += other.releases_delayed;
        self.starvation_releases += other.starvation_releases;
        self.controller_stalls += other.controller_stalls;
        self.solver_failures += other.solver_failures;
        self.stale_intervals += other.stale_intervals;
        self.plan_fallbacks += other.plan_fallbacks;
        self.estimates_implausible += other.estimates_implausible;
        self.release_retries += other.release_retries;
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.snapshots_lost
            + self.estimates_corrupted
            + self.releases_dropped
            + self.releases_delayed
            + self.starvation_releases
            + self.controller_stalls
            + self.solver_failures
            + self.stale_intervals
            + self.plan_fallbacks
            + self.estimates_implausible
            + self.release_retries
    }

    /// True if any degraded-mode action was recorded.
    pub fn any(&self) -> bool {
        self.total() > 0
    }
}

/// Online metrics maintained by the engine.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Completions per second (all queries).
    pub throughput: Meter,
    /// Completions of OLAP queries.
    pub olap_completed: u64,
    /// Completions of OLTP queries.
    pub oltp_completed: u64,
    /// Number of concurrently executing queries (the MPL), time-weighted.
    pub mpl: TimeWeighted,
    /// Total *true* cost of concurrently executing queries, time-weighted.
    pub admitted_cost: TimeWeighted,
    /// Execution times of completed queries.
    pub execution_times: Welford,
    /// Response times of completed queries.
    pub response_times: Welford,
    /// Degraded-mode actions taken by this engine (fault absorption).
    pub degradation: DegradationStats,
}

impl EngineMetrics {
    /// Fresh metrics starting at `start`.
    pub fn new(start: SimTime) -> Self {
        EngineMetrics {
            throughput: Meter::new(start),
            olap_completed: 0,
            oltp_completed: 0,
            mpl: TimeWeighted::new(start, 0.0),
            admitted_cost: TimeWeighted::new(start, 0.0),
            execution_times: Welford::new(),
            response_times: Welford::new(),
            degradation: DegradationStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let m = EngineMetrics::new(SimTime::ZERO);
        assert_eq!(m.throughput.total_count(), 0);
        assert_eq!(m.olap_completed + m.oltp_completed, 0);
        assert!(m.execution_times.is_empty());
    }
}
