//! Engine-level metrics: throughput, multiprogramming level, admitted cost
//! and resource utilization over time.

use qsched_sim::stats::{Meter, TimeWeighted, Welford};
use qsched_sim::SimTime;

/// Online metrics maintained by the engine.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Completions per second (all queries).
    pub throughput: Meter,
    /// Completions of OLAP queries.
    pub olap_completed: u64,
    /// Completions of OLTP queries.
    pub oltp_completed: u64,
    /// Number of concurrently executing queries (the MPL), time-weighted.
    pub mpl: TimeWeighted,
    /// Total *true* cost of concurrently executing queries, time-weighted.
    pub admitted_cost: TimeWeighted,
    /// Execution times of completed queries.
    pub execution_times: Welford,
    /// Response times of completed queries.
    pub response_times: Welford,
}

impl EngineMetrics {
    /// Fresh metrics starting at `start`.
    pub fn new(start: SimTime) -> Self {
        EngineMetrics {
            throughput: Meter::new(start),
            olap_completed: 0,
            oltp_completed: 0,
            mpl: TimeWeighted::new(start, 0.0),
            admitted_cost: TimeWeighted::new(start, 0.0),
            execution_times: Welford::new(),
            response_times: Welford::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let m = EngineMetrics::new(SimTime::ZERO);
        assert_eq!(m.throughput.total_count(), 0);
        assert_eq!(m.olap_completed + m.oltp_completed, 0);
        assert!(m.execution_times.is_empty());
    }
}
