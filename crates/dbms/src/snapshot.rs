//! The DBMS snapshot monitor.
//!
//! The paper monitors the (un-intercepted) OLTP class through the DB2 UDB
//! snapshot monitor, which "records the execution time of the most recently
//! finished query for a client"; the controller samples it at a fixed
//! interval and averages the samples (§3.3).
//!
//! [`SnapshotRegistry`] keeps that per-client register. Taking a snapshot is
//! *not* free — the engine charges CPU overhead per monitored client, which
//! is what makes the sampling-interval trade-off of §3.3 real.

use crate::query::{ClassId, ClientId, QueryKind, QueryRecord};
use qsched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The most recent completion observed for one client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSample {
    /// The client.
    pub client: ClientId,
    /// Class of the finished query.
    pub class: ClassId,
    /// Kind of the finished query.
    pub kind: QueryKind,
    /// Execution time of the most recently finished query.
    pub execution_time: SimDuration,
    /// Response time of the most recently finished query.
    pub response_time: SimDuration,
    /// When that query finished.
    pub finished_at: SimTime,
}

/// Per-client "most recently finished query" registers.
#[derive(Debug, Clone, Default)]
pub struct SnapshotRegistry {
    latest: BTreeMap<ClientId, ClientSample>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completion (called by the engine for every finished query).
    pub fn record(&mut self, rec: &QueryRecord) {
        self.latest.insert(
            rec.client,
            ClientSample {
                client: rec.client,
                class: rec.class,
                kind: rec.kind,
                execution_time: rec.execution_time(),
                response_time: rec.response_time(),
                finished_at: rec.finished,
            },
        );
    }

    /// Read every client register, in client order (deterministic).
    pub fn samples(&self) -> impl Iterator<Item = &ClientSample> {
        self.latest.values()
    }

    /// Read the registers of clients whose last query belonged to `class`.
    pub fn samples_of_class(&self, class: ClassId) -> impl Iterator<Item = &ClientSample> + '_ {
        self.latest.values().filter(move |s| s.class == class)
    }

    /// Number of clients with a register.
    pub fn client_count(&self) -> usize {
        self.latest.len()
    }

    /// Average response time across the registers of `class`, ignoring
    /// samples that finished before `not_before` (stale registers from a
    /// previous control interval would bias the average). `None` when no
    /// fresh sample exists.
    pub fn avg_response_time(&self, class: ClassId, not_before: SimTime) -> Option<SimDuration> {
        let mut n = 0u64;
        let mut sum = 0.0;
        for s in self.samples_of_class(class) {
            if s.finished_at >= not_before {
                n += 1;
                sum += s.response_time.as_secs_f64();
            }
        }
        if n == 0 {
            None
        } else {
            Some(SimDuration::from_secs_f64(sum / n as f64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Timerons;
    use crate::query::QueryId;

    fn rec(client: u32, class: u16, submit: u64, finish: u64) -> QueryRecord {
        QueryRecord {
            id: QueryId(u64::from(client) * 1000 + finish),
            client: ClientId(client),
            class: ClassId(class),
            kind: QueryKind::Oltp,
            template: 0,
            estimated_cost: Timerons::new(50.0),
            submitted: SimTime::from_secs(submit),
            admitted: SimTime::from_secs(submit),
            finished: SimTime::from_secs(finish),
        }
    }

    #[test]
    fn keeps_only_latest_per_client() {
        let mut reg = SnapshotRegistry::new();
        reg.record(&rec(1, 3, 0, 2));
        reg.record(&rec(1, 3, 2, 10));
        assert_eq!(reg.client_count(), 1);
        let s = reg.samples().next().unwrap();
        assert_eq!(s.response_time, SimDuration::from_secs(8));
    }

    #[test]
    fn averages_only_fresh_samples_of_class() {
        let mut reg = SnapshotRegistry::new();
        reg.record(&rec(1, 3, 0, 2)); // resp 2 s, finished t=2
        reg.record(&rec(2, 3, 0, 6)); // resp 6 s, finished t=6
        reg.record(&rec(3, 1, 0, 100)); // other class
        let avg = reg.avg_response_time(ClassId(3), SimTime::ZERO).unwrap();
        assert!((avg.as_secs_f64() - 4.0).abs() < 1e-9);
        // Only the t=6 sample is fresh after t=5.
        let avg = reg
            .avg_response_time(ClassId(3), SimTime::from_secs(5))
            .unwrap();
        assert!((avg.as_secs_f64() - 6.0).abs() < 1e-9);
        // Nothing fresh after t=50.
        assert!(reg
            .avg_response_time(ClassId(3), SimTime::from_secs(50))
            .is_none());
    }

    #[test]
    fn samples_iterate_in_client_order() {
        let mut reg = SnapshotRegistry::new();
        for c in [4u32, 1, 3] {
            reg.record(&rec(c, 3, 0, 1));
        }
        let order: Vec<u32> = reg.samples().map(|s| s.client.0).collect();
        assert_eq!(order, vec![1, 3, 4]);
    }
}
