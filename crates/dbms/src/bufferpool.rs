//! Optional buffer-pool contention model.
//!
//! The paper placed TPC-H and TPC-C in separate databases precisely to
//! ignore "other sources of contention between OLTP and OLAP workloads,
//! such as buffer pools and lock lists" (§4). This module makes that
//! ignored dimension available as an opt-in extension: when configured, the
//! engine tracks the combined *working set* of all executing queries and
//! stretches I/O service times as the set outgrows the pool.
//!
//! The model is deliberately coarse — an aggregate hit-ratio curve, not a
//! page-level cache — because the experiments only need the *direction*:
//! more concurrent I/O-hungry work ⇒ lower hit ratio ⇒ slower I/O.

use serde::{Deserialize, Serialize};

/// Buffer-pool configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferPoolConfig {
    /// Pool capacity, in pages.
    pub pages: f64,
    /// Working-set pages per timeron of I/O-attributed cost (how much data
    /// a query touches relative to its optimizer cost).
    pub pages_per_io_timeron: f64,
    /// I/O slowdown at a 0 % hit ratio: service times scale by
    /// `1 + miss_penalty · (1 − hit_ratio)`.
    pub miss_penalty: f64,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        // Calibrated so the paper-scale workload (≈ 30 K timerons admitted,
        // ~75 % I/O) just fits: contention appears only beyond it.
        BufferPoolConfig {
            pages: 24_000.0,
            pages_per_io_timeron: 1.0,
            miss_penalty: 2.0,
        }
    }
}

impl BufferPoolConfig {
    /// Validate tunables.
    ///
    /// # Panics
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(self.pages > 0.0, "pool must have pages");
        assert!(
            self.pages_per_io_timeron >= 0.0,
            "pages per timeron must be non-negative"
        );
        assert!(self.miss_penalty >= 0.0, "penalty must be non-negative");
    }
}

/// Live buffer-pool state: the aggregate working set of executing queries.
#[derive(Debug, Clone)]
pub struct BufferPool {
    cfg: BufferPoolConfig,
    working_set: f64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new(cfg: BufferPoolConfig) -> Self {
        cfg.validate();
        BufferPool {
            cfg,
            working_set: 0.0,
        }
    }

    /// Working-set pages of a query with this I/O-attributed cost.
    pub fn pages_of(&self, io_timerons: f64) -> f64 {
        io_timerons * self.cfg.pages_per_io_timeron
    }

    /// A query was admitted: grow the working set.
    pub fn admit(&mut self, io_timerons: f64) {
        self.working_set += self.pages_of(io_timerons);
    }

    /// A query finished: shrink the working set.
    pub fn release(&mut self, io_timerons: f64) {
        self.working_set = (self.working_set - self.pages_of(io_timerons)).max(0.0);
    }

    /// Current aggregate working set, in pages.
    pub fn working_set(&self) -> f64 {
        self.working_set
    }

    /// Current hit ratio: 1 while the working set fits, `pages / ws` beyond.
    pub fn hit_ratio(&self) -> f64 {
        if self.working_set <= self.cfg.pages {
            1.0
        } else {
            self.cfg.pages / self.working_set
        }
    }

    /// Multiplier applied to I/O service times under the current hit ratio.
    pub fn io_factor(&self) -> f64 {
        1.0 + self.cfg.miss_penalty * (1.0 - self.hit_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_entirely_no_penalty() {
        let mut bp = BufferPool::new(BufferPoolConfig::default());
        bp.admit(10_000.0);
        assert_eq!(bp.hit_ratio(), 1.0);
        assert_eq!(bp.io_factor(), 1.0);
    }

    #[test]
    fn overflow_degrades_hit_ratio_and_stretches_io() {
        let mut bp = BufferPool::new(BufferPoolConfig {
            pages: 10_000.0,
            pages_per_io_timeron: 1.0,
            miss_penalty: 2.0,
        });
        bp.admit(20_000.0);
        assert!((bp.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((bp.io_factor() - 2.0).abs() < 1e-12);
        bp.admit(20_000.0);
        assert!((bp.hit_ratio() - 0.25).abs() < 1e-12);
        assert!(bp.io_factor() > 2.0);
    }

    #[test]
    fn release_restores_the_pool() {
        let mut bp = BufferPool::new(BufferPoolConfig {
            pages: 10_000.0,
            pages_per_io_timeron: 1.0,
            miss_penalty: 1.0,
        });
        bp.admit(30_000.0);
        let stressed = bp.io_factor();
        bp.release(25_000.0);
        assert!(bp.io_factor() < stressed);
        assert_eq!(bp.io_factor(), 1.0);
        // Releasing more than admitted clamps at zero.
        bp.release(1e9);
        assert_eq!(bp.working_set(), 0.0);
    }

    #[test]
    #[should_panic(expected = "pool must have pages")]
    fn zero_pool_panics() {
        let _ = BufferPool::new(BufferPoolConfig {
            pages: 0.0,
            pages_per_io_timeron: 1.0,
            miss_penalty: 1.0,
        });
    }
}
