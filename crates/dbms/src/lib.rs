//! # qsched-dbms
//!
//! A simulated database management system — the *substrate* of the Query
//! Scheduler reproduction.
//!
//! The paper (Niu et al., ICDE 2007) ran against IBM DB2 UDB 8.2 with Query
//! Patroller on a 2-CPU / 17-disk server. This crate substitutes a
//! discrete-event model of that stack that preserves everything the paper's
//! evaluation depends on:
//!
//! * **Cost-based execution.** Every query carries an optimizer cost estimate
//!   in *timerons* ([`cost::Timerons`]); its actual resource demand derives
//!   from a (noisy) true cost split into CPU and I/O work.
//! * **A central-server queueing model.** Queries alternate CPU bursts on a
//!   processor-sharing multi-core CPU ([`resource::PsCpu`]) and I/O bursts on
//!   a FCFS multi-disk array ([`resource::DiskArray`]) — the classic DBMS
//!   performance model. OLAP queries are long and I/O-dominant, OLTP
//!   transactions short and CPU-dominant, so growing the admitted OLAP cost
//!   degrades OLTP response roughly linearly (the paper's Figure 2).
//! * **A saturation model.** CPU efficiency declines once the total admitted
//!   cost exceeds a knee (buffer-pool/memory thrashing), reproducing the
//!   throughput-vs-system-cost-limit curve used to choose the 30 K-timeron
//!   system limit.
//! * **Query Patroller mechanism.** Interception of selected workload
//!   classes, a control table of query information, agent blocking, and the
//!   unblock ("release") API — including the per-query interception overhead
//!   that makes direct OLTP control impractical (§3 of the paper).
//! * **Snapshot monitor.** Per-client "most recently finished query" records,
//!   sampled by controllers to monitor the un-intercepted OLTP class.
//! * **Optional buffer-pool and lock-list contention** ([`bufferpool`],
//!   [`locklist`]) — the dimensions the paper deliberately excluded by
//!   separating the databases, available as opt-in extensions.
//!
//! The engine itself is policy-free: *who* gets released *when* is decided by
//! controllers in `qsched-core` via [`engine::Dbms::release`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod agent;
pub mod bufferpool;
pub mod config;
pub mod cost;
pub mod engine;
pub mod locklist;
pub mod metrics;
pub mod patroller;
pub mod query;
pub mod resource;
pub mod snapshot;
pub mod transport;

pub use config::{DbmsConfig, WatchdogConfig};
pub use cost::Timerons;
pub use engine::{Dbms, DbmsAccounting, DbmsEvent, DbmsNotice};
pub use metrics::DegradationStats;
pub use query::{ClassId, ClientId, Query, QueryId, QueryKind, QueryRecord};
pub use transport::{
    Admit, LeaseDirective, LeaseReceiver, LeaseState, LeaseStats, ReceiverStats, ReleaseEnvelope,
    ReleaseReceiver,
};
