//! Receiver half of the control-plane transport: the envelope that carries a
//! release command over an unreliable channel, and the Patroller-side state
//! that makes applying it idempotent.
//!
//! The controller (in `qsched-core`) owns the sender half — sequence-number
//! assignment, ack timeouts, retries. This module owns what the DBMS needs to
//! survive the channel's misbehavior:
//!
//! * **Duplicate suppression.** Every envelope carries a per-sender-epoch
//!   monotone sequence number; an already-seen `(epoch, seq)` is dropped
//!   before it can touch the Patroller. Retries and network duplicates are
//!   therefore indistinguishable and equally harmless.
//! * **Stale-message rejection.** The sender stamps each envelope with its
//!   restart epoch (incremented on every controller restart, persisted via
//!   checkpoints). After a restart the world fences the receiver to the new
//!   epoch; commands still in flight from the dead incarnation are rejected,
//!   so a pre-crash release cannot resurrect and unblock a query the
//!   restarted controller has already re-queued.
//!
//! Both books are ordinary `BTreeMap`/`BTreeSet` state: admission decisions
//! consume no randomness and schedule no events, so a receiver that only ever
//! sees fresh, in-epoch envelopes (the zero-fault case) is invisible in the
//! flight-recorder digest.

use crate::cost::Timerons;
use crate::query::QueryId;
use qsched_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A release command on the wire. `Copy` so it can ride inside the world's
/// event enum like every other DBMS event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReleaseEnvelope {
    /// Sender incarnation: bumped on every controller restart. The receiver
    /// rejects envelopes below its fenced epoch.
    pub epoch: u64,
    /// Monotone per-epoch sequence number; the duplicate-suppression key.
    pub seq: u64,
    /// The query this command releases.
    pub id: QueryId,
    /// When the sender handed the envelope to the transport (for the
    /// release-latency ledger).
    pub sent_at: SimTime,
}

/// Maximum envelopes one batch can carry. Fixed so a batch stays `Copy`
/// and rides inside the world's event enum without allocation, like every
/// other event.
pub const MAX_BATCH: usize = 8;

/// A batch of release commands on the wire: `len` envelopes with
/// *consecutive* sequence numbers starting at `first_seq`, all stamped with
/// the same sender epoch and handed to the transport at the same instant.
/// One batch is one wire message and one simulation event, amortizing the
/// per-release event overhead of the control plane; the receiver unpacks it
/// back into individual envelopes, so the dedup/fencing books and their
/// invariants are untouched by batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReleaseBatch {
    /// Sender incarnation (see [`ReleaseEnvelope::epoch`]).
    pub epoch: u64,
    /// Sequence number of the first envelope; envelope `i` carries
    /// `first_seq + i`.
    pub first_seq: u64,
    /// Number of live entries in `ids`.
    pub len: u8,
    /// The released queries, in sequence order (`ids[len..]` is padding).
    pub ids: [QueryId; MAX_BATCH],
    /// When the sender handed the batch to the transport.
    pub sent_at: SimTime,
}

impl ReleaseBatch {
    /// An empty batch whose first entry will carry `first_seq`.
    pub fn new(epoch: u64, first_seq: u64, sent_at: SimTime) -> Self {
        ReleaseBatch {
            epoch,
            first_seq,
            len: 0,
            ids: [QueryId(u64::MAX); MAX_BATCH],
            sent_at,
        }
    }

    /// Append a release. Returns `false` (and changes nothing) when full.
    pub fn push(&mut self, id: QueryId) -> bool {
        if usize::from(self.len) >= MAX_BATCH {
            return false;
        }
        self.ids[usize::from(self.len)] = id;
        self.len += 1;
        true
    }

    /// No live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// No room for another entry.
    pub fn is_full(&self) -> bool {
        usize::from(self.len) >= MAX_BATCH
    }

    /// Unpack into per-release envelopes (what the receiver books see).
    pub fn envelopes(&self) -> impl Iterator<Item = ReleaseEnvelope> + '_ {
        (0..usize::from(self.len)).map(move |i| ReleaseEnvelope {
            epoch: self.epoch,
            seq: self.first_seq + i as u64,
            id: self.ids[i],
            sent_at: self.sent_at,
        })
    }
}

/// Admission verdict for one envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// First sighting of this `(epoch, seq)` in the live epoch: apply it.
    Fresh,
    /// Already applied or already seen: suppress.
    Duplicate,
    /// From a fenced-off (pre-restart) sender incarnation: reject.
    Stale,
}

/// Receiver-side transport counters, embedded in the run report's transport
/// ledger.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReceiverStats {
    /// Envelopes presented to the receiver (fresh + duplicate + stale).
    pub received: u64,
    /// Envelopes admitted and applied (the release actually happened).
    pub applied: u64,
    /// Envelopes admitted whose release was a no-op (query no longer held —
    /// e.g. a watchdog force-release or an in-engine fault won the race).
    pub admitted_noop: u64,
    /// Duplicates suppressed by the `(epoch, seq)` book.
    pub deduped: u64,
    /// Envelopes rejected because their epoch predates the fence.
    pub stale_rejected: u64,
    /// Times a fresh envelope found its effect already applied — the
    /// exactly-once tripwire. The oracle asserts this stays zero.
    pub double_applied: u64,
    /// Sum of (delivery − send) latency over applied envelopes, in seconds.
    pub latency_total_secs: f64,
    /// Worst single delivery latency among applied envelopes, in seconds.
    pub latency_max_secs: f64,
}

impl ReceiverStats {
    /// Mean delivery latency over applied envelopes (seconds).
    pub fn latency_mean_secs(&self) -> f64 {
        if self.applied == 0 {
            0.0
        } else {
            self.latency_total_secs / self.applied as f64
        }
    }
}

/// The Patroller-side dedup/fencing book.
#[derive(Debug, Clone, Default)]
pub struct ReleaseReceiver {
    /// Lowest sender epoch still accepted. Raised by [`observe_epoch`]
    /// (typically right after a controller restart).
    ///
    /// [`observe_epoch`]: ReleaseReceiver::observe_epoch
    min_epoch: u64,
    /// Sequence numbers already seen, per live epoch. Epochs below the fence
    /// are pruned wholesale when the fence moves.
    seen: BTreeMap<u64, BTreeSet<u64>>,
    /// Queries whose release effect was applied through this receiver —
    /// backs the `double_applied` tripwire.
    applied_ids: BTreeSet<QueryId>,
    /// Timestamps (and latencies, in seconds) of applied deliveries, for the
    /// per-partition-window recovery ledger.
    deliveries: Vec<(SimTime, f64)>,
    stats: ReceiverStats,
}

impl ReleaseReceiver {
    /// Classify an envelope and record it in the dedup book. `Fresh` means
    /// the caller must now apply the effect (and then call
    /// [`note_applied`](Self::note_applied) if it took).
    pub fn admit(&mut self, env: &ReleaseEnvelope) -> Admit {
        self.stats.received += 1;
        if env.epoch < self.min_epoch {
            self.stats.stale_rejected += 1;
            return Admit::Stale;
        }
        if !self.seen.entry(env.epoch).or_default().insert(env.seq) {
            self.stats.deduped += 1;
            return Admit::Duplicate;
        }
        Admit::Fresh
    }

    /// Record the outcome of applying a fresh envelope. `applied` is whether
    /// the release actually unblocked the query.
    pub fn note_outcome(&mut self, env: &ReleaseEnvelope, now: SimTime, applied: bool) {
        if !applied {
            self.stats.admitted_noop += 1;
            return;
        }
        if !self.applied_ids.insert(env.id) {
            // The same query's release took effect twice — the invariant the
            // whole protocol exists to prevent. Count it; the oracle panics.
            self.stats.double_applied += 1;
        }
        let latency = now.saturating_since(env.sent_at).as_secs_f64();
        self.stats.applied += 1;
        self.stats.latency_total_secs += latency;
        self.stats.latency_max_secs = self.stats.latency_max_secs.max(latency);
        self.deliveries.push((now, latency));
    }

    /// Fence off every sender incarnation below `epoch`: envelopes from
    /// older epochs are rejected from now on, and their dedup books are
    /// pruned. Called by the world right after a controller restart, within
    /// the same event — there is no window in which a pre-crash envelope
    /// could still be admitted.
    pub fn observe_epoch(&mut self, epoch: u64) {
        if epoch > self.min_epoch {
            self.min_epoch = epoch;
            self.seen = self.seen.split_off(&epoch);
        }
    }

    /// The current epoch fence.
    pub fn min_epoch(&self) -> u64 {
        self.min_epoch
    }

    /// Receiver-side counters.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// Applied deliveries as `(at, latency_secs)`, in delivery order — the
    /// raw series behind partition-window recovery scoring.
    pub fn deliveries(&self) -> &[(SimTime, f64)] {
        &self.deliveries
    }

    /// Whether any envelope ever passed through this receiver (used to
    /// decide if a run gets a transport ledger at all).
    pub fn saw_traffic(&self) -> bool {
        self.stats.received > 0
    }
}

/// A fleet `SetSystemLimit` directive on the wire: one granted allocation
/// with a lease TTL, stamped with the global allocator's restart epoch.
/// The shard-side [`LeaseReceiver`] fences stale allocator incarnations
/// with exactly the discipline [`ReleaseReceiver`] applies to pre-crash
/// releases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseDirective {
    /// Allocator incarnation: bumped past the highest fenced epoch on every
    /// allocator cold restart. The receiver rejects directives below its
    /// fenced epoch.
    pub epoch: u64,
    /// Monotone sequence number; the duplicate-suppression key (unique per
    /// receiver within an epoch).
    pub seq: u64,
    /// The granted system cost limit.
    pub limit: Timerons,
    /// The lease runs out at this instant unless a fresh directive arrives
    /// first; an unrenewed shard autonomously degrades to its fallback.
    pub lease_until: SimTime,
    /// When the allocator handed the directive to the transport.
    pub sent_at: SimTime,
}

/// The lease a shard currently operates under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseState {
    /// The leased system cost limit.
    pub limit: Timerons,
    /// When the lease runs out unrenewed.
    pub lease_until: SimTime,
    /// Epoch of the allocator incarnation that granted it.
    pub epoch: u64,
}

/// Shard-side lease-book counters, surfaced in the fleet resilience ledger.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LeaseStats {
    /// Directives presented to the receiver (fresh + duplicate + stale).
    pub received: u64,
    /// Fresh directives that armed or renewed the lease.
    pub renewed: u64,
    /// Duplicates suppressed by the `(epoch, seq)` book.
    pub deduped: u64,
    /// Directives rejected because their epoch predates the fence.
    pub stale_rejected: u64,
    /// Times the lease ran out unrenewed and the shard entered autonomous
    /// fallback.
    pub expiries: u64,
}

/// The shard-side lease book: duplicate suppression, stale-epoch fencing
/// and TTL expiry for fleet limit directives.
///
/// Mirrors [`ReleaseReceiver`]'s admission discipline — same `(epoch, seq)`
/// dedup book, same forward-only epoch fence — plus the lease state machine:
/// only a [`Admit::Fresh`] directive ever arms (or re-arms) the lease, so an
/// expired lease can never be resurrected by a duplicate or by a stale
/// incarnation's directive still in flight. Pure `BTreeMap`/`BTreeSet`
/// state: admission consumes no randomness, and a receiver that only ever
/// sees fresh in-epoch directives (the zero-fault case) is invisible in the
/// flight-recorder digest.
#[derive(Debug, Clone, Default)]
pub struct LeaseReceiver {
    /// Lowest allocator epoch still accepted; raised by every fresh
    /// directive from a newer incarnation (and by
    /// [`LeaseReceiver::observe_epoch`]).
    min_epoch: u64,
    /// Sequence numbers already seen, per live epoch.
    seen: BTreeMap<u64, BTreeSet<u64>>,
    lease: Option<LeaseState>,
    /// The current lease ran out unrenewed (the shard is in autonomous
    /// fallback until a fresh directive arrives).
    expired: bool,
    stats: LeaseStats,
}

impl LeaseReceiver {
    /// Classify a directive at its arrival instant. [`Admit::Fresh`] means
    /// the lease is now armed with the directive's limit and TTL (the
    /// caller applies the limit and leaves autonomy if it was in it);
    /// duplicates and stale-epoch directives change no lease state at all.
    pub fn admit(&mut self, d: &LeaseDirective) -> Admit {
        self.stats.received += 1;
        if d.epoch < self.min_epoch {
            self.stats.stale_rejected += 1;
            return Admit::Stale;
        }
        if !self.seen.entry(d.epoch).or_default().insert(d.seq) {
            self.stats.deduped += 1;
            return Admit::Duplicate;
        }
        // Fresh: a directive from a newer incarnation is itself the fence
        // signal (there is no shard-side restart event to observe), so the
        // fence moves forward and the dead incarnations' books are pruned.
        if d.epoch > self.min_epoch {
            self.min_epoch = d.epoch;
            self.seen = self.seen.split_off(&d.epoch);
        }
        self.lease = Some(LeaseState {
            limit: d.limit,
            lease_until: d.lease_until,
            epoch: d.epoch,
        });
        self.expired = false;
        self.stats.renewed += 1;
        Admit::Fresh
    }

    /// Expire the lease if its TTL has run out by `now` and it has not
    /// already expired. Returns the lapsed lease exactly once per expiry
    /// (the caller degrades to its fallback limit and logs the autonomy
    /// window); subsequent calls return `None` until a fresh directive
    /// re-arms the lease. Callers processing an instant where a renewal
    /// arrives *at* `lease_until` must admit the renewal first — the
    /// renewal wins the tie.
    pub fn expire_due(&mut self, now: SimTime) -> Option<LeaseState> {
        let lease = self.lease?;
        if self.expired || now < lease.lease_until {
            return None;
        }
        self.expired = true;
        self.stats.expiries += 1;
        Some(lease)
    }

    /// Fence off every allocator incarnation below `epoch` without waiting
    /// for a directive from it.
    pub fn observe_epoch(&mut self, epoch: u64) {
        if epoch > self.min_epoch {
            self.min_epoch = epoch;
            self.seen = self.seen.split_off(&epoch);
        }
    }

    /// The lease currently armed (it may already have expired — see
    /// [`LeaseReceiver::is_expired`]).
    pub fn lease(&self) -> Option<&LeaseState> {
        self.lease.as_ref()
    }

    /// Whether the armed lease has lapsed unrenewed (the shard is running
    /// on its autonomous fallback limit).
    pub fn is_expired(&self) -> bool {
        self.expired
    }

    /// The current epoch fence.
    pub fn min_epoch(&self) -> u64 {
        self.min_epoch
    }

    /// Lease-book counters.
    pub fn stats(&self) -> &LeaseStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(epoch: u64, seq: u64, id: u64) -> ReleaseEnvelope {
        ReleaseEnvelope {
            epoch,
            seq,
            id: QueryId(id),
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn duplicates_are_suppressed_per_epoch() {
        let mut rx = ReleaseReceiver::default();
        assert_eq!(rx.admit(&env(0, 1, 7)), Admit::Fresh);
        assert_eq!(rx.admit(&env(0, 1, 7)), Admit::Duplicate);
        assert_eq!(rx.admit(&env(0, 2, 8)), Admit::Fresh);
        // A new epoch has its own sequence space.
        assert_eq!(rx.admit(&env(1, 1, 9)), Admit::Fresh);
        assert_eq!(rx.stats().deduped, 1);
    }

    #[test]
    fn epoch_fence_rejects_pre_restart_envelopes() {
        let mut rx = ReleaseReceiver::default();
        assert_eq!(rx.admit(&env(0, 1, 7)), Admit::Fresh);
        rx.observe_epoch(1);
        assert_eq!(rx.admit(&env(0, 2, 8)), Admit::Stale);
        assert_eq!(rx.admit(&env(1, 1, 8)), Admit::Fresh);
        // Fences only move forward.
        rx.observe_epoch(0);
        assert_eq!(rx.min_epoch(), 1);
        assert_eq!(rx.stats().stale_rejected, 1);
    }

    #[test]
    fn double_apply_trips_the_counter() {
        let mut rx = ReleaseReceiver::default();
        let a = env(0, 1, 7);
        let b = env(0, 2, 7); // distinct seq, same query
        assert_eq!(rx.admit(&a), Admit::Fresh);
        rx.note_outcome(&a, SimTime::ZERO, true);
        assert_eq!(rx.admit(&b), Admit::Fresh);
        rx.note_outcome(&b, SimTime::ZERO, true);
        assert_eq!(rx.stats().double_applied, 1);
        assert_eq!(rx.stats().applied, 2);
    }

    fn lease(epoch: u64, seq: u64, limit: f64, until_secs: u64) -> LeaseDirective {
        LeaseDirective {
            epoch,
            seq,
            limit: Timerons::new(limit),
            lease_until: SimTime::from_secs(until_secs),
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn fresh_directives_arm_and_renew_the_lease() {
        let mut rx = LeaseReceiver::default();
        assert_eq!(rx.admit(&lease(1, 0, 10_000.0, 60)), Admit::Fresh);
        assert_eq!(rx.lease().unwrap().limit, Timerons::new(10_000.0));
        assert_eq!(rx.admit(&lease(1, 1, 12_000.0, 120)), Admit::Fresh);
        let st = rx.lease().unwrap();
        assert_eq!(st.limit, Timerons::new(12_000.0));
        assert_eq!(st.lease_until, SimTime::from_secs(120));
        // Renewed in time: no expiry at t = 60.
        assert_eq!(rx.expire_due(SimTime::from_secs(60)), None);
        assert_eq!(rx.stats().renewed, 2);
    }

    #[test]
    fn expiry_fires_once_and_only_fresh_rearms() {
        let mut rx = LeaseReceiver::default();
        assert_eq!(rx.admit(&lease(1, 0, 10_000.0, 60)), Admit::Fresh);
        let lapsed = rx
            .expire_due(SimTime::from_secs(60))
            .expect("lapses at TTL");
        assert_eq!(lapsed.limit, Timerons::new(10_000.0));
        assert!(rx.is_expired());
        // Idempotent: one expiry event per lapse.
        assert_eq!(rx.expire_due(SimTime::from_secs(90)), None);
        // A duplicate of the old grant must NOT resurrect the lease...
        assert_eq!(rx.admit(&lease(1, 0, 10_000.0, 60)), Admit::Duplicate);
        assert!(rx.is_expired(), "duplicate resurrected an expired lease");
        // ...but a fresh renewal does.
        assert_eq!(rx.admit(&lease(1, 1, 9_000.0, 180)), Admit::Fresh);
        assert!(!rx.is_expired());
        assert_eq!(rx.stats().expiries, 1);
    }

    #[test]
    fn stale_allocator_epochs_are_fenced() {
        let mut rx = LeaseReceiver::default();
        assert_eq!(rx.admit(&lease(1, 0, 10_000.0, 60)), Admit::Fresh);
        // A directive from the restarted allocator fences the old epoch...
        assert_eq!(rx.admit(&lease(2, 0, 8_000.0, 120)), Admit::Fresh);
        assert_eq!(rx.min_epoch(), 2);
        // ...so the dead incarnation's in-flight directive is rejected and
        // touches nothing.
        assert_eq!(rx.admit(&lease(1, 1, 99_999.0, 999)), Admit::Stale);
        let st = rx.lease().unwrap();
        assert_eq!(st.limit, Timerons::new(8_000.0));
        assert_eq!(st.epoch, 2);
        assert_eq!(rx.stats().stale_rejected, 1);
        // observe_epoch only moves forward.
        rx.observe_epoch(1);
        assert_eq!(rx.min_epoch(), 2);
    }
}
