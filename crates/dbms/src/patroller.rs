//! Query Patroller — the interception *mechanism*.
//!
//! DB2 Query Patroller, as used by the paper, is configured to "automatically
//! intercept all queries, record detailed query information, and block the
//! DB2 agent responsible for executing the query until an explicit operator
//! command is received". This module reproduces that mechanism:
//!
//! * per-class interception on/off (the paper turns QP **off** for the OLTP
//!   class because the overhead dwarfs sub-second statements);
//! * a *control table* of query information readable by monitors;
//! * a held-query set released only by the explicit unblock API.
//!
//! Release *policy* — which query to unblock when — lives in the controllers
//! of `qsched-core`, not here.

use crate::cost::Timerons;
use crate::query::{ClassId, ClientId, Query, QueryId, QueryKind};
use qsched_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// A row of the Query Patroller control table: everything the Monitor can
/// learn about an intercepted query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlRow {
    /// The intercepted query.
    pub id: QueryId,
    /// Submitting client.
    pub client: ClientId,
    /// Service class.
    pub class: ClassId,
    /// OLAP or OLTP.
    pub kind: QueryKind,
    /// Workload template index.
    pub template: u16,
    /// Optimizer cost estimate — the basis of cost-based control.
    pub estimated_cost: Timerons,
    /// When the query entered the control table.
    pub intercepted_at: SimTime,
}

/// Interception configuration: which classes get intercepted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InterceptPolicy {
    bypass: HashSet<ClassId>,
    intercept_all: bool,
}

impl InterceptPolicy {
    /// Intercept every class (the paper's QP configuration for OLAP).
    pub fn intercept_all() -> Self {
        InterceptPolicy {
            bypass: HashSet::new(),
            intercept_all: true,
        }
    }

    /// Intercept nothing (the "no class control" baseline).
    pub fn intercept_none() -> Self {
        InterceptPolicy {
            bypass: HashSet::new(),
            intercept_all: false,
        }
    }

    /// Exempt `class` from interception (e.g. the OLTP class).
    pub fn with_bypass(mut self, class: ClassId) -> Self {
        self.bypass.insert(class);
        self
    }

    /// Should a query of `class` be intercepted?
    pub fn intercepts(&self, class: ClassId) -> bool {
        self.intercept_all && !self.bypass.contains(&class)
    }
}

/// The Query Patroller state: held queries and the control table.
#[derive(Debug, Clone)]
pub struct Patroller {
    policy: InterceptPolicy,
    /// Held queries, keyed for deterministic iteration order.
    held: BTreeMap<QueryId, ControlRow>,
    /// Rows of completed/released queries are retained for monitor reads
    /// until pruned (DB2 QP keeps historical query information).
    history: Vec<ControlRow>,
    history_cap: usize,
    total_intercepted: u64,
}

impl Patroller {
    /// A patroller with the given interception policy.
    pub fn new(policy: InterceptPolicy) -> Self {
        Patroller {
            policy,
            held: BTreeMap::new(),
            history: Vec::new(),
            history_cap: 10_000,
            total_intercepted: 0,
        }
    }

    /// The active interception policy.
    pub fn policy(&self) -> &InterceptPolicy {
        &self.policy
    }

    /// Replace the interception policy (runtime reconfiguration).
    pub fn set_policy(&mut self, policy: InterceptPolicy) {
        self.policy = policy;
    }

    /// Whether this query would be intercepted.
    pub fn intercepts(&self, q: &Query) -> bool {
        self.policy.intercepts(q.class)
    }

    /// Record an interception: the query enters the control table as held.
    pub fn hold(&mut self, q: &Query, now: SimTime) -> ControlRow {
        let row = ControlRow {
            id: q.id,
            client: q.client,
            class: q.class,
            kind: q.kind,
            template: q.template,
            estimated_cost: q.estimated_cost,
            intercepted_at: now,
        };
        let prev = self.held.insert(q.id, row);
        debug_assert!(prev.is_none(), "query held twice: {:?}", q.id);
        self.total_intercepted += 1;
        row
    }

    /// Release a held query via the unblock API. Returns its control row,
    /// or `None` if the query is not held (double release is a controller
    /// bug surfaced to the caller, not a panic, since controllers are
    /// user-pluggable).
    pub fn release(&mut self, id: QueryId) -> Option<ControlRow> {
        let row = self.held.remove(&id)?;
        if self.history.len() >= self.history_cap {
            // Keep the newest rows; drop the oldest half in one amortised move.
            let keep = self.history_cap / 2;
            self.history.drain(..self.history.len() - keep);
        }
        self.history.push(row);
        Some(row)
    }

    /// Is this query currently held?
    pub fn is_held(&self, id: QueryId) -> bool {
        self.held.contains_key(&id)
    }

    /// Number of queries currently held.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Iterate held queries in `QueryId` order (deterministic).
    pub fn held_rows(&self) -> impl Iterator<Item = &ControlRow> {
        self.held.values()
    }

    /// Sum of estimated costs of all held queries of `class`.
    pub fn held_cost_of_class(&self, class: ClassId) -> Timerons {
        self.held
            .values()
            .filter(|r| r.class == class)
            .map(|r| r.estimated_cost)
            .sum()
    }

    /// Total queries intercepted since construction.
    pub fn total_intercepted(&self) -> u64 {
        self.total_intercepted
    }

    /// Enumerate the control table for crash recovery — the "list blocked
    /// queries" call of the real QP unblock interface. Returns every held
    /// row ordered by interception time (ties broken by id), i.e. the order
    /// in which the queries originally queued, so a restarted controller
    /// can rebuild its class queues without reordering anyone. Comparing
    /// this enumeration against a pre-crash checkpoint is also how lost
    /// release commands are detected: a query the old incarnation believed
    /// released but which still appears here never left the control table.
    pub fn resync_rows(&self) -> Vec<ControlRow> {
        let mut rows: Vec<ControlRow> = self.held.values().copied().collect();
        rows.sort_by_key(|r| (r.intercepted_at, r.id));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ExecShape;
    use qsched_sim::SimDuration;

    fn query(id: u64, class: u16) -> Query {
        Query {
            id: QueryId(id),
            client: ClientId(0),
            class: ClassId(class),
            kind: QueryKind::Olap,
            template: 1,
            estimated_cost: Timerons::new(100.0),
            true_cost: Timerons::new(100.0),
            shape: ExecShape::new(SimDuration::from_secs(1), SimDuration::from_secs(1), 1),
        }
    }

    #[test]
    fn policy_bypass() {
        let p = InterceptPolicy::intercept_all().with_bypass(ClassId(3));
        assert!(p.intercepts(ClassId(1)));
        assert!(!p.intercepts(ClassId(3)));
        assert!(!InterceptPolicy::intercept_none().intercepts(ClassId(1)));
    }

    #[test]
    fn hold_release_round_trip() {
        let mut p = Patroller::new(InterceptPolicy::intercept_all());
        let q = query(7, 1);
        p.hold(&q, SimTime::from_secs(5));
        assert!(p.is_held(QueryId(7)));
        assert_eq!(p.held_count(), 1);
        let row = p.release(QueryId(7)).unwrap();
        assert_eq!(row.id, QueryId(7));
        assert_eq!(row.intercepted_at, SimTime::from_secs(5));
        assert!(!p.is_held(QueryId(7)));
        // Double release returns None rather than panicking.
        assert!(p.release(QueryId(7)).is_none());
    }

    #[test]
    fn held_cost_sums_per_class() {
        let mut p = Patroller::new(InterceptPolicy::intercept_all());
        p.hold(&query(1, 1), SimTime::ZERO);
        p.hold(&query(2, 1), SimTime::ZERO);
        p.hold(&query(3, 2), SimTime::ZERO);
        assert_eq!(p.held_cost_of_class(ClassId(1)).get(), 200.0);
        assert_eq!(p.held_cost_of_class(ClassId(2)).get(), 100.0);
        assert_eq!(p.held_cost_of_class(ClassId(9)).get(), 0.0);
    }

    #[test]
    fn held_rows_iterate_in_id_order() {
        let mut p = Patroller::new(InterceptPolicy::intercept_all());
        for id in [5u64, 1, 9, 3] {
            p.hold(&query(id, 1), SimTime::ZERO);
        }
        let ids: Vec<u64> = p.held_rows().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn resync_rows_order_by_interception_time() {
        let mut p = Patroller::new(InterceptPolicy::intercept_all());
        p.hold(&query(9, 1), SimTime::from_secs(1));
        p.hold(&query(2, 1), SimTime::from_secs(3));
        p.hold(&query(5, 2), SimTime::from_secs(2));
        p.hold(&query(1, 2), SimTime::from_secs(3)); // tie with id 2 → id order
        let ids: Vec<u64> = p.resync_rows().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![9, 5, 1, 2]);
        // A released query leaves the enumeration.
        p.release(QueryId(5));
        let ids: Vec<u64> = p.resync_rows().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![9, 1, 2]);
    }

    #[test]
    fn history_is_bounded() {
        let mut p = Patroller::new(InterceptPolicy::intercept_all());
        for id in 0..25_000u64 {
            p.hold(&query(id, 1), SimTime::ZERO);
            p.release(QueryId(id));
        }
        assert_eq!(p.total_intercepted(), 25_000);
        assert!(p.history.len() <= 10_000);
    }
}
