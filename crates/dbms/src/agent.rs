//! The DB2 agent pool.
//!
//! Every query that has entered the DBMS — held by Query Patroller or
//! executing — occupies one agent. DB2 QP "blocks the DB2 agent responsible
//! for executing the query until an explicit operator command is received",
//! so held queries consume agents too. When the pool is exhausted new
//! submissions wait in FIFO order.

use crate::query::QueryId;
use std::collections::VecDeque;

/// FIFO agent pool.
#[derive(Debug, Clone)]
pub struct AgentPool {
    capacity: u32,
    in_use: u32,
    waiters: VecDeque<QueryId>,
    peak_in_use: u32,
}

impl AgentPool {
    /// A pool of `capacity` agents.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity >= 1, "need at least one agent");
        AgentPool {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            peak_in_use: 0,
        }
    }

    /// Try to acquire an agent for `q`. Returns `true` on success; on
    /// failure the query is queued and will be returned by a later
    /// [`AgentPool::release`].
    pub fn acquire(&mut self, q: QueryId) -> bool {
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.peak_in_use = self.peak_in_use.max(self.in_use);
            true
        } else {
            self.waiters.push_back(q);
            false
        }
    }

    /// Release one agent. If a query is waiting, the agent passes directly
    /// to it and its id is returned (the pool stays fully utilised).
    ///
    /// # Panics
    /// Panics if no agent was in use.
    pub fn release(&mut self) -> Option<QueryId> {
        assert!(self.in_use > 0, "agent released but none in use");
        match self.waiters.pop_front() {
            Some(next) => Some(next),
            None => {
                self.in_use -= 1;
                None
            }
        }
    }

    /// Agents currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Queries waiting for an agent.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Historical peak of agents held.
    pub fn peak_in_use(&self) -> u32 {
        self.peak_in_use
    }

    /// Total pool size.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquires_up_to_capacity() {
        let mut p = AgentPool::new(2);
        assert!(p.acquire(QueryId(1)));
        assert!(p.acquire(QueryId(2)));
        assert!(!p.acquire(QueryId(3)));
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.waiting(), 1);
    }

    #[test]
    fn release_hands_agent_to_waiter_fifo() {
        let mut p = AgentPool::new(1);
        assert!(p.acquire(QueryId(1)));
        assert!(!p.acquire(QueryId(2)));
        assert!(!p.acquire(QueryId(3)));
        assert_eq!(p.release(), Some(QueryId(2)));
        assert_eq!(p.in_use(), 1); // agent moved, not freed
        assert_eq!(p.release(), Some(QueryId(3)));
        assert_eq!(p.release(), None);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut p = AgentPool::new(8);
        for i in 0..5 {
            p.acquire(QueryId(i));
        }
        for _ in 0..5 {
            p.release();
        }
        assert_eq!(p.peak_in_use(), 5);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "none in use")]
    fn over_release_panics() {
        let mut p = AgentPool::new(1);
        let _ = p.release();
    }
}
