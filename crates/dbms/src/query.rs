//! Query identity, shape and lifecycle records.

use crate::cost::Timerons;
use qsched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a submitted query, assigned by the submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u64);

/// Identifier of the submitting client (one closed-loop session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

/// Identifier of a workload / service class (assigned by the workload spec;
/// interpreted by controllers, opaque to the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u16);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// Broad query type — drives which performance metric applies (the paper uses
/// *query velocity* for OLAP classes and *average response time* for OLTP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// Long, I/O-dominant decision-support query (TPC-H-like).
    Olap,
    /// Short, CPU-dominant transaction (TPC-C-like).
    Oltp,
}

/// The execution shape of a query: how its true resource demand is spread
/// over alternating CPU and I/O bursts (the central-server model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecShape {
    /// Total CPU work, in core-seconds, at full speed with no contention.
    pub cpu_work: SimDuration,
    /// Total I/O work, in disk-seconds, with no queueing.
    pub io_work: SimDuration,
    /// Number of CPU→I/O cycles the work is split into (≥ 1).
    pub cycles: u32,
    /// CPU resource intensity (weighted-processor-sharing weight, ≥ 1):
    /// expensive queries consume CPU in proportion to their cost.
    pub weight: f64,
}

impl ExecShape {
    /// Build a unit-weight shape, validating the cycle count.
    ///
    /// # Panics
    /// Panics if `cycles == 0`.
    pub fn new(cpu_work: SimDuration, io_work: SimDuration, cycles: u32) -> Self {
        assert!(cycles >= 1, "a query needs at least one execution cycle");
        ExecShape {
            cpu_work,
            io_work,
            cycles,
            weight: 1.0,
        }
    }

    /// Set the CPU resource intensity.
    ///
    /// # Panics
    /// Panics unless `weight >= 1`.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight >= 1.0 && weight.is_finite(),
            "invalid shape weight {weight}"
        );
        self.weight = weight;
        self
    }

    /// CPU work per cycle.
    pub fn cpu_per_cycle(&self) -> SimDuration {
        self.cpu_work / u64::from(self.cycles)
    }

    /// I/O work per cycle.
    pub fn io_per_cycle(&self) -> SimDuration {
        self.io_work / u64::from(self.cycles)
    }

    /// The minimum possible execution time (no contention, full efficiency).
    pub fn solo_time(&self) -> SimDuration {
        self.cpu_work + self.io_work
    }
}

/// A query as submitted to the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Unique id (assigned by the workload generator).
    pub id: QueryId,
    /// Submitting client.
    pub client: ClientId,
    /// Service class this query belongs to.
    pub class: ClassId,
    /// OLAP or OLTP.
    pub kind: QueryKind,
    /// Workload-defined template index (e.g. TPC-H query number), for reports.
    pub template: u16,
    /// The optimizer's cost *estimate* — what cost-based control sees.
    pub estimated_cost: Timerons,
    /// The true cost driving actual resource demand (estimate × noise).
    pub true_cost: Timerons,
    /// Actual execution shape.
    pub shape: ExecShape,
}

/// Full lifecycle record of a completed query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The query's id.
    pub id: QueryId,
    /// Submitting client.
    pub client: ClientId,
    /// Service class.
    pub class: ClassId,
    /// OLAP or OLTP.
    pub kind: QueryKind,
    /// Workload template index.
    pub template: u16,
    /// Optimizer cost estimate.
    pub estimated_cost: Timerons,
    /// When the client submitted the query.
    pub submitted: SimTime,
    /// When the query was admitted into the engine (released by the
    /// controller, or immediately if not intercepted).
    pub admitted: SimTime,
    /// When the query finished.
    pub finished: SimTime,
}

impl QueryRecord {
    /// Time spent *executing in the DBMS*: admission to completion.
    ///
    /// This matches the paper's `Execution_Time` — the query is "running in
    /// the DBMS" from release onward (internal engine queueing included).
    pub fn execution_time(&self) -> SimDuration {
        self.finished.saturating_since(self.admitted)
    }

    /// Client-observed response time: submission to completion, including
    /// time held by the workload adaptation mechanism.
    pub fn response_time(&self) -> SimDuration {
        self.finished.saturating_since(self.submitted)
    }

    /// Time held by the adaptation mechanism before admission.
    pub fn held_time(&self) -> SimDuration {
        self.admitted.saturating_since(self.submitted)
    }

    /// Query velocity: `execution_time / response_time ∈ (0, 1]`.
    ///
    /// An instantaneous query (zero response time) has velocity 1 by
    /// convention — it experienced no delay.
    pub fn velocity(&self) -> f64 {
        let resp = self.response_time();
        if resp.is_zero() {
            1.0
        } else {
            self.execution_time().ratio(resp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(submit_s: u64, admit_s: u64, finish_s: u64) -> QueryRecord {
        QueryRecord {
            id: QueryId(1),
            client: ClientId(0),
            class: ClassId(1),
            kind: QueryKind::Olap,
            template: 3,
            estimated_cost: Timerons::new(100.0),
            submitted: SimTime::from_secs(submit_s),
            admitted: SimTime::from_secs(admit_s),
            finished: SimTime::from_secs(finish_s),
        }
    }

    #[test]
    fn lifecycle_durations() {
        let r = record(10, 15, 35);
        assert_eq!(r.held_time(), SimDuration::from_secs(5));
        assert_eq!(r.execution_time(), SimDuration::from_secs(20));
        assert_eq!(r.response_time(), SimDuration::from_secs(25));
        assert!((r.velocity() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn velocity_is_one_without_holding() {
        let r = record(10, 10, 30);
        assert!((r.velocity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_query_velocity_is_one() {
        let r = record(10, 10, 10);
        assert_eq!(r.velocity(), 1.0);
    }

    #[test]
    fn velocity_in_unit_interval() {
        for (s, a, f) in [(0u64, 0u64, 1u64), (0, 5, 6), (0, 100, 101), (3, 3, 3)] {
            let v = record(s, a, f).velocity();
            assert!((0.0..=1.0).contains(&v), "velocity {v} out of range");
        }
    }

    #[test]
    fn exec_shape_split() {
        let s = ExecShape::new(SimDuration::from_secs(4), SimDuration::from_secs(8), 4);
        assert_eq!(s.cpu_per_cycle(), SimDuration::from_secs(1));
        assert_eq!(s.io_per_cycle(), SimDuration::from_secs(2));
        assert_eq!(s.solo_time(), SimDuration::from_secs(12));
    }

    #[test]
    #[should_panic(expected = "at least one execution cycle")]
    fn zero_cycles_panics() {
        let _ = ExecShape::new(SimDuration::ZERO, SimDuration::ZERO, 0);
    }
}
