//! The simulated hardware: a processor-sharing multi-core CPU and a FCFS
//! multi-disk I/O subsystem — the two stations of the classic central-server
//! DBMS performance model.
//!
//! ## Virtual-time scheduling (why the CPU kernel is O(log n))
//!
//! Under weighted processor sharing every resident job drains at
//!
//! ```text
//! rate_j = speed · min(w_j, cores) · min(1, cores / Σw)
//! ```
//!
//! The rate is *separable*: `rate_j = shared_factor · cap_j` where
//! `shared_factor = speed · min(1, cores/Σw)` depends only on the mix and
//! `cap_j = min(w_j, cores)` is a per-job **constant** (weights never change
//! after admission and `cores` is fixed). So instead of draining every job on
//! every clock advance (O(n)), the kernel keeps one global virtual-service
//! accumulator `V` with `dV/dt = shared_factor`: a job admitted with `work`
//! core-seconds finishes exactly when `V` reaches the constant *finish tag*
//! `V_admit + work / cap_j`. Membership and speed changes alter `dV/dt`, not
//! the tags, so
//!
//! * `advance` is O(1) + O(log n) per completion actually crossed,
//! * `next_completion` is a heap peek (the minimum tag),
//! * add/remove are O(log n) via an indexed binary min-heap.
//!
//! The straightforward O(n)-per-event kernel is retained as
//! [`NaivePsCpu`] (tests and the `naive-ps` feature) and the equivalence
//! swarm below proves the two produce identical completion orders and
//! completion times within 1e-9 relative tolerance.

use qsched_sim::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Smallest remaining work (in seconds) still considered unfinished.
const WORK_EPSILON: f64 = 1e-9;

/// A minimal FxHash-style hasher: the id→slot maps sit on the per-event hot
/// path, and SipHash dominates their cost for integer-like keys. Folding
/// multiply hashing is deterministic and plenty for job ids.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// One resident job in the virtual-time kernel.
#[derive(Debug, Clone)]
struct Slot<J> {
    id: J,
    weight: f64,
    /// `min(weight, cores)`: the job's constant service multiplier.
    cap: f64,
    /// Virtual finish tag: `V_admit + work / cap`. Constant for the job's
    /// whole residency.
    tag: f64,
    /// Admission sequence number — FIFO tie-break between equal tags.
    seq: u64,
    /// Position of this slot's arena index inside `heap`.
    heap_pos: usize,
}

/// A multi-core CPU under **weighted** processor sharing.
///
/// Every resident job has a weight `w ≥ 1` — its *resource intensity*
/// (degree of parallelism, prefetch aggressiveness, buffer-pool footprint).
/// A job receives service at rate
///
/// ```text
/// rate_i = speed · min(w_i, cores) · min(1, cores / Σw)
/// ```
///
/// core-seconds per second: when total weight fits the cores every job runs
/// at its full intensity (capped at the machine size), and under contention
/// capacity is shared *in proportion to weight*. This is what couples the
/// admitted OLAP **cost** to OLTP response time (the paper's Figure 2): an
/// expensive decision-support query pressures the CPU in proportion to its
/// optimizer cost, not merely as one more thread. A weight of 1 for every
/// job degenerates to egalitarian processor sharing. `speed ∈ (0, 1]` is
/// the engine's thrashing efficiency factor.
///
/// Internally the kernel runs on virtual time (see the module docs): all
/// operations are O(log n) or better in the number of resident jobs.
///
/// The owner is responsible for draining time (`advance`) before any
/// mutation and for (re)scheduling a wake-up at [`PsCpu::next_completion`].
#[derive(Debug, Clone)]
pub struct PsCpu<J> {
    cores: f64,
    speed: f64,
    /// Slot storage; freed entries are recycled through `free`.
    arena: Vec<Slot<J>>,
    free: Vec<u32>,
    /// Indexed binary min-heap of arena indices, keyed by `(tag, seq)`.
    heap: Vec<u32>,
    /// Job id → arena index: O(1) lookup, O(log n) targeted removal.
    pos: FastMap<J, u32>,
    /// Jobs whose tag was crossed during `advance`, awaiting
    /// [`PsCpu::take_finished`]. Their weight still counts toward
    /// `total_weight` — exactly like the naive kernel, where a finished but
    /// not-yet-collected job keeps slowing the mix.
    finished: Vec<(J, f64)>,
    total_weight: f64,
    /// Σ cap over heap-resident (unfinished) jobs: the delivered-work rate
    /// per unit of virtual time.
    active_cap: f64,
    /// The virtual-service accumulator `V`, with `dV/dt = shared_factor`.
    /// Re-anchored to 0 whenever the CPU idles so tags never lose precision
    /// over long runs.
    vtime: f64,
    next_seq: u64,
    last: SimTime,
    /// Cumulative core-seconds of useful work delivered (for utilization).
    delivered: f64,
    /// Most jobs ever resident at once (diagnostics).
    peak_jobs: usize,
}

impl<J: Copy + Eq + Hash> PsCpu<J> {
    /// A CPU with `cores` cores, starting idle at `start` with speed 1.
    ///
    /// # Panics
    /// Panics if `cores == 0`.
    pub fn new(cores: u32, start: SimTime) -> Self {
        assert!(cores >= 1, "need at least one core");
        PsCpu {
            cores: f64::from(cores),
            speed: 1.0,
            arena: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            pos: FastMap::default(),
            finished: Vec::new(),
            total_weight: 0.0,
            active_cap: 0.0,
            vtime: 0.0,
            next_seq: 0,
            last: start,
            delivered: 0.0,
            peak_jobs: 0,
        }
    }

    /// `dV/dt`: the mix-dependent part of every job's service rate.
    #[inline]
    fn shared_factor(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            self.speed * (self.cores / self.total_weight).min(1.0)
        }
    }

    /// Min-heap order: `(tag, seq)` ascending. Tags are finite by
    /// construction.
    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (&self.arena[a as usize], &self.arena[b as usize]);
        match sa.tag.partial_cmp(&sb.tag) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => sa.seq < sb.seq,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !self.less(self.heap[i], self.heap[parent]) {
                break;
            }
            self.heap.swap(i, parent);
            self.arena[self.heap[i] as usize].heap_pos = i;
            self.arena[self.heap[parent] as usize].heap_pos = parent;
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[smallest]) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            self.arena[self.heap[i] as usize].heap_pos = i;
            self.arena[self.heap[smallest] as usize].heap_pos = smallest;
            i = smallest;
        }
    }

    /// Remove the heap entry at heap position `i`, returning its arena
    /// index. O(log n).
    fn heap_remove_at(&mut self, i: usize) -> u32 {
        let idx = self.heap[i];
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        self.heap.pop();
        if i < self.heap.len() {
            self.arena[self.heap[i] as usize].heap_pos = i;
            if i > 0 && self.less(self.heap[i], self.heap[(i - 1) / 2]) {
                self.sift_up(i);
            } else {
                self.sift_down(i);
            }
        }
        idx
    }

    /// Pop the heap top into the finished list (weight stays accounted
    /// until [`PsCpu::take_finished`]).
    fn cross_top(&mut self) {
        let idx = self.heap_remove_at(0);
        let s = &self.arena[idx as usize];
        let (id, weight, cap) = (s.id, s.weight, s.cap);
        self.active_cap -= cap;
        self.pos.remove(&id);
        self.finished.push((id, weight));
        self.free.push(idx);
    }

    /// Clean float residue and re-anchor virtual time when nothing is
    /// resident.
    fn reset_if_idle(&mut self) {
        if self.heap.is_empty() && self.finished.is_empty() {
            self.total_weight = 0.0;
            self.active_cap = 0.0;
            self.vtime = 0.0;
        }
    }

    /// Advance the clock to `now`, draining work from every resident job.
    /// O(1) plus O(log n) per completion whose tag is crossed.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "PsCpu time must be monotone");
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        if dt <= 0.0 || (self.heap.is_empty() && self.finished.is_empty()) {
            return;
        }
        let shared = self.shared_factor();
        if shared <= 0.0 {
            return; // unreachable while jobs are resident (weights ≥ 1)
        }
        let v_end = self.vtime + shared * dt;
        // Cross completions in tag order. Each crossed job stops draining
        // (leaves `active_cap`) at its own tag — matching the naive kernel's
        // per-job `min(drain, remaining)` clamp exactly, including jobs
        // whose sub-epsilon residue lands just past `v_end`.
        while let Some(&top) = self.heap.first() {
            let (tag, cap) = {
                let s = &self.arena[top as usize];
                (s.tag, s.cap)
            };
            if (tag - v_end) * cap > WORK_EPSILON {
                break;
            }
            let cross = tag.clamp(self.vtime, v_end);
            self.delivered += (cross - self.vtime) * self.active_cap;
            self.vtime = cross;
            self.cross_top();
        }
        self.delivered += (v_end - self.vtime).max(0.0) * self.active_cap;
        self.vtime = v_end;
    }

    /// Add a unit-weight job with `work` core-seconds of demand. Call
    /// [`PsCpu::advance`] to `now` first.
    pub fn add(&mut self, id: J, work: SimDuration) {
        self.add_weighted(id, 1.0, work);
    }

    /// Add a job with resource-intensity `weight` and `work` core-seconds of
    /// demand. Call [`PsCpu::advance`] to `now` first. O(log n).
    ///
    /// # Panics
    /// Panics unless `weight >= 1`; in debug builds also if the job is
    /// already resident (O(1) via the index map).
    pub fn add_weighted(&mut self, id: J, weight: f64, work: SimDuration) {
        assert!(
            weight >= 1.0 && weight.is_finite(),
            "invalid job weight {weight}"
        );
        debug_assert!(
            !self.pos.contains_key(&id) && !self.finished.iter().any(|(j, _)| *j == id),
            "job added to CPU twice"
        );
        let cap = weight.min(self.cores);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = Slot {
            id,
            weight,
            cap,
            tag: self.vtime + work.as_secs_f64() / cap,
            seq,
            heap_pos: self.heap.len(),
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena[i as usize] = slot;
                i
            }
            None => {
                self.arena.push(slot);
                (self.arena.len() - 1) as u32
            }
        };
        self.heap.push(idx);
        self.pos.insert(id, idx);
        self.total_weight += weight;
        self.active_cap += cap;
        self.sift_up(self.heap.len() - 1);
        self.peak_jobs = self.peak_jobs.max(self.len());
    }

    /// Change the efficiency factor. Call [`PsCpu::advance`] first.
    ///
    /// # Panics
    /// Panics unless `0 < speed <= 1`.
    pub fn set_speed(&mut self, speed: f64) {
        assert!(speed > 0.0 && speed <= 1.0, "invalid CPU speed {speed}");
        self.speed = speed;
    }

    /// Current efficiency factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of resident jobs.
    pub fn len(&self) -> usize {
        self.heap.len() + self.finished.len()
    }

    /// True if no job is resident.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.finished.is_empty()
    }

    /// Most jobs ever resident at once.
    pub fn peak_jobs(&self) -> usize {
        self.peak_jobs
    }

    /// When the next job will finish (absolute time), given current
    /// membership and speed. A heap peek — O(1). `None` when idle.
    pub fn next_completion(&self) -> Option<SimTime> {
        if !self.finished.is_empty() {
            return Some(self.last);
        }
        let &top = self.heap.first()?;
        let slot = &self.arena[top as usize];
        let shared = self.shared_factor();
        debug_assert!(shared > 0.0);
        let dt = ((slot.tag - self.vtime) / shared).max(0.0);
        // Round *up* to the next microsecond so the job is guaranteed done
        // when the wake-up fires.
        Some(self.last + SimDuration::from_micros((dt * 1e6).ceil() as u64))
    }

    /// Remove and return every finished job. Call [`PsCpu::advance`] first.
    /// O(1) per job collected.
    pub fn take_finished(&mut self, out: &mut Vec<J>) {
        for (id, w) in self.finished.drain(..) {
            self.total_weight = (self.total_weight - w).max(0.0);
            out.push(id);
        }
        // Jobs finishing exactly at the current instant (zero-work bursts,
        // or an advance that landed precisely on a tag).
        while let Some(&top) = self.heap.first() {
            let (tag, cap) = {
                let s = &self.arena[top as usize];
                (s.tag, s.cap)
            };
            if (tag - self.vtime) * cap > WORK_EPSILON {
                break;
            }
            let idx = self.heap_remove_at(0);
            let s = &self.arena[idx as usize];
            let (id, weight) = (s.id, s.weight);
            self.active_cap -= s.cap;
            self.total_weight = (self.total_weight - weight).max(0.0);
            self.pos.remove(&id);
            out.push(id);
            self.free.push(idx);
        }
        self.reset_if_idle();
    }

    /// Remove a specific job (e.g. cancellation), returning its remaining
    /// work. O(log n) via the index map — no linear scan.
    pub fn remove(&mut self, id: J) -> Option<SimDuration> {
        if let Some(idx) = self.pos.remove(&id) {
            let heap_pos = self.arena[idx as usize].heap_pos;
            let removed = self.heap_remove_at(heap_pos);
            debug_assert_eq!(removed, idx);
            let s = &self.arena[idx as usize];
            let (weight, cap, tag) = (s.weight, s.cap, s.tag);
            self.free.push(idx);
            self.active_cap -= cap;
            self.total_weight = (self.total_weight - weight).max(0.0);
            // Compute remaining work *before* the idle reset re-anchors the
            // virtual clock.
            let remaining = ((tag - self.vtime) * cap).max(0.0);
            self.reset_if_idle();
            return Some(SimDuration::from_secs_f64(remaining));
        }
        // Crossed during `advance` but not collected yet: remaining work is
        // sub-epsilon zero.
        let k = self.finished.iter().position(|(j, _)| *j == id)?;
        let (_, w) = self.finished.remove(k);
        self.total_weight = (self.total_weight - w).max(0.0);
        self.reset_if_idle();
        Some(SimDuration::ZERO)
    }

    /// Total useful core-seconds delivered so far.
    pub fn delivered_core_seconds(&self) -> f64 {
        self.delivered
    }
}

/// The original O(n)-per-event weighted processor-sharing kernel, kept as
/// the executable specification for [`PsCpu`]: the equivalence swarm drives
/// both through identical schedules and demands identical completion orders
/// and ≤1e-9 relative completion-time error. Compiled for tests and behind
/// the `naive-ps` feature (scaling benches).
#[cfg(any(test, feature = "naive-ps"))]
#[derive(Debug, Clone)]
pub struct NaivePsCpu<J> {
    cores: f64,
    speed: f64,
    /// `(job, weight, remaining core-seconds)`.
    jobs: Vec<(J, f64, f64)>,
    total_weight: f64,
    last: SimTime,
    delivered: f64,
}

#[cfg(any(test, feature = "naive-ps"))]
impl<J: Copy + Eq + Hash> NaivePsCpu<J> {
    /// A CPU with `cores` cores, starting idle at `start` with speed 1.
    pub fn new(cores: u32, start: SimTime) -> Self {
        assert!(cores >= 1, "need at least one core");
        NaivePsCpu {
            cores: f64::from(cores),
            speed: 1.0,
            jobs: Vec::new(),
            total_weight: 0.0,
            last: start,
            delivered: 0.0,
        }
    }

    /// Service rate of a job with weight `w` under the current mix.
    fn rate_of(&self, w: f64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        self.speed * w.min(self.cores) * (self.cores / self.total_weight).min(1.0)
    }

    /// Advance the clock to `now`, draining work from every resident job.
    /// O(n).
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "NaivePsCpu time must be monotone");
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        if dt <= 0.0 || self.jobs.is_empty() {
            return;
        }
        let share = (self.cores / self.total_weight).min(1.0) * self.speed;
        for (_, w, rem) in &mut self.jobs {
            let drained = (w.min(self.cores) * share * dt).min(*rem);
            self.delivered += drained;
            *rem -= drained;
        }
    }

    /// Add a unit-weight job with `work` core-seconds of demand.
    pub fn add(&mut self, id: J, work: SimDuration) {
        self.add_weighted(id, 1.0, work);
    }

    /// Add a job with resource-intensity `weight`. O(1) (amortized), but the
    /// debug duplicate scan is O(n).
    pub fn add_weighted(&mut self, id: J, weight: f64, work: SimDuration) {
        assert!(
            weight >= 1.0 && weight.is_finite(),
            "invalid job weight {weight}"
        );
        debug_assert!(
            !self.jobs.iter().any(|(j, _, _)| *j == id),
            "job added to CPU twice"
        );
        self.jobs.push((id, weight, work.as_secs_f64()));
        self.total_weight += weight;
    }

    /// Change the efficiency factor.
    pub fn set_speed(&mut self, speed: f64) {
        assert!(speed > 0.0 && speed <= 1.0, "invalid CPU speed {speed}");
        self.speed = speed;
    }

    /// Number of resident jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no job is resident.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// When the next job will finish (absolute time). O(n).
    pub fn next_completion(&self) -> Option<SimTime> {
        let mut min_dt = f64::INFINITY;
        for &(_, w, rem) in &self.jobs {
            let r = self.rate_of(w);
            debug_assert!(r > 0.0);
            min_dt = min_dt.min(rem / r);
        }
        if !min_dt.is_finite() {
            return None;
        }
        Some(self.last + SimDuration::from_micros((min_dt.max(0.0) * 1e6).ceil() as u64))
    }

    /// Remove and return every finished job. O(n).
    pub fn take_finished(&mut self, out: &mut Vec<J>) {
        let mut i = 0;
        while i < self.jobs.len() {
            if self.jobs[i].2 <= WORK_EPSILON {
                let (id, w, _) = self.jobs.swap_remove(i);
                self.total_weight = (self.total_weight - w).max(0.0);
                out.push(id);
            } else {
                i += 1;
            }
        }
        if self.jobs.is_empty() {
            self.total_weight = 0.0; // clean float residue at idle
        }
    }

    /// Remove a specific job, returning its remaining work. O(n).
    pub fn remove(&mut self, id: J) -> Option<SimDuration> {
        let pos = self.jobs.iter().position(|(j, _, _)| *j == id)?;
        let (_, w, rem) = self.jobs.remove(pos);
        self.total_weight = (self.total_weight - w).max(0.0);
        if self.jobs.is_empty() {
            self.total_weight = 0.0;
        }
        Some(SimDuration::from_secs_f64(rem.max(0.0)))
    }

    /// Total useful core-seconds delivered so far.
    pub fn delivered_core_seconds(&self) -> f64 {
        self.delivered
    }
}

/// A FCFS disk array: `n` identical servers fed by one shared queue.
///
/// Service times are fixed at request time, so no draining is needed; the
/// owner schedules a completion event at the returned instant.
///
/// The shared queue is indexed: a job-id map gives O(1) membership and
/// duplicate detection, and mid-queue cancellation tombstones the entry
/// instead of shifting the deque, so every operation is O(1) amortized.
#[derive(Debug, Clone)]
pub struct DiskArray<J> {
    n_disks: usize,
    busy: usize,
    /// FCFS queue of `(seq, job, service)`. Cancelled entries stay in place
    /// (tombstoned in `cancelled`) and are skipped lazily on pop.
    queue: VecDeque<(u64, J, SimDuration)>,
    /// Live queued job → `(seq, service)`.
    index: FastMap<J, (u64, SimDuration)>,
    /// Sequence numbers of cancelled entries awaiting lazy removal.
    cancelled: FastSet<u64>,
    next_seq: u64,
    /// Cumulative disk-seconds of service delivered.
    delivered: f64,
    /// Peak (live) queue length observed (diagnostics).
    peak_queue: usize,
}

impl<J: Copy + Eq + Hash> DiskArray<J> {
    /// An idle array of `n_disks` disks.
    ///
    /// # Panics
    /// Panics if `n_disks == 0`.
    pub fn new(n_disks: u32) -> Self {
        assert!(n_disks >= 1, "need at least one disk");
        DiskArray {
            n_disks: n_disks as usize,
            busy: 0,
            queue: VecDeque::new(),
            index: FastMap::default(),
            cancelled: FastSet::default(),
            next_seq: 0,
            delivered: 0.0,
            peak_queue: 0,
        }
    }

    /// Submit an I/O burst. If a disk is free the burst starts immediately
    /// and the completion instant is returned; otherwise the burst queues
    /// and `None` is returned (its completion is produced later by
    /// [`DiskArray::complete`]).
    pub fn request(&mut self, now: SimTime, id: J, service: SimDuration) -> Option<SimTime> {
        if self.busy < self.n_disks {
            self.busy += 1;
            self.delivered += service.as_secs_f64();
            Some(now + service)
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            let prev = self.index.insert(id, (seq, service));
            debug_assert!(prev.is_none(), "burst queued twice for one job");
            self.queue.push_back((seq, id, service));
            self.peak_queue = self.peak_queue.max(self.index.len());
            None
        }
    }

    /// Record that one burst finished at `now`; if a queued burst exists it
    /// starts and `(job, completion_time)` is returned for scheduling.
    ///
    /// # Panics
    /// Panics if no disk was busy.
    pub fn complete(&mut self, now: SimTime) -> Option<(J, SimTime)> {
        assert!(self.busy > 0, "disk completion with no busy disk");
        self.busy -= 1;
        while let Some((seq, id, svc)) = self.queue.pop_front() {
            if self.cancelled.remove(&seq) {
                continue; // tombstone of a cancelled burst
            }
            self.index.remove(&id);
            self.busy += 1;
            self.delivered += svc.as_secs_f64();
            return Some((id, now + svc));
        }
        None
    }

    /// Cancel a *queued* burst (e.g. query cancellation while waiting for a
    /// disk), returning its service demand. O(1) amortized: the entry is
    /// tombstoned in place and skipped when it reaches the queue head.
    /// Bursts already in service cannot be cancelled. Returns `None` if the
    /// job is not queued.
    ///
    /// When tombstones come to outnumber live entries the queue is compacted
    /// in one O(queue) sweep — paid for by the ≥ queue/2 cancellations that
    /// accumulated them, so the amortized cost stays O(1) and a
    /// cancellation-heavy workload cannot grow the deque (and its pop-side
    /// skip cost) without bound.
    pub fn cancel_queued(&mut self, id: J) -> Option<SimDuration> {
        let (seq, svc) = self.index.remove(&id)?;
        self.cancelled.insert(seq);
        if self.cancelled.len() > self.index.len() {
            let cancelled = std::mem::take(&mut self.cancelled);
            self.queue.retain(|(s, _, _)| !cancelled.contains(s));
            debug_assert_eq!(self.queue.len(), self.index.len());
            self.cancelled = cancelled;
            self.cancelled.clear();
        }
        Some(svc)
    }

    /// True when a burst for `id` is waiting in the shared queue.
    pub fn is_queued(&self, id: J) -> bool {
        self.index.contains_key(&id)
    }

    /// Number of bursts currently in service.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Number of bursts waiting for a disk (live entries only).
    pub fn queued(&self) -> usize {
        self.index.len()
    }

    /// Peak queue length seen so far.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Total disk-seconds of service started so far.
    pub fn delivered_disk_seconds(&self) -> f64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cpu_job_runs_at_full_speed() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(3));
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(3)));
        cpu.advance(SimTime::from_secs(3));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        assert_eq!(done, vec![1]);
        assert!(cpu.is_empty());
    }

    #[test]
    fn two_jobs_on_two_cores_do_not_interfere() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(2));
        cpu.add(2, SimDuration::from_secs(5));
        // Each gets a full core: job 1 finishes at t=2.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(2)));
        cpu.advance(SimTime::from_secs(2));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        assert_eq!(done, vec![1]);
        // Job 2 has 3 s left at full speed.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn four_jobs_on_two_cores_share_equally() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        for id in 0..4 {
            cpu.add(id, SimDuration::from_secs(1));
        }
        // rate = 2/4 = 0.5 → 1 s of work takes 2 s.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(2)));
        cpu.advance(SimTime::from_secs(2));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        done.sort_unstable();
        assert_eq!(done, vec![0, 1, 2, 3]);
    }

    #[test]
    fn speed_scales_service_rate() {
        let mut cpu: PsCpu<u32> = PsCpu::new(1, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(1));
        cpu.advance(SimTime::ZERO);
        cpu.set_speed(0.5);
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn membership_change_mid_flight_is_linear() {
        let mut cpu: PsCpu<u32> = PsCpu::new(1, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(4));
        // After 1 s alone, 3 s of work remain.
        cpu.advance(SimTime::from_secs(1));
        cpu.add(2, SimDuration::from_secs(10));
        // Now sharing one core: job 1 needs 6 more wall seconds.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(7)));
        cpu.advance(SimTime::from_secs(7));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        assert_eq!(done, vec![1]);
        // Job 2 drained 6 s of its 10 s at rate 1/2 → 7 s left, alone now.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(14)));
    }

    #[test]
    fn remove_returns_remaining_work() {
        let mut cpu: PsCpu<u32> = PsCpu::new(1, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(4));
        cpu.advance(SimTime::from_secs(1));
        let left = cpu.remove(1).unwrap();
        assert!((left.as_secs_f64() - 3.0).abs() < 1e-9);
        assert!(cpu.remove(1).is_none());
    }

    #[test]
    fn delivered_accounts_all_jobs() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(2));
        cpu.add(2, SimDuration::from_secs(2));
        cpu.advance(SimTime::from_secs(2));
        assert!((cpu.delivered_core_seconds() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn peak_jobs_tracks_high_water_mark() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        assert_eq!(cpu.peak_jobs(), 0);
        for id in 0..5 {
            cpu.add(id, SimDuration::from_secs(1));
        }
        cpu.remove(0);
        cpu.remove(1);
        assert_eq!(cpu.len(), 3);
        assert_eq!(cpu.peak_jobs(), 5);
    }

    #[test]
    fn total_weight_residue_cleans_to_zero_at_idle() {
        // Fractional weights guarantee float residue from repeated
        // subtraction; idling must reset the accumulator (and the virtual
        // clock) to exactly zero, or shared_factor drifts across busy
        // periods.
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        for i in 0..10u32 {
            cpu.add_weighted(
                i,
                1.0 + 0.1 * f64::from(i),
                SimDuration::from_secs_f64(0.123 + f64::from(i) * 0.077),
            );
        }
        let mut done = Vec::new();
        while !cpu.is_empty() {
            let t = cpu.next_completion().expect("busy CPU");
            cpu.advance(t);
            cpu.take_finished(&mut done);
        }
        assert_eq!(done.len(), 10);
        assert_eq!(cpu.total_weight, 0.0, "take_finished idle reset");
        assert_eq!(cpu.vtime, 0.0, "virtual clock re-anchors at idle");

        // The remove path must clean up identically.
        let t0 = cpu.next_completion().map_or(SimTime::from_secs(100), |t| t);
        cpu.advance(t0);
        for i in 0..5u32 {
            cpu.add_weighted(100 + i, 1.3 + 0.7 * f64::from(i), SimDuration::from_secs(1));
        }
        for i in 0..5u32 {
            cpu.remove(100 + i).expect("resident");
        }
        assert_eq!(cpu.total_weight, 0.0, "remove idle reset");
        assert_eq!(cpu.vtime, 0.0);
    }

    #[test]
    fn disk_array_serves_up_to_n_concurrently() {
        let mut d: DiskArray<u32> = DiskArray::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(
            d.request(t0, 1, SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(
            d.request(t0, 2, SimDuration::from_secs(2)),
            Some(SimTime::from_secs(2))
        );
        // Third request queues.
        assert_eq!(d.request(t0, 3, SimDuration::from_secs(3)), None);
        assert_eq!(d.busy(), 2);
        assert_eq!(d.queued(), 1);
        // First completion dequeues job 3.
        let (id, t) = d.complete(SimTime::from_secs(1)).unwrap();
        assert_eq!(id, 3);
        assert_eq!(t, SimTime::from_secs(4));
        assert_eq!(d.queued(), 0);
        // Later completions find an empty queue.
        assert!(d.complete(SimTime::from_secs(2)).is_none());
        assert!(d.complete(SimTime::from_secs(4)).is_none());
        assert_eq!(d.busy(), 0);
    }

    #[test]
    fn disk_queue_is_fifo() {
        let mut d: DiskArray<u32> = DiskArray::new(1);
        let t0 = SimTime::ZERO;
        d.request(t0, 1, SimDuration::from_secs(1));
        assert!(d.request(t0, 2, SimDuration::from_secs(1)).is_none());
        assert!(d.request(t0, 3, SimDuration::from_secs(1)).is_none());
        let (a, _) = d.complete(SimTime::from_secs(1)).unwrap();
        let (b, _) = d.complete(SimTime::from_secs(2)).unwrap();
        assert_eq!((a, b), (2, 3));
        assert_eq!(d.peak_queue(), 2);
    }

    #[test]
    fn disk_cancel_mid_queue_is_skipped_fifo_preserved() {
        let mut d: DiskArray<u32> = DiskArray::new(1);
        let t0 = SimTime::ZERO;
        d.request(t0, 1, SimDuration::from_secs(1));
        for id in 2..=5 {
            assert!(d.request(t0, id, SimDuration::from_secs(1)).is_none());
        }
        assert_eq!(d.queued(), 4);
        // Cancel a middle entry and the head entry.
        assert_eq!(d.cancel_queued(3), Some(SimDuration::from_secs(1)));
        assert_eq!(d.cancel_queued(2), Some(SimDuration::from_secs(1)));
        assert_eq!(d.cancel_queued(3), None, "double cancel returns None");
        assert!(!d.is_queued(3));
        assert!(d.is_queued(4));
        assert_eq!(d.queued(), 2);
        // FIFO among survivors: 4 then 5.
        let (a, _) = d.complete(SimTime::from_secs(1)).unwrap();
        let (b, _) = d.complete(SimTime::from_secs(2)).unwrap();
        assert_eq!((a, b), (4, 5));
        assert!(d.complete(SimTime::from_secs(3)).is_none());
        assert_eq!(d.busy(), 0);
        assert_eq!(d.queued(), 0);
    }

    #[test]
    fn disk_tombstones_are_compacted_when_they_outnumber_live_entries() {
        let mut d: DiskArray<u32> = DiskArray::new(1);
        let t0 = SimTime::ZERO;
        d.request(t0, 0, SimDuration::from_secs(1));
        for id in 1..=100 {
            assert!(d.request(t0, id, SimDuration::from_secs(1)).is_none());
        }
        // Cancel 60 of the 100 queued bursts: tombstones outnumber live
        // entries mid-way, so the deque must have been swept rather than
        // keeping all 100 slots.
        for id in 1..=60 {
            assert_eq!(d.cancel_queued(id), Some(SimDuration::from_secs(1)));
        }
        assert_eq!(d.queued(), 40);
        assert!(
            d.queue.len() <= 2 * d.index.len(),
            "deque kept {} slots for {} live entries",
            d.queue.len(),
            d.index.len()
        );
        // FIFO among survivors is intact and completion never sees a stale
        // tombstone.
        let mut order = Vec::new();
        let mut now = SimTime::from_secs(1);
        while let Some((id, t)) = d.complete(now) {
            order.push(id);
            now = t;
        }
        assert_eq!(order, (61..=100).collect::<Vec<u32>>());
        // Cancel-after-compaction still works (seq survived the sweep).
        d.request(now, 200, SimDuration::from_secs(1));
        assert!(d.request(now, 201, SimDuration::from_secs(1)).is_none());
        assert_eq!(d.cancel_queued(201), Some(SimDuration::from_secs(1)));
        assert_eq!(d.queued(), 0);
    }

    #[test]
    fn cancelled_burst_does_not_consume_a_disk() {
        let mut d: DiskArray<u32> = DiskArray::new(1);
        let t0 = SimTime::ZERO;
        d.request(t0, 1, SimDuration::from_secs(1));
        assert!(d.request(t0, 2, SimDuration::from_secs(7)).is_none());
        d.cancel_queued(2);
        // The only queued entry was cancelled: completion finds nothing.
        assert!(d.complete(SimTime::from_secs(1)).is_none());
        // Its service time was never added to delivered.
        assert!((d.delivered_disk_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no busy disk")]
    fn completing_idle_disk_panics() {
        let mut d: DiskArray<u32> = DiskArray::new(1);
        let _ = d.complete(SimTime::ZERO);
    }
}

/// Equivalence swarm: the virtual-time kernel against the naive reference
/// across randomized add/advance/remove/set-speed schedules.
#[cfg(test)]
mod equivalence {
    use super::*;

    /// Unified driver surface over both kernels.
    trait Kernel {
        fn add(&mut self, id: u64, weight: f64, work: SimDuration);
        fn advance(&mut self, now: SimTime);
        fn next_completion(&self) -> Option<SimTime>;
        fn take_finished(&mut self, out: &mut Vec<u64>);
        fn remove(&mut self, id: u64) -> Option<SimDuration>;
        fn set_speed(&mut self, speed: f64);
        fn delivered(&self) -> f64;
    }

    impl Kernel for PsCpu<u64> {
        fn add(&mut self, id: u64, weight: f64, work: SimDuration) {
            self.add_weighted(id, weight, work);
        }
        fn advance(&mut self, now: SimTime) {
            PsCpu::advance(self, now);
        }
        fn next_completion(&self) -> Option<SimTime> {
            PsCpu::next_completion(self)
        }
        fn take_finished(&mut self, out: &mut Vec<u64>) {
            PsCpu::take_finished(self, out);
        }
        fn remove(&mut self, id: u64) -> Option<SimDuration> {
            PsCpu::remove(self, id)
        }
        fn set_speed(&mut self, speed: f64) {
            PsCpu::set_speed(self, speed);
        }
        fn delivered(&self) -> f64 {
            self.delivered_core_seconds()
        }
    }

    impl Kernel for NaivePsCpu<u64> {
        fn add(&mut self, id: u64, weight: f64, work: SimDuration) {
            self.add_weighted(id, weight, work);
        }
        fn advance(&mut self, now: SimTime) {
            NaivePsCpu::advance(self, now);
        }
        fn next_completion(&self) -> Option<SimTime> {
            NaivePsCpu::next_completion(self)
        }
        fn take_finished(&mut self, out: &mut Vec<u64>) {
            NaivePsCpu::take_finished(self, out);
        }
        fn remove(&mut self, id: u64) -> Option<SimDuration> {
            NaivePsCpu::remove(self, id)
        }
        fn set_speed(&mut self, speed: f64) {
            NaivePsCpu::set_speed(self, speed);
        }
        fn delivered(&self) -> f64 {
            self.delivered_core_seconds()
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Add { id: u64, weight: f64, work: f64 },
        Remove { id: u64 },
        SetSpeed { speed: f64 },
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(state: &mut u64) -> f64 {
        (splitmix(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A random op script: `(time, op)` sorted by time. Random fractional
    /// weights (including > cores), non-round work values, occasional speed
    /// changes, removes, and long idle gaps (idle-residue resets).
    fn random_script(seed: u64, ops: usize) -> Vec<(SimTime, Op)> {
        let mut rng = seed.wrapping_mul(0x5851_F42D_4C95_7F2D) | 1;
        let mut t_us: u64 = 0;
        let mut issued: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        let mut script = Vec::with_capacity(ops);
        for _ in 0..ops {
            // Mostly short gaps; occasionally a long one that drains the CPU.
            t_us += if splitmix(&mut rng).is_multiple_of(10) {
                10_000_000 + splitmix(&mut rng) % 10_000_000
            } else {
                splitmix(&mut rng) % 400_000
            };
            let roll = splitmix(&mut rng) % 100;
            let op = if roll < 60 || issued.is_empty() {
                let id = next_id;
                next_id += 1;
                issued.push(id);
                Op::Add {
                    id,
                    weight: 1.0 + unit(&mut rng) * 6.5,
                    work: 0.001 + unit(&mut rng) * 2.5,
                }
            } else if roll < 85 {
                let k = (splitmix(&mut rng) as usize) % issued.len();
                Op::Remove { id: issued[k] }
            } else {
                Op::SetSpeed {
                    speed: 0.1 + unit(&mut rng) * 0.9,
                }
            };
            script.push((SimTime::from_micros(t_us), op));
        }
        script
    }

    /// `(time, id)` completions plus `(id, remaining work)` removals.
    type ScriptTrace = (Vec<(SimTime, u64)>, Vec<(u64, f64)>);

    /// Run a kernel through a script, collecting `(time, id)` completions
    /// (same-instant batches sorted by id, as the engine does) and the
    /// remaining work reported by each successful remove.
    fn run_script<K: Kernel>(k: &mut K, script: &[(SimTime, Op)]) -> ScriptTrace {
        let mut completions = Vec::new();
        let mut removals = Vec::new();
        let mut i = 0;
        let mut out = Vec::new();
        loop {
            let next_op = script.get(i).map(|(t, _)| *t);
            let next_done = k.next_completion();
            let (t, is_done) = match (next_op, next_done) {
                (None, None) => break,
                (Some(ot), None) => (ot, false),
                (None, Some(dt)) => (dt, true),
                // Completions processed first on ties, like CpuTick events
                // scheduled before same-instant mutations.
                (Some(ot), Some(dt)) => {
                    if dt <= ot {
                        (dt, true)
                    } else {
                        (ot, false)
                    }
                }
            };
            k.advance(t);
            if is_done {
                out.clear();
                k.take_finished(&mut out);
                out.sort_unstable();
                for &id in &out {
                    completions.push((t, id));
                }
            } else {
                match script[i].1 {
                    Op::Add { id, weight, work } => {
                        k.add(id, weight, SimDuration::from_secs_f64(work))
                    }
                    Op::Remove { id } => {
                        if let Some(rem) = k.remove(id) {
                            removals.push((id, rem.as_secs_f64()));
                        }
                    }
                    Op::SetSpeed { speed } => k.set_speed(speed),
                }
                i += 1;
            }
        }
        (completions, removals)
    }

    /// `|a - b|` within 1 µs of rounding slack plus 1e-9 relative error.
    fn times_close(a: SimTime, b: SimTime) -> bool {
        let (au, bu) = (a.as_micros() as i128, b.as_micros() as i128);
        let tol = 1 + (1e-9 * au.max(bu) as f64).ceil() as i128;
        (au - bu).abs() <= tol
    }

    fn assert_equivalent(seed: u64, cores: u32, ops: usize) {
        let script = random_script(seed, ops);
        let mut virt: PsCpu<u64> = PsCpu::new(cores, SimTime::ZERO);
        let mut naive: NaivePsCpu<u64> = NaivePsCpu::new(cores, SimTime::ZERO);
        let (cv, rv) = run_script(&mut virt, &script);
        let (cn, rn) = run_script(&mut naive, &script);
        assert_eq!(cv.len(), cn.len(), "seed {seed}: completion counts diverge");
        for (k, ((tv, iv), (tn, jn))) in cv.iter().zip(&cn).enumerate() {
            assert_eq!(iv, jn, "seed {seed}: completion order diverges at #{k}");
            assert!(
                times_close(*tv, *tn),
                "seed {seed}: job {iv} completes at {tv:?} (virtual) vs {tn:?} (naive)"
            );
        }
        assert_eq!(rv.len(), rn.len(), "seed {seed}: removal counts diverge");
        for ((iv, wv), (jn, wn)) in rv.iter().zip(&rn) {
            assert_eq!(iv, jn, "seed {seed}: removal order diverges");
            assert!(
                (wv - wn).abs() <= 1e-9 * (1.0 + wv.abs()),
                "seed {seed}: job {iv} remaining {wv} vs {wn}"
            );
        }
        let (dv, dn) = (virt.delivered(), naive.delivered());
        assert!(
            (dv - dn).abs() <= 1e-6 * (1.0 + dn.abs()),
            "seed {seed}: delivered work {dv} vs {dn}"
        );
    }

    #[test]
    fn swarm_matches_naive_reference() {
        for seed in 0..24u64 {
            // Cores 1, 2 and 4; weights go up to 7.5, so weight > cores is
            // exercised at every size.
            assert_equivalent(seed, [1u32, 2, 4][(seed % 3) as usize], 300);
        }
    }

    #[test]
    fn long_busy_period_stays_in_lockstep() {
        // One long, heavily contended busy period (few idle resets): tag
        // arithmetic must not drift from the reference's repeated
        // subtraction.
        assert_equivalent(0xDEAD_BEEF, 2, 1_500);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Random (op-kind, magnitude) streams — weights above the core
            /// count, fractional works, speed changes, removes and idle
            /// gaps — never separate the two kernels.
            #[test]
            fn virtual_time_kernel_matches_naive(
                seed in 0u64..1u64 << 48,
                cores in 1u32..5,
                ops in 20usize..160,
            ) {
                assert_equivalent(seed, cores, ops);
            }
        }
    }
}
