//! The simulated hardware: a processor-sharing multi-core CPU and a FCFS
//! multi-disk I/O subsystem — the two stations of the classic central-server
//! DBMS performance model.

use qsched_sim::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::hash::Hash;

/// Smallest remaining work (in seconds) still considered unfinished.
const WORK_EPSILON: f64 = 1e-9;

/// A multi-core CPU under **weighted** processor sharing.
///
/// Every resident job has a weight `w ≥ 1` — its *resource intensity*
/// (degree of parallelism, prefetch aggressiveness, buffer-pool footprint).
/// A job receives service at rate
///
/// ```text
/// rate_i = speed · min(w_i, cores) · min(1, cores / Σw)
/// ```
///
/// core-seconds per second: when total weight fits the cores every job runs
/// at its full intensity (capped at the machine size), and under contention
/// capacity is shared *in proportion to weight*. This is what couples the
/// admitted OLAP **cost** to OLTP response time (the paper's Figure 2): an
/// expensive decision-support query pressures the CPU in proportion to its
/// optimizer cost, not merely as one more thread. A weight of 1 for every
/// job degenerates to egalitarian processor sharing. `speed ∈ (0, 1]` is
/// the engine's thrashing efficiency factor.
///
/// The owner is responsible for draining time (`advance`) before any
/// mutation and for (re)scheduling a wake-up at [`PsCpu::next_completion`].
#[derive(Debug, Clone)]
pub struct PsCpu<J> {
    cores: f64,
    speed: f64,
    /// `(job, weight, remaining core-seconds)`.
    jobs: Vec<(J, f64, f64)>,
    total_weight: f64,
    last: SimTime,
    /// Cumulative core-seconds of useful work delivered (for utilization).
    delivered: f64,
}

impl<J: Copy + Eq + Hash> PsCpu<J> {
    /// A CPU with `cores` cores, starting idle at `start` with speed 1.
    ///
    /// # Panics
    /// Panics if `cores == 0`.
    pub fn new(cores: u32, start: SimTime) -> Self {
        assert!(cores >= 1, "need at least one core");
        PsCpu {
            cores: f64::from(cores),
            speed: 1.0,
            jobs: Vec::new(),
            total_weight: 0.0,
            last: start,
            delivered: 0.0,
        }
    }

    /// Service rate of a job with weight `w` under the current mix.
    fn rate_of(&self, w: f64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        self.speed * w.min(self.cores) * (self.cores / self.total_weight).min(1.0)
    }

    /// Advance the clock to `now`, draining work from every resident job.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "PsCpu time must be monotone");
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        if dt <= 0.0 || self.jobs.is_empty() {
            return;
        }
        let share = (self.cores / self.total_weight).min(1.0) * self.speed;
        for (_, w, rem) in &mut self.jobs {
            let drained = (w.min(self.cores) * share * dt).min(*rem);
            self.delivered += drained;
            *rem -= drained;
        }
    }

    /// Add a unit-weight job with `work` core-seconds of demand. Call
    /// [`PsCpu::advance`] to `now` first.
    pub fn add(&mut self, id: J, work: SimDuration) {
        self.add_weighted(id, 1.0, work);
    }

    /// Add a job with resource-intensity `weight` and `work` core-seconds of
    /// demand. Call [`PsCpu::advance`] to `now` first.
    ///
    /// # Panics
    /// Panics unless `weight >= 1`; in debug builds also if the job is
    /// already resident.
    pub fn add_weighted(&mut self, id: J, weight: f64, work: SimDuration) {
        assert!(
            weight >= 1.0 && weight.is_finite(),
            "invalid job weight {weight}"
        );
        debug_assert!(
            !self.jobs.iter().any(|(j, _, _)| *j == id),
            "job added to CPU twice"
        );
        self.jobs.push((id, weight, work.as_secs_f64()));
        self.total_weight += weight;
    }

    /// Change the efficiency factor. Call [`PsCpu::advance`] first.
    ///
    /// # Panics
    /// Panics unless `0 < speed <= 1`.
    pub fn set_speed(&mut self, speed: f64) {
        assert!(speed > 0.0 && speed <= 1.0, "invalid CPU speed {speed}");
        self.speed = speed;
    }

    /// Current efficiency factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of resident jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no job is resident.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// When the next job will finish (absolute time), given current
    /// membership and speed. `None` when idle.
    pub fn next_completion(&self) -> Option<SimTime> {
        let mut min_dt = f64::INFINITY;
        for &(_, w, rem) in &self.jobs {
            let r = self.rate_of(w);
            debug_assert!(r > 0.0);
            min_dt = min_dt.min(rem / r);
        }
        if !min_dt.is_finite() {
            return None;
        }
        // Round *up* to the next microsecond so the job is guaranteed done
        // when the wake-up fires.
        Some(self.last + SimDuration::from_micros((min_dt.max(0.0) * 1e6).ceil() as u64))
    }

    /// Remove and return every finished job. Call [`PsCpu::advance`] first.
    pub fn take_finished(&mut self, out: &mut Vec<J>) {
        let mut i = 0;
        while i < self.jobs.len() {
            if self.jobs[i].2 <= WORK_EPSILON {
                let (id, w, _) = self.jobs.swap_remove(i);
                self.total_weight = (self.total_weight - w).max(0.0);
                out.push(id);
            } else {
                i += 1;
            }
        }
        if self.jobs.is_empty() {
            self.total_weight = 0.0; // clean float residue at idle
        }
    }

    /// Remove a specific job (e.g. cancellation), returning its remaining work.
    pub fn remove(&mut self, id: J) -> Option<SimDuration> {
        let pos = self.jobs.iter().position(|(j, _, _)| *j == id)?;
        let (_, w, rem) = self.jobs.remove(pos);
        self.total_weight = (self.total_weight - w).max(0.0);
        if self.jobs.is_empty() {
            self.total_weight = 0.0;
        }
        Some(SimDuration::from_secs_f64(rem.max(0.0)))
    }

    /// Total useful core-seconds delivered so far.
    pub fn delivered_core_seconds(&self) -> f64 {
        self.delivered
    }
}

/// A FCFS disk array: `n` identical servers fed by one shared queue.
///
/// Service times are fixed at request time, so no draining is needed; the
/// owner schedules a completion event at the returned instant.
#[derive(Debug, Clone)]
pub struct DiskArray<J> {
    n_disks: usize,
    busy: usize,
    queue: VecDeque<(J, SimDuration)>,
    /// Cumulative disk-seconds of service delivered.
    delivered: f64,
    /// Peak queue length observed (diagnostics).
    peak_queue: usize,
}

impl<J: Copy> DiskArray<J> {
    /// An idle array of `n_disks` disks.
    ///
    /// # Panics
    /// Panics if `n_disks == 0`.
    pub fn new(n_disks: u32) -> Self {
        assert!(n_disks >= 1, "need at least one disk");
        DiskArray {
            n_disks: n_disks as usize,
            busy: 0,
            queue: VecDeque::new(),
            delivered: 0.0,
            peak_queue: 0,
        }
    }

    /// Submit an I/O burst. If a disk is free the burst starts immediately
    /// and the completion instant is returned; otherwise the burst queues
    /// and `None` is returned (its completion is produced later by
    /// [`DiskArray::complete`]).
    pub fn request(&mut self, now: SimTime, id: J, service: SimDuration) -> Option<SimTime> {
        if self.busy < self.n_disks {
            self.busy += 1;
            self.delivered += service.as_secs_f64();
            Some(now + service)
        } else {
            self.queue.push_back((id, service));
            self.peak_queue = self.peak_queue.max(self.queue.len());
            None
        }
    }

    /// Record that one burst finished at `now`; if a queued burst exists it
    /// starts and `(job, completion_time)` is returned for scheduling.
    ///
    /// # Panics
    /// Panics if no disk was busy.
    pub fn complete(&mut self, now: SimTime) -> Option<(J, SimTime)> {
        assert!(self.busy > 0, "disk completion with no busy disk");
        self.busy -= 1;
        if let Some((id, svc)) = self.queue.pop_front() {
            self.busy += 1;
            self.delivered += svc.as_secs_f64();
            Some((id, now + svc))
        } else {
            None
        }
    }

    /// Number of bursts currently in service.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Number of bursts waiting for a disk.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Peak queue length seen so far.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Total disk-seconds of service started so far.
    pub fn delivered_disk_seconds(&self) -> f64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cpu_job_runs_at_full_speed() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(3));
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(3)));
        cpu.advance(SimTime::from_secs(3));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        assert_eq!(done, vec![1]);
        assert!(cpu.is_empty());
    }

    #[test]
    fn two_jobs_on_two_cores_do_not_interfere() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(2));
        cpu.add(2, SimDuration::from_secs(5));
        // Each gets a full core: job 1 finishes at t=2.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(2)));
        cpu.advance(SimTime::from_secs(2));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        assert_eq!(done, vec![1]);
        // Job 2 has 3 s left at full speed.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn four_jobs_on_two_cores_share_equally() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        for id in 0..4 {
            cpu.add(id, SimDuration::from_secs(1));
        }
        // rate = 2/4 = 0.5 → 1 s of work takes 2 s.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(2)));
        cpu.advance(SimTime::from_secs(2));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        done.sort_unstable();
        assert_eq!(done, vec![0, 1, 2, 3]);
    }

    #[test]
    fn speed_scales_service_rate() {
        let mut cpu: PsCpu<u32> = PsCpu::new(1, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(1));
        cpu.advance(SimTime::ZERO);
        cpu.set_speed(0.5);
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn membership_change_mid_flight_is_linear() {
        let mut cpu: PsCpu<u32> = PsCpu::new(1, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(4));
        // After 1 s alone, 3 s of work remain.
        cpu.advance(SimTime::from_secs(1));
        cpu.add(2, SimDuration::from_secs(10));
        // Now sharing one core: job 1 needs 6 more wall seconds.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(7)));
        cpu.advance(SimTime::from_secs(7));
        let mut done = Vec::new();
        cpu.take_finished(&mut done);
        assert_eq!(done, vec![1]);
        // Job 2 drained 6 s of its 10 s at rate 1/2 → 7 s left, alone now.
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(14)));
    }

    #[test]
    fn remove_returns_remaining_work() {
        let mut cpu: PsCpu<u32> = PsCpu::new(1, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(4));
        cpu.advance(SimTime::from_secs(1));
        let left = cpu.remove(1).unwrap();
        assert!((left.as_secs_f64() - 3.0).abs() < 1e-9);
        assert!(cpu.remove(1).is_none());
    }

    #[test]
    fn delivered_accounts_all_jobs() {
        let mut cpu: PsCpu<u32> = PsCpu::new(2, SimTime::ZERO);
        cpu.add(1, SimDuration::from_secs(2));
        cpu.add(2, SimDuration::from_secs(2));
        cpu.advance(SimTime::from_secs(2));
        assert!((cpu.delivered_core_seconds() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disk_array_serves_up_to_n_concurrently() {
        let mut d: DiskArray<u32> = DiskArray::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(
            d.request(t0, 1, SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(
            d.request(t0, 2, SimDuration::from_secs(2)),
            Some(SimTime::from_secs(2))
        );
        // Third request queues.
        assert_eq!(d.request(t0, 3, SimDuration::from_secs(3)), None);
        assert_eq!(d.busy(), 2);
        assert_eq!(d.queued(), 1);
        // First completion dequeues job 3.
        let (id, t) = d.complete(SimTime::from_secs(1)).unwrap();
        assert_eq!(id, 3);
        assert_eq!(t, SimTime::from_secs(4));
        assert_eq!(d.queued(), 0);
        // Later completions find an empty queue.
        assert!(d.complete(SimTime::from_secs(2)).is_none());
        assert!(d.complete(SimTime::from_secs(4)).is_none());
        assert_eq!(d.busy(), 0);
    }

    #[test]
    fn disk_queue_is_fifo() {
        let mut d: DiskArray<u32> = DiskArray::new(1);
        let t0 = SimTime::ZERO;
        d.request(t0, 1, SimDuration::from_secs(1));
        assert!(d.request(t0, 2, SimDuration::from_secs(1)).is_none());
        assert!(d.request(t0, 3, SimDuration::from_secs(1)).is_none());
        let (a, _) = d.complete(SimTime::from_secs(1)).unwrap();
        let (b, _) = d.complete(SimTime::from_secs(2)).unwrap();
        assert_eq!((a, b), (2, 3));
        assert_eq!(d.peak_queue(), 2);
    }

    #[test]
    #[should_panic(expected = "no busy disk")]
    fn completing_idle_disk_panics() {
        let mut d: DiskArray<u32> = DiskArray::new(1);
        let _ = d.complete(SimTime::ZERO);
    }
}
