//! Property-based tests of workload generation: template instantiation
//! validity, schedule arithmetic, generator determinism, and trace CSV
//! round-tripping, for arbitrary seeds, schedules, and traces.

use proptest::prelude::*;
use qsched_dbms::query::{ClassId, ClientId, QueryId, QueryKind};
use qsched_dbms::DbmsConfig;
use qsched_sim::{RngHub, SimDuration, SimTime};
use qsched_workload::generator::{QueryGen, TemplateSetGen};
use qsched_workload::templates::{tpcc_templates, tpch_templates};
use qsched_workload::{Schedule, Trace, TraceEvent};

/// Raw generated row: ((offset µs, class, olap), (client, template,
/// estimate, true cost, io fraction)). The vendored proptest shim has no
/// `prop_map`, so rows are assembled into a [`Trace`] inside the test body.
type RawRow = ((u64, u16, bool), (u32, u16, f64, f64, f64));

/// Strategy for a list of valid (unordered) trace rows.
fn arb_rows(min: usize) -> impl Strategy<Value = Vec<RawRow>> {
    prop::collection::vec(
        (
            (0u64..10_000_000, 0u16..8, any::<bool>()),
            (0u32..64, 0u16..30, 1.0f64..1e6, 1.0f64..1e6, 0.0f64..1.0),
        ),
        min..40,
    )
}

/// Assemble generated rows into a valid trace (sorted arrival offsets).
fn trace_from_rows(mut rows: Vec<RawRow>) -> Trace {
    rows.sort_by_key(|r| r.0 .0);
    Trace::new(
        rows.into_iter()
            .map(
                |((at_us, class, olap), (client, template, est, cost, io))| TraceEvent {
                    at: SimDuration::from_micros(at_us),
                    class: ClassId(class),
                    kind: if olap {
                        QueryKind::Olap
                    } else {
                        QueryKind::Oltp
                    },
                    client: ClientId(client),
                    template,
                    estimated_cost: est,
                    true_cost: cost,
                    io_fraction: io,
                },
            )
            .collect(),
    )
}

proptest! {
    /// Every instantiated query is internally consistent for any seed.
    #[test]
    fn instantiated_queries_are_valid(seed in any::<u64>(), olap in any::<bool>()) {
        let cfg = DbmsConfig::default();
        let templates = if olap { tpch_templates() } else { tpcc_templates() };
        let mut g = TemplateSetGen::new(
            ClassId(1),
            templates,
            cfg.clone(),
            RngHub::new(seed).stream("prop"),
        );
        for i in 0..100u64 {
            let q = g.next_query(QueryId(i), ClientId(3));
            prop_assert_eq!(q.id, QueryId(i));
            prop_assert_eq!(q.client, ClientId(3));
            prop_assert_eq!(q.kind, if olap { QueryKind::Olap } else { QueryKind::Oltp });
            prop_assert!(q.true_cost.get() >= 1.0);
            prop_assert!(q.estimated_cost.get() >= 1.0);
            prop_assert!(q.shape.cycles >= 1);
            prop_assert!(q.shape.weight >= 1.0);
            // Weight matches the engine's cost-intensity rule.
            let expect_w = (q.true_cost.get() / cfg.cost_per_weight).max(1.0);
            prop_assert!((q.shape.weight - expect_w).abs() < 1e-9);
            // The shape's total work corresponds to the true cost.
            let total_us = q.shape.cpu_work.as_micros() + q.shape.io_work.as_micros();
            let per_timeron = total_us as f64 / q.true_cost.get();
            prop_assert!(
                (200.0..400.0).contains(&per_timeron),
                "work per timeron {per_timeron} out of calibration range"
            );
        }
    }

    /// Schedule lookups agree with direct construction for arbitrary
    /// schedules.
    #[test]
    fn schedule_lookup_matches_construction(
        period_secs in 1u64..10_000,
        counts in prop::collection::vec(prop::collection::vec(0u32..50, 2..4), 1..20),
    ) {
        // Make the matrix rectangular.
        let width = counts[0].len();
        let rect: Vec<Vec<u32>> = counts.iter().map(|row| {
            let mut r = row.clone();
            r.resize(width, 1);
            r
        }).collect();
        let s = Schedule::new(SimDuration::from_secs(period_secs), rect.clone());
        prop_assert_eq!(s.periods(), rect.len());
        prop_assert_eq!(s.classes(), width);
        for (p, row) in rect.iter().enumerate() {
            let t = SimTime::from_secs(p as u64 * period_secs);
            prop_assert_eq!(s.period_at(t), p);
            for (c, &count) in row.iter().enumerate() {
                prop_assert_eq!(s.count(p, c), count);
            }
        }
        // The instant before a boundary still belongs to the prior period.
        if rect.len() > 1 {
            let boundary = SimTime::from_secs(period_secs);
            prop_assert_eq!(s.period_at(boundary - SimDuration::from_micros(1)), 0);
        }
        // max_count is an upper bound of every period's count.
        for c in 0..width {
            let m = s.max_count(c);
            prop_assert!(rect.iter().all(|r| r[c] <= m));
        }
    }

    /// Same seed ⇒ identical stream; different seeds ⇒ different streams.
    #[test]
    fn generator_determinism(seed in any::<u64>()) {
        let mk = |s: u64| {
            TemplateSetGen::new(
                ClassId(1),
                tpch_templates(),
                DbmsConfig::default(),
                RngHub::new(s).stream("det"),
            )
        };
        let mut a = mk(seed);
        let mut b = mk(seed);
        let mut c = mk(seed.wrapping_add(1));
        let mut any_diff = false;
        for i in 0..50u64 {
            let qa = a.next_query(QueryId(i), ClientId(0));
            let qb = b.next_query(QueryId(i), ClientId(0));
            let qc = c.next_query(QueryId(i), ClientId(0));
            prop_assert_eq!(&qa, &qb);
            if qa.true_cost != qc.true_cost {
                any_diff = true;
            }
        }
        prop_assert!(any_diff, "different seeds should differ somewhere");
    }

    /// CSV round-trip is the identity for arbitrary valid traces:
    /// `parse(serialize(t)) == t`.
    #[test]
    fn trace_csv_round_trip(rows in arb_rows(0)) {
        let t = trace_from_rows(rows);
        let back = Trace::from_csv(&t.to_csv());
        prop_assert_eq!(back, Ok(t));
    }

    /// Corrupting any one row with a non-finite cost, a negative offset, or
    /// an out-of-order timestamp is rejected with that row's line number.
    #[test]
    fn trace_csv_rejects_corruption_with_line_numbers(
        rows in arb_rows(2),
        pick in any::<usize>(),
        corruption in 0usize..4,
    ) {
        let t = trace_from_rows(rows);
        let csv = t.to_csv();
        let row = pick % t.len(); // 0-based event index
        let lineno = row + 2; // +1 for the header, +1 for 1-based lines
        let mut lines: Vec<String> = csv.lines().map(str::to_string).collect();
        let mut f: Vec<String> = lines[row + 1].split(',').map(str::to_string).collect();
        match corruption {
            0 => f[6] = "NaN".to_string(), // non-finite true cost
            1 => f[5] = "inf".to_string(), // non-finite estimate
            2 => f[0] = "-17".to_string(), // negative offset
            _ => {
                // Push this arrival past its successor (or, for the last
                // row, pull it before its predecessor).
                if row + 1 < t.len() {
                    let next = t.events()[row + 1].at.as_micros();
                    f[0] = (next + 1).to_string();
                    // The *successor* line is now the out-of-order one.
                } else {
                    let prev = t.events()[row - 1].at.as_micros();
                    prop_assume!(prev > 0); // cannot move before offset 0
                    f[0] = (prev - 1).to_string();
                }
            }
        }
        let moved_forward = corruption == 3 && row + 1 < t.len();
        lines[row + 1] = f.join(",");
        let err = Trace::from_csv(&lines.join("\n")).unwrap_err();
        let expect_line = if moved_forward { lineno + 1 } else { lineno };
        prop_assert!(
            err.contains(&format!("line {expect_line}")),
            "error '{err}' should name line {expect_line}"
        );
    }
}
