//! Query templates: the cost profiles behind the TPC-H-like and TPC-C-like
//! workloads.
//!
//! A [`Template`] captures everything the generator needs to instantiate a
//! query: the *mean* optimizer cost in timerons, the instance-to-instance
//! cost spread (parameter markers make some instances much heavier than
//! others), the I/O fraction, and the optimizer's own estimation error.
//!
//! The absolute numbers are calibrated to the reproduction's simulated
//! 2-core/17-disk machine (see `DbmsConfig`): TPC-C transactions execute in
//! tens of milliseconds solo; included TPC-H queries in roughly 1–15 seconds
//! solo (a 500 MB database is small); the four excluded TPC-H queries are an
//! order of magnitude heavier, which is why the paper dropped them.

use qsched_dbms::query::{ClassId, ClientId, ExecShape, Query, QueryId, QueryKind};
use qsched_dbms::{DbmsConfig, Timerons};
use qsched_sim::dist::{Dist, LogNormal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Target duration of a single I/O burst; the cycle count of a query is its
/// total I/O work divided by this (long scans issue many bursts).
const IO_BURST_TARGET_SECS: f64 = 0.05;

/// A query template: the statistical profile of one query type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Template {
    /// Human-readable name ("TPC-H Q1", "TPC-C NewOrder").
    pub name: &'static str,
    /// Workload-defined template index (TPC-H query number / TPC-C type).
    pub template_id: u16,
    /// OLAP or OLTP.
    pub kind: QueryKind,
    /// Mean true cost, in timerons.
    pub mean_cost: f64,
    /// Log-space sigma of instance-to-instance cost variation.
    pub cost_sigma: f64,
    /// Fraction of the cost attributable to I/O.
    pub io_fraction: f64,
    /// Log-space sigma of the optimizer's estimation error
    /// (estimate = true × LogNormal(1, sigma)).
    pub estimate_sigma: f64,
    /// Relative frequency in a mixed stream (TPC-C mix weights; uniform for
    /// TPC-H).
    pub weight: f64,
}

impl Template {
    /// Instantiate one query from this template.
    pub fn instantiate<R: Rng + ?Sized>(
        &self,
        id: QueryId,
        client: ClientId,
        class: ClassId,
        cfg: &DbmsConfig,
        rng: &mut R,
    ) -> Query {
        let true_cost = LogNormal::with_mean(self.mean_cost, self.cost_sigma).sample(rng);
        let err = LogNormal::with_mean(1.0, self.estimate_sigma).sample(rng);
        let estimated = (true_cost * err).max(1.0);
        let true_cost = Timerons::new(true_cost.max(1.0));
        let shape = self.shape_for(true_cost, cfg);
        Query {
            id,
            client,
            class,
            kind: self.kind,
            template: self.template_id,
            estimated_cost: Timerons::new(estimated),
            true_cost,
            shape,
        }
    }

    /// The execution shape of an instance with the given true cost.
    pub fn shape_for(&self, true_cost: Timerons, cfg: &DbmsConfig) -> ExecShape {
        let io_work = cfg.io_per_timeron.as_secs_f64() * true_cost.get() * self.io_fraction;
        let cycles = (io_work / IO_BURST_TARGET_SECS).ceil().max(1.0) as u32;
        cfg.shape(true_cost, self.io_fraction, cycles)
    }

    /// Mean solo execution time on the given hardware (no contention).
    pub fn mean_solo_time_secs(&self, cfg: &DbmsConfig) -> f64 {
        let cpu = cfg.cpu_per_timeron.as_secs_f64() * self.mean_cost * (1.0 - self.io_fraction);
        let io = cfg.io_per_timeron.as_secs_f64() * self.mean_cost * self.io_fraction;
        cpu + io
    }
}

/// The TPC-H query numbers the paper excludes as "very large".
pub const TPCH_EXCLUDED: [u16; 4] = [16, 19, 20, 21];

/// The 22 TPC-H-like templates (500 MB scale), *including* the four the
/// paper excludes — callers filter with [`TPCH_EXCLUDED`] / [`tpch_templates`].
pub fn tpch_all_templates() -> Vec<Template> {
    // (query number, mean cost in timerons, io fraction)
    // Costs reflect the broad spread of TPC-H plan costs at a small scale
    // factor: multi-way joins and aggregations over lineitem dominate.
    // I/O fractions average ~0.75: I/O-dominant in *time* (the io-per-timeron
    // constant is higher than the cpu one), while each admitted timeron still
    // exerts the CPU pressure that couples OLAP admission to OLTP response
    // (the paper's Figure 2 linearity).
    const ROWS: [(u16, f64, f64); 22] = [
        (1, 5200.0, 0.78),    // pricing summary: full lineitem scan
        (2, 900.0, 0.66),     // minimum cost supplier
        (3, 3400.0, 0.76),    // shipping priority
        (4, 2600.0, 0.75),    // order priority check
        (5, 3800.0, 0.77),    // local supplier volume
        (6, 2100.0, 0.84),    // revenue forecast: scan + filter
        (7, 4100.0, 0.76),    // volume shipping
        (8, 3600.0, 0.75),    // market share
        (9, 7400.0, 0.78),    // product type profit
        (10, 3300.0, 0.75),   // returned items
        (11, 1100.0, 0.68),   // important stock
        (12, 2500.0, 0.79),   // ship-mode priority
        (13, 2900.0, 0.70),   // customer distribution
        (14, 2200.0, 0.81),   // promotion effect
        (15, 2400.0, 0.79),   // top supplier
        (16, 26_000.0, 0.66), // parts/supplier relation — EXCLUDED
        (17, 4800.0, 0.74),   // small-quantity-order revenue
        (18, 6800.0, 0.77),   // large volume customer
        (19, 31_000.0, 0.72), // discounted revenue — EXCLUDED
        (20, 38_000.0, 0.74), // potential part promotion — EXCLUDED
        (21, 44_000.0, 0.71), // suppliers who kept orders waiting — EXCLUDED
        (22, 1300.0, 0.67),   // global sales opportunity
    ];
    ROWS.iter()
        .map(|&(qnum, cost, io)| Template {
            name: tpch_name(qnum),
            template_id: qnum,
            kind: QueryKind::Olap,
            mean_cost: cost,
            cost_sigma: 0.45,
            io_fraction: io,
            estimate_sigma: 0.25,
            weight: 1.0,
        })
        .collect()
}

/// The 18 TPC-H-like templates used by the paper (Q16/Q19/Q20/Q21 excluded).
pub fn tpch_templates() -> Vec<Template> {
    tpch_all_templates()
        .into_iter()
        .filter(|t| !TPCH_EXCLUDED.contains(&t.template_id))
        .collect()
}

fn tpch_name(q: u16) -> &'static str {
    const NAMES: [&str; 22] = [
        "TPC-H Q1",
        "TPC-H Q2",
        "TPC-H Q3",
        "TPC-H Q4",
        "TPC-H Q5",
        "TPC-H Q6",
        "TPC-H Q7",
        "TPC-H Q8",
        "TPC-H Q9",
        "TPC-H Q10",
        "TPC-H Q11",
        "TPC-H Q12",
        "TPC-H Q13",
        "TPC-H Q14",
        "TPC-H Q15",
        "TPC-H Q16",
        "TPC-H Q17",
        "TPC-H Q18",
        "TPC-H Q19",
        "TPC-H Q20",
        "TPC-H Q21",
        "TPC-H Q22",
    ];
    NAMES[(q - 1) as usize]
}

/// The 5 TPC-C-like transaction templates (5-warehouse scale) with the
/// standard 45/43/4/4/4 mix.
pub fn tpcc_templates() -> Vec<Template> {
    // (type id, name, weight %, mean cost, io fraction, cost sigma)
    const ROWS: [(u16, &str, f64, f64, f64, f64); 5] = [
        (1, "TPC-C NewOrder", 45.0, 60.0, 0.25, 0.20),
        (2, "TPC-C Payment", 43.0, 26.0, 0.20, 0.15),
        (3, "TPC-C OrderStatus", 4.0, 20.0, 0.15, 0.15),
        (4, "TPC-C Delivery", 4.0, 120.0, 0.30, 0.25),
        (5, "TPC-C StockLevel", 4.0, 95.0, 0.35, 0.30),
    ];
    ROWS.iter()
        .map(|&(id, name, weight, cost, io, sigma)| Template {
            name,
            template_id: id,
            kind: QueryKind::Oltp,
            mean_cost: cost,
            cost_sigma: sigma,
            io_fraction: io,
            estimate_sigma: 0.15,
            weight,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsched_sim::RngHub;

    #[test]
    fn tpch_set_excludes_the_four_large_queries() {
        let all = tpch_all_templates();
        assert_eq!(all.len(), 22);
        let used = tpch_templates();
        assert_eq!(used.len(), 18);
        for q in TPCH_EXCLUDED {
            assert!(used.iter().all(|t| t.template_id != q));
            assert!(all.iter().any(|t| t.template_id == q));
        }
    }

    #[test]
    fn excluded_queries_are_the_heaviest() {
        let all = tpch_all_templates();
        let max_included = all
            .iter()
            .filter(|t| !TPCH_EXCLUDED.contains(&t.template_id))
            .map(|t| t.mean_cost)
            .fold(0.0, f64::max);
        for t in all
            .iter()
            .filter(|t| TPCH_EXCLUDED.contains(&t.template_id))
        {
            assert!(
                t.mean_cost > 2.0 * max_included,
                "{} should be far heavier than included queries",
                t.name
            );
        }
    }

    #[test]
    fn olap_queries_are_io_dominant_oltp_cpu_dominant() {
        for t in tpch_templates() {
            assert!(t.io_fraction > 0.5, "{} should be I/O-dominant", t.name);
        }
        for t in tpcc_templates() {
            assert!(t.io_fraction < 0.5, "{} should be CPU-dominant", t.name);
        }
    }

    #[test]
    fn solo_time_scales_match_the_paper_anchors() {
        let cfg = DbmsConfig::default();
        for t in tpcc_templates() {
            let solo = t.mean_solo_time_secs(&cfg);
            assert!(solo < 0.2, "{} solo {solo}s should be sub-second", t.name);
        }
        for t in tpch_templates() {
            let solo = t.mean_solo_time_secs(&cfg);
            assert!(
                (0.2..60.0).contains(&solo),
                "{} solo {solo}s should take seconds",
                t.name
            );
        }
    }

    #[test]
    fn tpcc_mix_weights_sum_to_100() {
        let sum: f64 = tpcc_templates().iter().map(|t| t.weight).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn instantiate_produces_consistent_queries() {
        let cfg = DbmsConfig::default();
        let mut rng = RngHub::new(9).stream("tmpl");
        let t = &tpch_templates()[0];
        for i in 0..200u64 {
            let q = t.instantiate(QueryId(i), ClientId(1), ClassId(1), &cfg, &mut rng);
            assert_eq!(q.kind, QueryKind::Olap);
            assert!(q.true_cost.get() >= 1.0);
            assert!(q.estimated_cost.get() >= 1.0);
            assert!(q.shape.cycles >= 1);
            // Shape must match the template's io split of the true cost.
            let expect_io = cfg.io_per_timeron.as_secs_f64() * q.true_cost.get() * t.io_fraction;
            assert!((q.shape.io_work.as_secs_f64() - expect_io).abs() < 1e-3);
        }
    }

    #[test]
    fn instance_costs_spread_around_mean() {
        let cfg = DbmsConfig::default();
        let mut rng = RngHub::new(10).stream("spread");
        let t = &tpch_templates()[0];
        let costs: Vec<f64> = (0..5000u64)
            .map(|i| {
                t.instantiate(QueryId(i), ClientId(1), ClassId(1), &cfg, &mut rng)
                    .true_cost
                    .get()
            })
            .collect();
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        assert!(
            (mean - t.mean_cost).abs() / t.mean_cost < 0.1,
            "mean {mean}"
        );
        let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = costs.iter().copied().fold(0.0, f64::max);
        assert!(
            max / min > 3.0,
            "instances should vary widely: {min}..{max}"
        );
    }

    #[test]
    fn estimates_are_noisy_but_unbiased() {
        let cfg = DbmsConfig::default();
        let mut rng = RngHub::new(11).stream("est");
        let t = &tpcc_templates()[0];
        let mut ratio_sum = 0.0;
        let mut any_off = false;
        for i in 0..2000u64 {
            let q = t.instantiate(QueryId(i), ClientId(1), ClassId(3), &cfg, &mut rng);
            let r = q.estimated_cost.get() / q.true_cost.get();
            ratio_sum += r;
            if (r - 1.0).abs() > 0.05 {
                any_off = true;
            }
        }
        let mean_ratio = ratio_sum / 2000.0;
        assert!(
            (mean_ratio - 1.0).abs() < 0.05,
            "estimation bias {mean_ratio}"
        );
        assert!(any_off, "estimates should actually be noisy");
    }
}
