//! Per-class query generators.
//!
//! A generator owns a template set and a deterministic random stream and
//! produces fully-formed [`Query`] values on demand. OLAP classes draw
//! templates uniformly (a TPC-H-like stream); the OLTP class draws by the
//! TPC-C mix weights.

use crate::templates::Template;
use qsched_dbms::query::{ClassId, ClientId, Query, QueryId};
use qsched_dbms::DbmsConfig;
use qsched_sim::dist::Empirical;
use qsched_sim::rng::Stream;

/// Source of queries for one workload class. `Send` so the owning engine
/// can migrate across worker threads between allocation barriers.
pub trait QueryGen: Send {
    /// Produce the next query for `client`.
    fn next_query(&mut self, id: QueryId, client: ClientId) -> Query;

    /// The class this generator feeds.
    fn class(&self) -> ClassId;

    /// Mean cost of the stream, in timerons (used for sanity checks and
    /// capacity planning).
    fn mean_cost(&self) -> f64;
}

/// A generator drawing templates from a weighted set.
pub struct TemplateSetGen {
    class: ClassId,
    templates: Vec<Template>,
    chooser: Empirical,
    cfg: DbmsConfig,
    rng: Stream,
}

impl TemplateSetGen {
    /// Build a generator for `class` over `templates` using the templates'
    /// own weights.
    ///
    /// # Panics
    /// Panics if `templates` is empty.
    pub fn new(class: ClassId, templates: Vec<Template>, cfg: DbmsConfig, rng: Stream) -> Self {
        assert!(
            !templates.is_empty(),
            "generator needs at least one template"
        );
        let pairs: Vec<(f64, f64)> = templates
            .iter()
            .enumerate()
            .map(|(i, t)| (i as f64, t.weight))
            .collect();
        TemplateSetGen {
            class,
            templates,
            chooser: Empirical::new(&pairs),
            cfg,
            rng,
        }
    }

    /// The template set backing this generator.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }
}

impl QueryGen for TemplateSetGen {
    fn next_query(&mut self, id: QueryId, client: ClientId) -> Query {
        let idx = self.chooser.sample_index(&mut self.rng);
        self.templates[idx].instantiate(id, client, self.class, &self.cfg, &mut self.rng)
    }

    fn class(&self) -> ClassId {
        self.class
    }

    fn mean_cost(&self) -> f64 {
        let total_w: f64 = self.templates.iter().map(|t| t.weight).sum();
        self.templates
            .iter()
            .map(|t| t.mean_cost * t.weight)
            .sum::<f64>()
            / total_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{tpcc_templates, tpch_templates};
    use qsched_dbms::query::QueryKind;
    use qsched_sim::RngHub;

    fn hub() -> RngHub {
        RngHub::new(2024)
    }

    #[test]
    fn generates_queries_of_the_right_class_and_kind() {
        let mut g = TemplateSetGen::new(
            ClassId(1),
            tpch_templates(),
            DbmsConfig::default(),
            hub().stream("g1"),
        );
        for i in 0..50 {
            let q = g.next_query(QueryId(i), ClientId(7));
            assert_eq!(q.class, ClassId(1));
            assert_eq!(q.client, ClientId(7));
            assert_eq!(q.kind, QueryKind::Olap);
        }
    }

    #[test]
    fn tpcc_stream_follows_the_mix() {
        let mut g = TemplateSetGen::new(
            ClassId(3),
            tpcc_templates(),
            DbmsConfig::default(),
            hub().stream("g3"),
        );
        let mut new_order = 0;
        let n = 20_000;
        for i in 0..n {
            let q = g.next_query(QueryId(i), ClientId(1));
            if q.template == 1 {
                new_order += 1;
            }
        }
        let frac = f64::from(new_order) / f64::from(n as u32);
        assert!((frac - 0.45).abs() < 0.02, "NewOrder fraction {frac}");
    }

    #[test]
    fn tpch_stream_is_roughly_uniform_over_templates() {
        let mut g = TemplateSetGen::new(
            ClassId(1),
            tpch_templates(),
            DbmsConfig::default(),
            hub().stream("g-uni"),
        );
        let mut counts = std::collections::HashMap::new();
        for i in 0..18_000u64 {
            let q = g.next_query(QueryId(i), ClientId(1));
            *counts.entry(q.template).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 18);
        for (&tid, &c) in &counts {
            assert!(
                (600..=1400).contains(&c),
                "template {tid} drawn {c} times; expected ~1000"
            );
        }
    }

    #[test]
    fn mean_cost_matches_weighted_templates() {
        let g = TemplateSetGen::new(
            ClassId(3),
            tpcc_templates(),
            DbmsConfig::default(),
            hub().stream("mc"),
        );
        // 0.45*60 + 0.43*26 + 0.04*(20+120+95) = 27 + 11.18 + 9.4 = 47.58
        assert!((g.mean_cost() - 47.58).abs() < 0.01);
    }

    #[test]
    fn same_seed_reproduces_identical_stream() {
        let mk = || {
            TemplateSetGen::new(
                ClassId(1),
                tpch_templates(),
                DbmsConfig::default(),
                hub().stream("repro"),
            )
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..100 {
            let qa = a.next_query(QueryId(i), ClientId(1));
            let qb = b.next_query(QueryId(i), ClientId(1));
            assert_eq!(qa, qb);
        }
    }
}
