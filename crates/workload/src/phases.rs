//! Non-stationary workload phases: overlays compiled onto a base
//! [`Schedule`].
//!
//! The paper's evaluation is one hand-tuned 24-hour mix (Figure 3). Real
//! deployments see *shapes* on top of any baseline: diurnal demand cycles,
//! flash crowds, tenants onboarding and churning, and operators flipping a
//! class's importance mid-run. A [`PhaseOverlay`] describes one such shape;
//! [`compile`] resamples the base schedule at a finer resolution with all
//! overlays applied, producing a plain piecewise-constant [`Schedule`] that
//! the existing closed-loop client driver consumes unchanged.
//!
//! Flash crowds reuse the time-gated window idiom from the simulator's
//! `ChaosTrack` (`start <= t && t < end`, windows strictly ordered), so
//! workload phases and fault windows can be lined up against each other in
//! a scenario without unit mismatches.

use crate::schedule::Schedule;
use qsched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A half-open `[start, end)` activity window (same semantics as the fault
/// injector's `ChaosShape::Windows`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl PhaseWindow {
    /// Build a window from second offsets.
    pub fn from_secs(start: u64, end: u64) -> Self {
        PhaseWindow {
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// One non-stationary shape applied to a single class of a base schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseOverlay {
    /// Sinusoidal demand cycle: the class's client count is scaled by
    /// `1 + amplitude * sin(2π · t / cycle)`. Models day/night load.
    Diurnal {
        /// Class column in the base schedule.
        class: usize,
        /// Full cycle length (e.g. the schedule's total duration for one
        /// "day").
        cycle: SimDuration,
        /// Peak-to-mean swing, in `[0, 1)` so the count never goes negative.
        amplitude: f64,
    },
    /// Sudden surge: inside each window the class's count is multiplied by
    /// `multiplier` (≥ 1). Models a flash crowd / viral event.
    FlashCrowd {
        /// Class column in the base schedule.
        class: usize,
        /// Surge windows; must be non-empty, each non-empty, and strictly
        /// ordered without overlap.
        windows: Vec<PhaseWindow>,
        /// Client-count multiplier inside a window.
        multiplier: f64,
    },
    /// Tenant lifecycle: the class contributes zero clients before
    /// `onboard_at` and again from `churn_at` onward (`None` = never
    /// churns). Models onboarding and departure.
    Churn {
        /// Class column in the base schedule.
        class: usize,
        /// First instant the tenant is active.
        onboard_at: SimTime,
        /// First instant after departure, if the tenant ever leaves.
        churn_at: Option<SimTime>,
    },
}

impl PhaseOverlay {
    /// The class column this overlay targets.
    pub fn class(&self) -> usize {
        match *self {
            PhaseOverlay::Diurnal { class, .. }
            | PhaseOverlay::FlashCrowd { class, .. }
            | PhaseOverlay::Churn { class, .. } => class,
        }
    }

    /// Validate the overlay against a base schedule.
    pub fn validate(&self, base: &Schedule) -> Result<(), String> {
        if self.class() >= base.classes() {
            return Err(format!(
                "overlay targets class {} but the schedule has {} classes",
                self.class(),
                base.classes()
            ));
        }
        match self {
            PhaseOverlay::Diurnal {
                cycle, amplitude, ..
            } => {
                if cycle.is_zero() {
                    return Err("diurnal cycle must be positive".to_string());
                }
                if !amplitude.is_finite() || !(0.0..1.0).contains(amplitude) {
                    return Err(format!("diurnal amplitude {amplitude} outside [0, 1)"));
                }
            }
            PhaseOverlay::FlashCrowd {
                windows,
                multiplier,
                ..
            } => {
                if windows.is_empty() {
                    return Err("flash crowd needs at least one window".to_string());
                }
                let mut prev_end = SimTime::ZERO;
                for (i, w) in windows.iter().enumerate() {
                    if w.end <= w.start {
                        return Err(format!("flash crowd window {i} is empty or inverted"));
                    }
                    if i > 0 && w.start < prev_end {
                        return Err(format!(
                            "flash crowd window {i} overlaps or precedes window {}",
                            i - 1
                        ));
                    }
                    prev_end = w.end;
                }
                if !multiplier.is_finite() || *multiplier < 1.0 {
                    return Err(format!("flash crowd multiplier {multiplier} must be ≥ 1"));
                }
            }
            PhaseOverlay::Churn {
                onboard_at,
                churn_at,
                ..
            } => {
                if let Some(churn) = churn_at {
                    if churn <= onboard_at {
                        return Err("churn must happen after onboarding".to_string());
                    }
                }
            }
        }
        Ok(())
    }

    /// Multiplicative factor this overlay applies to its class at `t`.
    fn factor_at(&self, t: SimTime) -> f64 {
        match self {
            PhaseOverlay::Diurnal {
                cycle, amplitude, ..
            } => {
                let phase = t.as_secs_f64() / cycle.as_secs_f64();
                1.0 + amplitude * (std::f64::consts::TAU * phase).sin()
            }
            PhaseOverlay::FlashCrowd {
                windows,
                multiplier,
                ..
            } => {
                if windows.iter().any(|w| w.contains(t)) {
                    *multiplier
                } else {
                    1.0
                }
            }
            PhaseOverlay::Churn {
                onboard_at,
                churn_at,
                ..
            } => {
                let active = t >= *onboard_at && churn_at.is_none_or(|churn| t < churn);
                if active {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Compile a base schedule plus overlays into a finer piecewise-constant
/// schedule.
///
/// The overlaid demand is sampled at the *start* of each `resolution`-sized
/// period (matching the `[start, end)` window semantics), multiplying the
/// base count by every overlay factor and rounding to the nearest client.
/// The result covers the base schedule's full duration and drives the
/// existing client machinery with no new driver code.
pub fn compile(
    base: &Schedule,
    overlays: &[PhaseOverlay],
    resolution: SimDuration,
) -> Result<Schedule, String> {
    base.validate()?;
    if resolution.is_zero() {
        return Err("phase resolution must be positive".to_string());
    }
    for o in overlays {
        o.validate(base)?;
    }
    let total = base.total_duration();
    let periods = total.as_micros().div_ceil(resolution.as_micros()).max(1);
    let mut counts = Vec::with_capacity(periods as usize);
    for p in 0..periods {
        let t = SimTime::ZERO + resolution * p;
        let row = base.counts_at(base.period_at(t));
        let mut out = Vec::with_capacity(row.len());
        for (class, &c) in row.iter().enumerate() {
            let mut v = f64::from(c);
            for o in overlays.iter().filter(|o| o.class() == class) {
                v *= o.factor_at(t);
            }
            out.push(v.round().max(0.0) as u32);
        }
        counts.push(out);
    }
    Schedule::try_new(resolution, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Schedule {
        Schedule::constant(SimDuration::from_mins(60), vec![4, 10])
    }

    #[test]
    fn diurnal_swings_around_the_base_count() {
        let s = compile(
            &base(),
            &[PhaseOverlay::Diurnal {
                class: 0,
                cycle: SimDuration::from_mins(60),
                amplitude: 0.5,
            }],
            SimDuration::from_mins(5),
        )
        .unwrap();
        assert_eq!(s.periods(), 12);
        // Quarter cycle (t = 15 min) is the peak, three-quarter the trough.
        assert_eq!(s.count(3, 0), 6);
        assert_eq!(s.count(9, 0), 2);
        // t = 0 is the base count; the untouched class never moves.
        assert_eq!(s.count(0, 0), 4);
        for p in 0..12 {
            assert_eq!(s.count(p, 1), 10);
        }
    }

    #[test]
    fn flash_crowd_multiplies_inside_windows_only() {
        let s = compile(
            &base(),
            &[PhaseOverlay::FlashCrowd {
                class: 1,
                windows: vec![PhaseWindow::from_secs(600, 1200)],
                multiplier: 3.0,
            }],
            SimDuration::from_mins(5),
        )
        .unwrap();
        assert_eq!(s.count(1, 1), 10); // 300 s: before the window
        assert_eq!(s.count(2, 1), 30); // 600 s: window start is inclusive
        assert_eq!(s.count(3, 1), 30); // 900 s: inside
        assert_eq!(s.count(4, 1), 10); // 1200 s: window end is exclusive
    }

    #[test]
    fn churn_masks_before_onboarding_and_after_departure() {
        let s = compile(
            &base(),
            &[PhaseOverlay::Churn {
                class: 0,
                onboard_at: SimTime::from_secs(600),
                churn_at: Some(SimTime::from_secs(1800)),
            }],
            SimDuration::from_mins(5),
        )
        .unwrap();
        assert_eq!(s.count(0, 0), 0);
        assert_eq!(s.count(2, 0), 4); // onboarded
        assert_eq!(s.count(5, 0), 4); // still active at 1500 s
        assert_eq!(s.count(6, 0), 0); // churned at 1800 s
    }

    #[test]
    fn overlays_compose_multiplicatively() {
        let s = compile(
            &base(),
            &[
                PhaseOverlay::FlashCrowd {
                    class: 1,
                    windows: vec![PhaseWindow::from_secs(0, 600)],
                    multiplier: 2.0,
                },
                PhaseOverlay::Churn {
                    class: 1,
                    onboard_at: SimTime::from_secs(300),
                    churn_at: None,
                },
            ],
            SimDuration::from_mins(5),
        )
        .unwrap();
        assert_eq!(s.count(0, 1), 0); // not yet onboarded, crowd irrelevant
        assert_eq!(s.count(1, 1), 20); // onboarded inside the crowd window
        assert_eq!(s.count(2, 1), 10); // crowd over
    }

    #[test]
    fn compiled_schedule_covers_the_base_duration() {
        let b = Schedule::new(
            SimDuration::from_mins(7),
            vec![vec![1, 2], vec![3, 4], vec![5, 6]],
        );
        let s = compile(&b, &[], SimDuration::from_mins(2)).unwrap();
        assert!(s.total_duration() >= b.total_duration());
        // Resampling with no overlays reproduces the base counts.
        assert_eq!(s.counts_at(0), b.counts_at(0));
        assert_eq!(s.counts_at(4), b.counts_at(1)); // t = 8 min → base period 1
    }

    #[test]
    fn malformed_overlays_are_rejected() {
        let b = base();
        let bad = [
            PhaseOverlay::Diurnal {
                class: 7,
                cycle: SimDuration::from_mins(10),
                amplitude: 0.5,
            },
            PhaseOverlay::Diurnal {
                class: 0,
                cycle: SimDuration::ZERO,
                amplitude: 0.5,
            },
            PhaseOverlay::Diurnal {
                class: 0,
                cycle: SimDuration::from_mins(10),
                amplitude: 1.5,
            },
            PhaseOverlay::FlashCrowd {
                class: 0,
                windows: vec![],
                multiplier: 2.0,
            },
            PhaseOverlay::FlashCrowd {
                class: 0,
                windows: vec![PhaseWindow::from_secs(100, 100)],
                multiplier: 2.0,
            },
            PhaseOverlay::FlashCrowd {
                class: 0,
                windows: vec![
                    PhaseWindow::from_secs(100, 300),
                    PhaseWindow::from_secs(200, 400),
                ],
                multiplier: 2.0,
            },
            PhaseOverlay::FlashCrowd {
                class: 0,
                windows: vec![PhaseWindow::from_secs(0, 100)],
                multiplier: 0.5,
            },
            PhaseOverlay::Churn {
                class: 0,
                onboard_at: SimTime::from_secs(100),
                churn_at: Some(SimTime::from_secs(50)),
            },
        ];
        for o in bad {
            assert!(o.validate(&b).is_err(), "{o:?} should be rejected");
            assert!(compile(&b, std::slice::from_ref(&o), SimDuration::from_mins(1)).is_err());
        }
        assert!(compile(&b, &[], SimDuration::ZERO).is_err());
    }
}
