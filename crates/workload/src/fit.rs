//! Trace-fitted workload generators.
//!
//! "Database-Agnostic Workload Management" argues workload structure should
//! come from traces, not hand-tuned templates. [`TraceFit`] estimates, per
//! service class, the statistical shape of a recorded [`Trace`] — arrival
//! rate, cost distribution, optimizer-error distribution, I/O mix, client
//! population — and [`TraceFit::synthesize`] draws statistically-matched
//! variants from seeded streams, so a single recorded trace becomes a whole
//! family of reproducible what-if workloads.
//!
//! Costs are modelled log-normally (matching the template machinery: heavy
//! right tails, strictly positive), arrivals as a Poisson process per class
//! (exponential interarrivals), and the optimizer estimate as the true cost
//! times an independent log-normal ratio.

use crate::trace::{Trace, TraceEvent};
use qsched_dbms::query::{ClassId, ClientId, QueryKind};
use qsched_sim::dist::{Dist, Exp, LogNormal};
use qsched_sim::{RngHub, SimDuration};
use serde::{Deserialize, Serialize};

/// Fitted statistics of one service class in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassFit {
    /// The service class.
    pub class: ClassId,
    /// OLAP or OLTP (a class is homogeneous in kind; the majority wins if a
    /// trace mixes them).
    pub kind: QueryKind,
    /// Number of arrivals observed.
    pub arrivals: usize,
    /// Mean arrival rate over the trace span, per second.
    pub rate_per_sec: f64,
    /// Mean true cost, timerons (linear space).
    pub mean_cost: f64,
    /// Log-space standard deviation of the true cost.
    pub log_cost_sigma: f64,
    /// Mean estimate/true ratio (linear space).
    pub mean_est_ratio: f64,
    /// Log-space standard deviation of the estimate/true ratio.
    pub log_est_sigma: f64,
    /// Mean I/O fraction.
    pub mean_io_fraction: f64,
    /// Distinct submitting clients, in id order (synthesis cycles through
    /// them so per-client semantics survive).
    pub clients: Vec<ClientId>,
    /// Most frequent template id (used to label synthesized arrivals).
    pub template: u16,
}

/// A per-class statistical fit of a whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFit {
    /// Span the rates were estimated over.
    pub span: SimDuration,
    /// Per-class fits, in class-id order.
    pub classes: Vec<ClassFit>,
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn log_sigma(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let m = mean(&logs);
    (logs.iter().map(|l| (l - m).powi(2)).sum::<f64>() / logs.len() as f64).sqrt()
}

impl TraceFit {
    /// Fit per-class statistics from a recorded trace.
    ///
    /// Returns `Err` for traces too small to estimate rates from (fewer
    /// than two events, or zero span).
    pub fn fit(trace: &Trace) -> Result<TraceFit, String> {
        if trace.len() < 2 {
            return Err(format!(
                "trace has {} events; need at least 2 to fit rates",
                trace.len()
            ));
        }
        let span = trace.span();
        if span.is_zero() {
            return Err("trace span is zero; cannot estimate arrival rates".to_string());
        }
        let mut ids: Vec<ClassId> = trace.events().iter().map(|e| e.class).collect();
        ids.sort();
        ids.dedup();
        let classes = ids
            .into_iter()
            .map(|class| {
                let evs: Vec<&TraceEvent> =
                    trace.events().iter().filter(|e| e.class == class).collect();
                let costs: Vec<f64> = evs.iter().map(|e| e.true_cost).collect();
                let ratios: Vec<f64> = evs.iter().map(|e| e.estimated_cost / e.true_cost).collect();
                let olap = evs.iter().filter(|e| e.kind == QueryKind::Olap).count();
                let mut clients: Vec<ClientId> = evs.iter().map(|e| e.client).collect();
                clients.sort();
                clients.dedup();
                let mut by_template: Vec<(u16, usize)> = Vec::new();
                for e in &evs {
                    match by_template.iter_mut().find(|(t, _)| *t == e.template) {
                        Some((_, n)) => *n += 1,
                        None => by_template.push((e.template, 1)),
                    }
                }
                let template = by_template
                    .iter()
                    .max_by_key(|&&(_, n)| n)
                    .map_or(0, |&(t, _)| t);
                ClassFit {
                    class,
                    kind: if olap * 2 >= evs.len() {
                        QueryKind::Olap
                    } else {
                        QueryKind::Oltp
                    },
                    arrivals: evs.len(),
                    rate_per_sec: evs.len() as f64 / span.as_secs_f64(),
                    mean_cost: mean(&costs),
                    log_cost_sigma: log_sigma(&costs),
                    mean_est_ratio: mean(&ratios),
                    log_est_sigma: log_sigma(&ratios),
                    mean_io_fraction: mean(
                        &evs.iter().map(|e| e.io_fraction).collect::<Vec<f64>>(),
                    ),
                    clients,
                    template,
                }
            })
            .collect();
        Ok(TraceFit { span, classes })
    }

    /// Synthesize a statistically-matched trace over `span`, drawing from
    /// seeded streams of `hub` (one arrival stream and one cost stream per
    /// class, so classes are independent and the result is reproducible).
    pub fn synthesize(&self, span: SimDuration, hub: &RngHub) -> Trace {
        let mut events = Vec::new();
        for (ci, f) in self.classes.iter().enumerate() {
            if f.rate_per_sec <= 0.0 || f.clients.is_empty() {
                continue;
            }
            let mut arr = hub.stream_indexed("fit.arrivals", ci as u64);
            let mut cost_rng = hub.stream_indexed("fit.costs", ci as u64);
            let inter = Exp::with_mean(1.0 / f.rate_per_sec);
            let cost_dist = LogNormal::with_mean(f.mean_cost, f.log_cost_sigma);
            let ratio_dist = LogNormal::with_mean(f.mean_est_ratio, f.log_est_sigma);
            let mut t = inter.sample(&mut arr);
            let mut n = 0usize;
            while t < span.as_secs_f64() {
                let true_cost = cost_dist.sample(&mut cost_rng).max(1.0);
                let est = (true_cost * ratio_dist.sample(&mut cost_rng)).max(1.0);
                events.push(TraceEvent {
                    at: SimDuration::from_secs_f64(t),
                    class: f.class,
                    kind: f.kind,
                    client: f.clients[n % f.clients.len()],
                    template: f.template,
                    estimated_cost: est,
                    true_cost,
                    io_fraction: f.mean_io_fraction.clamp(0.0, 1.0),
                });
                t += inter.sample(&mut arr);
                n += 1;
            }
        }
        Trace::new(events)
    }
}

/// Sample a template-driven mixed trace: Poisson OLAP arrivals drawn from
/// the paper's TPC-H-like templates (class 1) and OLTP arrivals from the
/// TPC-C-like mix (class 3). The statistical anchor for the trace-replay
/// scenario and the fit-fidelity tests.
pub fn sample_trace(seed: u64, span: SimDuration) -> Trace {
    use crate::templates::{tpcc_templates, tpch_templates};
    use qsched_sim::dist::Empirical;

    let hub = RngHub::new(seed);
    let mut events = Vec::new();
    // (class, kind, templates, rate/s, clients)
    let plans = [
        (ClassId(1), QueryKind::Olap, tpch_templates(), 0.6, 4u32),
        (ClassId(3), QueryKind::Oltp, tpcc_templates(), 8.0, 12u32),
    ];
    for (ci, (class, kind, templates, rate, clients)) in plans.into_iter().enumerate() {
        let mut rng = hub.stream_indexed("sample-trace", ci as u64);
        let weights: Vec<(f64, f64)> = templates
            .iter()
            .enumerate()
            .map(|(i, t)| (i as f64, t.weight))
            .collect();
        let pick = Empirical::new(&weights);
        let inter = Exp::with_mean(1.0 / rate);
        let mut t = inter.sample(&mut rng);
        let mut n = 0u32;
        while t < span.as_secs_f64() {
            let tmpl = &templates[pick.sample_index(&mut rng)];
            let true_cost = LogNormal::with_mean(tmpl.mean_cost, tmpl.cost_sigma)
                .sample(&mut rng)
                .max(1.0);
            let est = (true_cost * LogNormal::with_mean(1.0, tmpl.estimate_sigma).sample(&mut rng))
                .max(1.0);
            events.push(TraceEvent {
                at: SimDuration::from_secs_f64(t),
                class,
                kind,
                client: ClientId(100 * (ci as u32 + 1) + n % clients),
                template: tmpl.template_id,
                estimated_cost: est,
                true_cost,
                io_fraction: tmpl.io_fraction,
            });
            t += inter.sample(&mut rng);
            n += 1;
        }
    }
    Trace::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_rejects_degenerate_traces() {
        assert!(TraceFit::fit(&Trace::new(vec![])).is_err());
        let e = TraceEvent {
            at: SimDuration::from_secs(1),
            class: ClassId(1),
            kind: QueryKind::Olap,
            client: ClientId(1),
            template: 1,
            estimated_cost: 10.0,
            true_cost: 10.0,
            io_fraction: 0.5,
        };
        assert!(TraceFit::fit(&Trace::new(vec![e])).is_err());
        // Two events at the same instant: zero span.
        assert!(TraceFit::fit(&Trace::new(vec![e, e])).is_err());
    }

    #[test]
    fn fit_recovers_per_class_structure() {
        let trace = sample_trace(42, SimDuration::from_secs(300));
        let fit = TraceFit::fit(&trace).unwrap();
        assert_eq!(fit.classes.len(), 2);
        let olap = &fit.classes[0];
        let oltp = &fit.classes[1];
        assert_eq!(olap.class, ClassId(1));
        assert_eq!(olap.kind, QueryKind::Olap);
        assert_eq!(oltp.class, ClassId(3));
        assert_eq!(oltp.kind, QueryKind::Oltp);
        // Rates near the sampling plan (0.6/s and 8/s).
        assert!((olap.rate_per_sec - 0.6).abs() / 0.6 < 0.25, "{olap:?}");
        assert!((oltp.rate_per_sec - 8.0).abs() / 8.0 < 0.15, "{oltp:?}");
        // OLAP is far heavier and more I/O-bound than OLTP.
        assert!(olap.mean_cost > 10.0 * oltp.mean_cost);
        assert!(olap.mean_io_fraction > 0.5 && oltp.mean_io_fraction < 0.5);
        assert_eq!(olap.clients.len(), 4);
        assert_eq!(oltp.clients.len(), 12);
        // TPC-C modal template is NewOrder (45 % of the mix).
        assert_eq!(oltp.template, 1);
    }

    #[test]
    fn synthesis_matches_source_rate_and_cost_across_seeds() {
        // Satellite: the fitted generator reproduces the source trace's
        // per-class arrival rate and mean cost within tolerance on every
        // one of 8 seeds.
        let source = sample_trace(7, SimDuration::from_secs(400));
        let fit = TraceFit::fit(&source).unwrap();
        let span = SimDuration::from_secs(400);
        for seed in 0..8u64 {
            let synth = fit.synthesize(span, &RngHub::new(1000 + seed));
            let refit = TraceFit::fit(&synth).unwrap();
            for (src, out) in fit.classes.iter().zip(&refit.classes) {
                assert_eq!(src.class, out.class);
                assert_eq!(src.kind, out.kind);
                let rate_err = (out.rate_per_sec - src.rate_per_sec).abs() / src.rate_per_sec;
                assert!(
                    rate_err < 0.2,
                    "seed {seed} class {:?}: rate {} vs {}",
                    src.class,
                    out.rate_per_sec,
                    src.rate_per_sec
                );
                let cost_err = (out.mean_cost - src.mean_cost).abs() / src.mean_cost;
                assert!(
                    cost_err < 0.25,
                    "seed {seed} class {:?}: cost {} vs {}",
                    src.class,
                    out.mean_cost,
                    src.mean_cost
                );
            }
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let source = sample_trace(3, SimDuration::from_secs(200));
        let fit = TraceFit::fit(&source).unwrap();
        let a = fit.synthesize(SimDuration::from_secs(200), &RngHub::new(5));
        let b = fit.synthesize(SimDuration::from_secs(200), &RngHub::new(5));
        let c = fit.synthesize(SimDuration::from_secs(200), &RngHub::new(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_trace_round_trips_through_csv() {
        let t = sample_trace(11, SimDuration::from_secs(60));
        assert!(!t.is_empty());
        let back = Trace::from_csv(&t.to_csv()).unwrap();
        // CSV carries full f64 precision via Display round-trip.
        assert_eq!(t, back);
    }
}
