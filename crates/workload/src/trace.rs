//! Trace replay: drive the simulator with a recorded workload instead of
//! the synthetic generators.
//!
//! A trace is a time-ordered list of query arrivals, each carrying the
//! attributes the engine needs (class, optimizer estimate, true cost, I/O
//! fraction). Traces round-trip through a simple CSV so recorded production
//! workloads — or the output of one simulation — can be replayed against
//! any controller configuration.

use qsched_dbms::query::{ClassId, ClientId, Query, QueryId, QueryKind};
use qsched_dbms::{DbmsConfig, Timerons};
use qsched_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One arrival in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Offset from the start of the replay.
    pub at: SimDuration,
    /// Service class of the query.
    pub class: ClassId,
    /// OLAP or OLTP (selects metrics and interception downstream).
    pub kind: QueryKind,
    /// Submitting client id (drives snapshot registers; reuse ids for
    /// per-client semantics).
    pub client: ClientId,
    /// Workload template index, for reports.
    pub template: u16,
    /// Optimizer cost estimate, timerons.
    pub estimated_cost: f64,
    /// True cost, timerons.
    pub true_cost: f64,
    /// Fraction of the cost attributable to I/O.
    pub io_fraction: f64,
}

/// A time-ordered workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Build from events (sorted by `at`; sorting is stable).
    ///
    /// # Panics
    /// Panics if any event has a non-finite or negative cost, or an
    /// `io_fraction` outside `[0, 1]`.
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        for e in &events {
            assert!(
                e.estimated_cost.is_finite() && e.estimated_cost > 0.0,
                "invalid estimate {}",
                e.estimated_cost
            );
            assert!(
                e.true_cost.is_finite() && e.true_cost > 0.0,
                "invalid cost {}",
                e.true_cost
            );
            assert!((0.0..=1.0).contains(&e.io_fraction), "invalid io fraction");
        }
        events.sort_by_key(|e| e.at);
        Trace { events }
    }

    /// The events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total span from first to last arrival.
    pub fn span(&self) -> SimDuration {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.at - a.at,
            _ => SimDuration::ZERO,
        }
    }

    /// Materialise the `idx`-th arrival as an engine query.
    pub fn query_at(&self, idx: usize, id: QueryId, cfg: &DbmsConfig) -> Query {
        let e = self.events[idx];
        let true_cost = Timerons::new(e.true_cost);
        // Reuse the template machinery's burst sizing: ~50 ms I/O bursts.
        let io_work = cfg.io_per_timeron.as_secs_f64() * e.true_cost * e.io_fraction;
        let cycles = (io_work / 0.05).ceil().max(1.0) as u32;
        Query {
            id,
            client: e.client,
            class: e.class,
            kind: e.kind,
            template: e.template,
            estimated_cost: Timerons::new(e.estimated_cost),
            true_cost,
            shape: cfg.shape(true_cost, e.io_fraction, cycles),
        }
    }

    /// Serialise to CSV (`at_us,class,kind,client,template,est,true,io`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("at_us,class,kind,client,template,estimated_cost,true_cost,io_fraction\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                e.at.as_micros(),
                e.class.0,
                match e.kind {
                    QueryKind::Olap => "olap",
                    QueryKind::Oltp => "oltp",
                },
                e.client.0,
                e.template,
                e.estimated_cost,
                e.true_cost,
                e.io_fraction
            ));
        }
        out
    }

    /// Parse the CSV format written by [`Trace::to_csv`].
    ///
    /// Every rejection carries the 1-based line number: malformed rows,
    /// negative offsets (the unsigned parse fails), non-finite or
    /// non-positive costs, out-of-range I/O fractions, and out-of-order
    /// timestamps (a recorded trace is time-ordered by construction; an
    /// unordered file is a corrupted or hand-edited trace, not something to
    /// silently re-sort).
    pub fn from_csv(csv: &str) -> Result<Trace, String> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 || line.trim().is_empty() {
                continue; // header / blank
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 8 {
                return Err(format!(
                    "line {}: expected 8 fields, got {}",
                    lineno + 1,
                    fields.len()
                ));
            }
            let parse_f = |i: usize, what: &str| -> Result<f64, String> {
                let v: f64 = fields[i]
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: {what}: {e}", lineno + 1))?;
                if !v.is_finite() {
                    return Err(format!("line {}: non-finite {what} {v}", lineno + 1));
                }
                Ok(v)
            };
            let parse_u = |i: usize, what: &str| -> Result<u64, String> {
                fields[i]
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: {what}: {e}", lineno + 1))
            };
            let kind = match fields[2].trim() {
                "olap" => QueryKind::Olap,
                "oltp" => QueryKind::Oltp,
                other => return Err(format!("line {}: unknown kind '{other}'", lineno + 1)),
            };
            let at = SimDuration::from_micros(parse_u(0, "offset")?);
            if let Some(prev) = events.last() {
                if at < prev.at {
                    return Err(format!(
                        "line {}: out-of-order timestamp {} µs (previous arrival at {} µs)",
                        lineno + 1,
                        at.as_micros(),
                        prev.at.as_micros()
                    ));
                }
            }
            let estimated_cost = parse_f(5, "estimated_cost")?;
            let true_cost = parse_f(6, "true_cost")?;
            for (what, v) in [("estimated_cost", estimated_cost), ("true_cost", true_cost)] {
                if v <= 0.0 {
                    return Err(format!("line {}: non-positive {what} {v}", lineno + 1));
                }
            }
            let io_fraction = parse_f(7, "io_fraction")?;
            if !(0.0..=1.0).contains(&io_fraction) {
                return Err(format!(
                    "line {}: io_fraction {io_fraction} outside [0, 1]",
                    lineno + 1
                ));
            }
            events.push(TraceEvent {
                at,
                class: ClassId(parse_u(1, "class")? as u16),
                kind,
                client: ClientId(parse_u(3, "client")? as u32),
                template: parse_u(4, "template")? as u16,
                estimated_cost,
                true_cost,
                io_fraction,
            });
        }
        Ok(Trace::new(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ms: u64, class: u16, kind: QueryKind, cost: f64) -> TraceEvent {
        TraceEvent {
            at: SimDuration::from_millis(at_ms),
            class: ClassId(class),
            kind,
            client: ClientId(u32::from(class)),
            template: 1,
            estimated_cost: cost,
            true_cost: cost * 1.1,
            io_fraction: 0.7,
        }
    }

    #[test]
    fn events_are_sorted_and_span_computed() {
        let t = Trace::new(vec![
            ev(500, 1, QueryKind::Olap, 1_000.0),
            ev(100, 3, QueryKind::Oltp, 50.0),
            ev(900, 1, QueryKind::Olap, 2_000.0),
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].at, SimDuration::from_millis(100));
        assert_eq!(t.span(), SimDuration::from_millis(800));
    }

    #[test]
    fn csv_round_trip() {
        let t = Trace::new(vec![
            ev(100, 3, QueryKind::Oltp, 50.0),
            ev(500, 1, QueryKind::Olap, 1_000.0),
        ]);
        let csv = t.to_csv();
        let back = Trace::from_csv(&csv).expect("parses");
        assert_eq!(t, back);
    }

    #[test]
    fn query_materialisation_uses_engine_calibration() {
        let t = Trace::new(vec![ev(0, 1, QueryKind::Olap, 3_000.0)]);
        let cfg = DbmsConfig::default();
        let q = t.query_at(0, QueryId(7), &cfg);
        assert_eq!(q.id, QueryId(7));
        assert_eq!(q.class, ClassId(1));
        assert!((q.true_cost.get() - 3_300.0).abs() < 1e-9);
        assert!(q.shape.cycles >= 1);
        assert!(q.shape.weight >= 1.0);
    }

    #[test]
    fn csv_errors_are_reported_with_lines() {
        assert!(Trace::from_csv("header\n1,2,3")
            .unwrap_err()
            .contains("line 2"));
        assert!(Trace::from_csv("h\n1,1,alien,1,1,1,1,0.5")
            .unwrap_err()
            .contains("unknown kind"));
    }

    #[test]
    #[should_panic(expected = "invalid cost")]
    fn non_positive_cost_panics() {
        let mut e = ev(0, 1, QueryKind::Olap, 10.0);
        e.true_cost = 0.0;
        let _ = Trace::new(vec![e]);
    }
}
