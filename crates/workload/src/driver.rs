//! Client machinery: closed-loop sessions (with optional think time) and
//! open-loop Poisson arrival streams.
//!
//! The paper's clients submit "one after another with zero think time" —
//! that is [`Behavior::ClosedLoop`] with zero think time, the default.
//! Production workloads are rarely that aggressive, so the driver also
//! supports exponential think times and open-loop arrivals; populations
//! always follow a [`Schedule`]: at each period boundary clients are
//! activated (and submit immediately) or retired (they finish their
//! in-flight query and stop).

use crate::generator::QueryGen;
use crate::schedule::Schedule;
use qsched_dbms::query::{ClientId, Query, QueryId, QueryRecord};
use qsched_sim::dist::{Dist, Exp};
use qsched_sim::rng::Stream;
use qsched_sim::{Ctx, RngHub, SimDuration};

/// Client ids are partitioned into per-group ranges of this size.
const CLIENT_STRIDE: u32 = 100_000;

/// How the clients of one class generate load.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Behavior {
    /// Each client keeps exactly one query outstanding; after a completion
    /// it thinks for an exponentially distributed time (possibly zero, the
    /// paper's setting) and submits again.
    ClosedLoop {
        /// Mean think time between a completion and the next submission.
        mean_think: SimDuration,
    },
    /// The class is a Poisson arrival stream whose rate scales with the
    /// scheduled client count; submissions do not wait for completions.
    OpenLoop {
        /// Mean inter-arrival time *per client* (rate = count / this).
        mean_interarrival: SimDuration,
    },
}

impl Behavior {
    /// The paper's behaviour: closed loop, zero think time.
    pub fn paper() -> Self {
        Behavior::ClosedLoop {
            mean_think: SimDuration::ZERO,
        }
    }
}

/// Events owned by the client driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// A schedule period begins.
    PeriodStart(usize),
    /// A thinking closed-loop client wakes up and submits.
    Resubmit(ClientId),
    /// The next open-loop arrival of a group (stale generations ignored).
    Arrival {
        /// Group index.
        group: u16,
        /// Generation at scheduling time, bumped on every rate change.
        generation: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    /// Not participating.
    Inactive,
    /// Active with one query outstanding.
    Busy,
    /// Active, between queries (think time pending).
    Thinking,
    /// Finishing its last query (or last think); will not resubmit.
    Retiring,
}

impl ClientState {
    fn is_active(self) -> bool {
        matches!(self, ClientState::Busy | ClientState::Thinking)
    }
}

struct Group {
    gen: Box<dyn QueryGen>,
    behavior: Behavior,
    states: Vec<ClientState>,
    rng: Stream,
    /// Open-loop: invalidates in-flight arrival events on rate changes.
    arrival_generation: u32,
    /// Open-loop: rotates the client id attached to arrivals.
    next_slot: u32,
    /// Open-loop: current scheduled population.
    open_count: u32,
}

impl Group {
    fn active_count(&self) -> u32 {
        match self.behavior {
            Behavior::ClosedLoop { .. } => {
                self.states.iter().filter(|s| s.is_active()).count() as u32
            }
            Behavior::OpenLoop { .. } => self.open_count,
        }
    }
}

/// The set of clients across all workload classes.
///
/// Integration contract with the enclosing world:
/// 1. call [`Clients::start`] once at t=0 and submit the returned queries;
/// 2. route [`ClientEvent`]s to [`Clients::handle`] and submit what it returns;
/// 3. on every completed query, call [`Clients::on_completion`] and submit
///    the follow-up query if one is returned.
pub struct Clients {
    schedule: Schedule,
    groups: Vec<Group>,
    next_query_id: u64,
    total_generated: u64,
}

impl Clients {
    /// The paper's configuration: every class closed-loop with zero think
    /// time. One generator per schedule class, in order.
    ///
    /// # Panics
    /// Panics if the number of generators differs from the schedule's class
    /// count, or a schedule period asks for more clients than the stride.
    pub fn new(schedule: Schedule, generators: Vec<Box<dyn QueryGen>>) -> Self {
        let behaviors = vec![Behavior::paper(); generators.len()];
        Self::with_behaviors(schedule, generators, behaviors, &RngHub::new(0))
    }

    /// Full configuration: per-class behaviours, with think/arrival
    /// randomness drawn from `hub`.
    ///
    /// # Panics
    /// As [`Clients::new`], plus if `behaviors` and `generators` differ in
    /// length.
    pub fn with_behaviors(
        schedule: Schedule,
        generators: Vec<Box<dyn QueryGen>>,
        behaviors: Vec<Behavior>,
        hub: &RngHub,
    ) -> Self {
        assert_eq!(
            generators.len(),
            schedule.classes(),
            "need exactly one generator per schedule class"
        );
        assert_eq!(behaviors.len(), generators.len(), "one behavior per class");
        let groups = generators
            .into_iter()
            .zip(behaviors)
            .enumerate()
            .map(|(gi, (gen, behavior))| {
                let max = schedule.max_count(gi);
                assert!(
                    max < CLIENT_STRIDE,
                    "period population exceeds client stride"
                );
                Group {
                    gen,
                    behavior,
                    states: vec![ClientState::Inactive; max as usize],
                    rng: hub.stream_indexed("client-behavior", gi as u64),
                    arrival_generation: 0,
                    next_slot: 0,
                    open_count: 0,
                }
            })
            .collect();
        Clients {
            schedule,
            groups,
            next_query_id: 0,
            total_generated: 0,
        }
    }

    /// The schedule driving the populations.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Total queries generated so far.
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }

    /// Currently active clients in group `gi` (busy + thinking, or the
    /// scheduled population for open-loop groups).
    pub fn active_count(&self, gi: usize) -> u32 {
        self.groups[gi].active_count()
    }

    fn client_id(gi: usize, slot: usize) -> ClientId {
        ClientId(gi as u32 * CLIENT_STRIDE + slot as u32)
    }

    fn locate(client: ClientId) -> (usize, usize) {
        (
            (client.0 / CLIENT_STRIDE) as usize,
            (client.0 % CLIENT_STRIDE) as usize,
        )
    }

    fn fresh_query(&mut self, gi: usize, slot: usize) -> Query {
        let id = QueryId(self.next_query_id);
        self.next_query_id += 1;
        self.total_generated += 1;
        self.groups[gi]
            .gen
            .next_query(id, Self::client_id(gi, slot))
    }

    /// Begin the run: schedules every period-boundary event and applies
    /// period 0. Returns the initial queries to submit.
    pub fn start<E: From<ClientEvent>>(&mut self, ctx: &mut Ctx<'_, E>) -> Vec<Query> {
        for p in 1..self.schedule.periods() {
            ctx.schedule_at(
                self.schedule.period_start(p),
                ClientEvent::PeriodStart(p).into(),
            );
        }
        self.apply_period(ctx, 0)
    }

    /// Handle a driver event, returning queries to submit.
    pub fn handle<E: From<ClientEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        ev: ClientEvent,
    ) -> Vec<Query> {
        match ev {
            ClientEvent::PeriodStart(p) => self.apply_period(ctx, p),
            ClientEvent::Resubmit(client) => self.on_resubmit(client).into_iter().collect(),
            ClientEvent::Arrival { group, generation } => self
                .on_arrival(ctx, group as usize, generation)
                .into_iter()
                .collect(),
        }
    }

    /// Schedule the next open-loop arrival for group `gi` under its current
    /// rate.
    fn schedule_arrival<E: From<ClientEvent>>(&mut self, ctx: &mut Ctx<'_, E>, gi: usize) {
        let group = &mut self.groups[gi];
        let Behavior::OpenLoop { mean_interarrival } = group.behavior else {
            return;
        };
        if group.open_count == 0 {
            return;
        }
        let mean_gap = mean_interarrival.as_secs_f64() / f64::from(group.open_count);
        let gap = Exp::with_mean(mean_gap.max(1e-6)).sample(&mut group.rng);
        let generation = group.arrival_generation;
        ctx.schedule_in(
            SimDuration::from_secs_f64(gap),
            ClientEvent::Arrival {
                group: gi as u16,
                generation,
            }
            .into(),
        );
    }

    fn on_arrival<E: From<ClientEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        gi: usize,
        generation: u32,
    ) -> Option<Query> {
        let group = &self.groups[gi];
        if group.arrival_generation != generation || group.open_count == 0 {
            return None; // stale event from before a rate change
        }
        let slot = (self.groups[gi].next_slot % self.groups[gi].open_count.max(1)) as usize;
        self.groups[gi].next_slot = self.groups[gi].next_slot.wrapping_add(1);
        let q = self.fresh_query(gi, slot);
        self.schedule_arrival(ctx, gi);
        Some(q)
    }

    fn on_resubmit(&mut self, client: ClientId) -> Option<Query> {
        let (gi, slot) = Self::locate(client);
        let group = self.groups.get_mut(gi)?;
        match group.states.get(slot)? {
            ClientState::Thinking => {
                group.states[slot] = ClientState::Busy;
                Some(self.fresh_query(gi, slot))
            }
            // Retired (or deactivated) while thinking: stop quietly.
            ClientState::Retiring => {
                group.states[slot] = ClientState::Inactive;
                None
            }
            _ => None,
        }
    }

    /// Adjust populations to period `p`'s counts; newly activated
    /// closed-loop clients submit immediately, open-loop groups restart
    /// their arrival process at the new rate.
    fn apply_period<E: From<ClientEvent>>(&mut self, ctx: &mut Ctx<'_, E>, p: usize) -> Vec<Query> {
        let mut to_submit = Vec::new();
        for gi in 0..self.groups.len() {
            let target = self.schedule.count(p, gi);
            if let Behavior::OpenLoop { .. } = self.groups[gi].behavior {
                let group = &mut self.groups[gi];
                if group.open_count != target {
                    group.open_count = target;
                    group.arrival_generation += 1;
                    self.schedule_arrival(ctx, gi);
                }
                continue;
            }
            // Closed loop: revive retiring clients first, then activate
            // inactive ones, then retire any surplus from the top.
            let mut active = 0u32;
            for slot in 0..self.groups[gi].states.len() {
                let st = self.groups[gi].states[slot];
                match st {
                    s if s.is_active() => active += 1,
                    ClientState::Retiring if active < target => {
                        self.groups[gi].states[slot] = ClientState::Busy;
                        active += 1;
                    }
                    _ => {}
                }
            }
            let mut slot = 0;
            while active < target && slot < self.groups[gi].states.len() {
                if self.groups[gi].states[slot] == ClientState::Inactive {
                    self.groups[gi].states[slot] = ClientState::Busy;
                    active += 1;
                    let q = self.fresh_query(gi, slot);
                    to_submit.push(q);
                }
                slot += 1;
            }
            let mut excess = active.saturating_sub(target);
            for slot in (0..self.groups[gi].states.len()).rev() {
                if excess == 0 {
                    break;
                }
                if self.groups[gi].states[slot].is_active() {
                    self.groups[gi].states[slot] = ClientState::Retiring;
                    excess -= 1;
                }
            }
        }
        to_submit
    }

    /// A query finished. For closed-loop clients this produces the next
    /// query — immediately (zero think time), or after scheduling a
    /// [`ClientEvent::Resubmit`] wake-up. Open-loop completions need no
    /// reaction.
    pub fn on_completion<E: From<ClientEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        rec: &QueryRecord,
    ) -> Option<Query> {
        self.client_done(ctx, rec.client)
    }

    /// A query was rejected by the controller. The client sees an error and
    /// moves on exactly as it would after a completion.
    pub fn on_rejection<E: From<ClientEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        client: ClientId,
    ) -> Option<Query> {
        self.client_done(ctx, client)
    }

    fn client_done<E: From<ClientEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, E>,
        client: ClientId,
    ) -> Option<Query> {
        let (gi, slot) = Self::locate(client);
        let group = self.groups.get_mut(gi)?;
        let Behavior::ClosedLoop { mean_think } = group.behavior else {
            return None;
        };
        match group.states.get(slot)? {
            ClientState::Busy => {
                if mean_think.is_zero() {
                    Some(self.fresh_query(gi, slot))
                } else {
                    let think = Exp::with_mean(mean_think.as_secs_f64()).sample(&mut group.rng);
                    group.states[slot] = ClientState::Thinking;
                    ctx.schedule_in(
                        SimDuration::from_secs_f64(think),
                        ClientEvent::Resubmit(client).into(),
                    );
                    None
                }
            }
            ClientState::Retiring => {
                group.states[slot] = ClientState::Inactive;
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TemplateSetGen;
    use crate::templates::{tpcc_templates, tpch_templates};
    use qsched_dbms::query::{ClassId, QueryKind};
    use qsched_dbms::{DbmsConfig, Timerons};
    use qsched_sim::{Engine, SimTime, World};

    fn generators() -> Vec<Box<dyn QueryGen>> {
        let hub = RngHub::new(5);
        let cfg = DbmsConfig::default();
        vec![
            Box::new(TemplateSetGen::new(
                ClassId(1),
                tpch_templates(),
                cfg.clone(),
                hub.stream("c1"),
            )),
            Box::new(TemplateSetGen::new(
                ClassId(2),
                tpch_templates(),
                cfg.clone(),
                hub.stream("c2"),
            )),
            Box::new(TemplateSetGen::new(
                ClassId(3),
                tpcc_templates(),
                cfg,
                hub.stream("c3"),
            )),
        ]
    }

    fn mk_clients(schedule: Schedule) -> Clients {
        Clients::new(schedule, generators())
    }

    fn mk_clients_with(schedule: Schedule, behaviors: Vec<Behavior>) -> Clients {
        Clients::with_behaviors(schedule, generators(), behaviors, &RngHub::new(99))
    }

    /// A world that instantly "completes" every submitted query after a
    /// fixed delay — enough to exercise the loops without a DBMS.
    struct Loopback {
        clients: Clients,
        delay: SimDuration,
        submitted: Vec<(SimTime, Query)>,
    }

    #[derive(Debug, Clone)]
    enum Ev {
        Client(ClientEvent),
        Done(Box<Query>),
        Kickoff,
    }

    impl From<ClientEvent> for Ev {
        fn from(e: ClientEvent) -> Self {
            Ev::Client(e)
        }
    }

    impl Loopback {
        fn submit(&mut self, ctx: &mut Ctx<'_, Ev>, q: Query) {
            self.submitted.push((ctx.now(), q.clone()));
            ctx.schedule_in(self.delay, Ev::Done(Box::new(q)));
        }
    }

    impl World for Loopback {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Kickoff => {
                    let qs = self.clients.start(ctx);
                    for q in qs {
                        self.submit(ctx, q);
                    }
                }
                Ev::Client(ce) => {
                    let qs = self.clients.handle(ctx, ce);
                    for q in qs {
                        self.submit(ctx, q);
                    }
                }
                Ev::Done(q) => {
                    let rec = QueryRecord {
                        id: q.id,
                        client: q.client,
                        class: q.class,
                        kind: q.kind,
                        template: q.template,
                        estimated_cost: q.estimated_cost,
                        submitted: ctx.now(),
                        admitted: ctx.now(),
                        finished: ctx.now(),
                    };
                    if let Some(next) = self.clients.on_completion(ctx, &rec) {
                        self.submit(ctx, next);
                    }
                }
            }
        }
    }

    fn run_loopback_clients(clients: Clients, delay: SimDuration, horizon: SimTime) -> Loopback {
        let mut e = Engine::new(Loopback {
            clients,
            delay,
            submitted: Vec::new(),
        });
        e.schedule_at(SimTime::ZERO, Ev::Kickoff);
        e.run_until(horizon);
        e.into_world()
    }

    fn run_loopback(schedule: Schedule, delay: SimDuration, horizon: SimTime) -> Loopback {
        run_loopback_clients(mk_clients(schedule), delay, horizon)
    }

    #[test]
    fn initial_population_matches_period_zero() {
        let s = Schedule::figure3();
        let w = run_loopback(s, SimDuration::from_secs(3600), SimTime::from_secs(1));
        // Period 0 counts: (2, 4, 15) → 21 initial submissions at t=0.
        let initial: Vec<_> = w
            .submitted
            .iter()
            .filter(|(t, _)| *t == SimTime::ZERO)
            .collect();
        assert_eq!(initial.len(), 21);
        assert_eq!(w.clients.active_count(0), 2);
        assert_eq!(w.clients.active_count(1), 4);
        assert_eq!(w.clients.active_count(2), 15);
    }

    #[test]
    fn zero_think_time_resubmits_immediately() {
        let s = Schedule::constant(SimDuration::from_hours(1), vec![1, 1, 1]);
        let w = run_loopback(s, SimDuration::from_secs(10), SimTime::from_secs(100));
        // Each client completes every 10 s: ~10 queries each over 100 s.
        let per_client = w.submitted.len() / 3;
        assert!((10..=11).contains(&per_client), "got {per_client}");
        // Consecutive submissions of one client are exactly `delay` apart.
        let c0 = w.submitted[0].1.client;
        let times: Vec<SimTime> = w
            .submitted
            .iter()
            .filter(|(_, q)| q.client == c0)
            .map(|(t, _)| *t)
            .collect();
        for pair in times.windows(2) {
            assert_eq!(pair[1] - pair[0], SimDuration::from_secs(10));
        }
    }

    #[test]
    fn think_time_spaces_submissions_beyond_service() {
        let s = Schedule::constant(SimDuration::from_hours(1), vec![1, 1, 1]);
        let behaviors = vec![
            Behavior::ClosedLoop {
                mean_think: SimDuration::from_secs(20),
            },
            Behavior::paper(),
            Behavior::paper(),
        ];
        let w = run_loopback_clients(
            mk_clients_with(s, behaviors),
            SimDuration::from_secs(10),
            SimTime::from_secs(3_000),
        );
        // Class 1 cycles take ~30 s (10 service + ~20 think) vs 10 s for the
        // zero-think classes.
        let count = |class: u16| {
            w.submitted
                .iter()
                .filter(|(_, q)| q.class == ClassId(class))
                .count()
        };
        let thinking = count(1);
        let eager = count(2);
        assert!(
            eager > thinking * 2,
            "think time must slow the loop: {thinking} vs {eager}"
        );
        // Mean cycle of the thinking client ≈ 30 s → ~100 queries in 3 000 s.
        assert!((60..=140).contains(&thinking), "got {thinking}");
    }

    #[test]
    fn open_loop_rate_follows_schedule() {
        // Open-loop group: 6 clients × one arrival per 60 s each → ~6/min.
        let s = Schedule::new(
            SimDuration::from_secs(600),
            vec![vec![6, 1, 1], vec![12, 1, 1]],
        );
        let behaviors = vec![
            Behavior::OpenLoop {
                mean_interarrival: SimDuration::from_secs(60),
            },
            Behavior::paper(),
            Behavior::paper(),
        ];
        let w = run_loopback_clients(
            mk_clients_with(s, behaviors),
            SimDuration::from_secs(1),
            SimTime::from_secs(1_200),
        );
        let in_window = |from: u64, to: u64| {
            w.submitted
                .iter()
                .filter(|(t, q)| {
                    q.class == ClassId(1)
                        && *t >= SimTime::from_secs(from)
                        && *t < SimTime::from_secs(to)
                })
                .count() as f64
        };
        let first = in_window(0, 600);
        let second = in_window(600, 1_200);
        // Period 0: rate 0.1/s → ~60 arrivals; period 1 doubles to ~120.
        assert!((35.0..=90.0).contains(&first), "period 0 arrivals {first}");
        assert!(
            second > first * 1.5,
            "doubling the population must raise the rate: {first} → {second}"
        );
    }

    #[test]
    fn open_loop_population_zero_stops_arrivals() {
        let s = Schedule::new(
            SimDuration::from_secs(300),
            vec![vec![5, 1, 1], vec![0, 1, 1]],
        );
        let behaviors = vec![
            Behavior::OpenLoop {
                mean_interarrival: SimDuration::from_secs(30),
            },
            Behavior::paper(),
            Behavior::paper(),
        ];
        let w = run_loopback_clients(
            mk_clients_with(s, behaviors),
            SimDuration::from_secs(1),
            SimTime::from_secs(900),
        );
        let late = w
            .submitted
            .iter()
            .filter(|(t, q)| q.class == ClassId(1) && *t > SimTime::from_secs(310))
            .count();
        assert_eq!(
            late, 0,
            "arrivals must stop when the population drops to zero"
        );
    }

    #[test]
    fn population_grows_and_shrinks_with_periods() {
        // Two periods of 100 s: class counts (1,1,2) then (3,1,1).
        let s = Schedule::new(
            SimDuration::from_secs(100),
            vec![vec![1, 1, 2], vec![3, 1, 1]],
        );
        let w = run_loopback(s, SimDuration::from_secs(10), SimTime::from_secs(195));
        assert_eq!(w.clients.active_count(0), 3);
        assert_eq!(w.clients.active_count(1), 1);
        // Retirement completes after the in-flight query finishes.
        assert_eq!(w.clients.active_count(2), 1);
        // During period 1, only one class-3 client submits.
        let late_class3: Vec<_> = w
            .submitted
            .iter()
            .filter(|(t, q)| *t > SimTime::from_secs(120) && q.class == ClassId(3))
            .map(|(_, q)| q.client)
            .collect();
        let unique: std::collections::HashSet<_> = late_class3.iter().collect();
        assert_eq!(unique.len(), 1);
    }

    #[test]
    fn query_ids_are_unique_and_dense() {
        let s = Schedule::figure3();
        let w = run_loopback(s, SimDuration::from_secs(600), SimTime::from_secs(4000));
        let mut ids: Vec<u64> = w.submitted.iter().map(|(_, q)| q.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), w.submitted.len(), "duplicate query ids");
        assert_eq!(w.clients.total_generated(), w.submitted.len() as u64);
    }

    #[test]
    fn completion_of_unknown_client_is_ignored() {
        let s = Schedule::constant(SimDuration::from_secs(10), vec![1, 1, 1]);
        let clients = mk_clients(s);
        // Drive through the loopback world so a Ctx is available.
        struct Probe {
            clients: Clients,
            got: Option<Option<Query>>,
        }
        impl World for Probe {
            type Event = ClientEvent;
            fn handle(&mut self, ctx: &mut Ctx<'_, ClientEvent>, _ev: ClientEvent) {
                let rec = QueryRecord {
                    id: QueryId(99),
                    client: ClientId(7 * CLIENT_STRIDE + 3), // no such group
                    class: ClassId(9),
                    kind: QueryKind::Oltp,
                    template: 0,
                    estimated_cost: Timerons::new(1.0),
                    submitted: SimTime::ZERO,
                    admitted: SimTime::ZERO,
                    finished: SimTime::ZERO,
                };
                self.got = Some(self.clients.on_completion(ctx, &rec));
            }
        }
        let mut e = Engine::new(Probe { clients, got: None });
        e.schedule_at(SimTime::ZERO, ClientEvent::PeriodStart(0));
        e.run();
        assert_eq!(e.world().got, Some(None));
    }

    #[test]
    #[should_panic(expected = "one generator per schedule class")]
    fn generator_count_mismatch_panics() {
        let s = Schedule::figure3();
        let hub = RngHub::new(5);
        let gens: Vec<Box<dyn QueryGen>> = vec![Box::new(TemplateSetGen::new(
            ClassId(1),
            tpch_templates(),
            DbmsConfig::default(),
            hub.stream("only"),
        ))];
        let _ = Clients::new(s, gens);
    }
}
