//! # qsched-workload
//!
//! Workload generation for the Query Scheduler reproduction: TPC-H-like
//! OLAP queries, TPC-C-like OLTP transactions, closed-loop clients, and the
//! ICDE'07 paper's 18-period mixed-workload schedule (Figure 3).
//!
//! The paper drove a 500 MB TPC-H database and a 5-warehouse TPC-C database
//! with interactive clients submitting queries "one after another with zero
//! think time", varying per-class client counts across eighteen 80-minute
//! periods. This crate reproduces the *statistical* shape of those
//! workloads: per-template optimizer costs, I/O-dominance of OLAP vs
//! CPU-dominance of OLTP, the TPC-C transaction mix, multiplicative
//! optimizer estimation error, and the exact client-count schedule.
//!
//! * [`templates`] — query templates: cost profiles of the 22 TPC-H queries
//!   (with the paper's exclusion of Q16/Q19/Q20/Q21) and the 5 TPC-C
//!   transaction types.
//! * [`generator`] — per-class query generators drawing from template sets.
//! * [`schedule`] — period-based client-count schedules, including the
//!   paper's Figure 3 schedule.
//! * [`driver`] — the closed-loop client machinery (zero-think-time loops
//!   whose population follows the schedule).
//! * [`trace`] — trace replay: drive the simulator with a recorded workload
//!   (CSV round-trip) instead of the synthetic generators.
//! * [`phases`] — non-stationary overlays (diurnal cycles, flash crowds,
//!   tenant churn) compiled onto a base schedule.
//! * [`fit`] — trace-fitted generators: estimate per-class rate/cost/mix
//!   statistics from a trace and synthesize matched variants.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod driver;
pub mod fit;
pub mod generator;
pub mod phases;
pub mod schedule;
pub mod templates;
pub mod trace;

pub use driver::{Behavior, ClientEvent, Clients};
pub use fit::{sample_trace, ClassFit, TraceFit};
pub use generator::{QueryGen, TemplateSetGen};
pub use phases::{compile as compile_phases, PhaseOverlay, PhaseWindow};
pub use schedule::Schedule;
pub use templates::{tpcc_templates, tpch_templates, Template};
pub use trace::{Trace, TraceEvent};
