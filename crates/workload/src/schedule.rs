//! Period-based workload schedules.
//!
//! The paper's experiments run 24 hours split into eighteen 80-minute
//! periods; within a period the per-class client counts are constant
//! (Figure 3). [`Schedule`] is the general mechanism; [`Schedule::figure3`]
//! is the paper's concrete schedule.

use qsched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A piecewise-constant schedule of per-class client counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    period_len: SimDuration,
    /// `counts[period][class_index]`.
    counts: Vec<Vec<u32>>,
}

impl Schedule {
    /// Build from explicit per-period counts, rejecting malformed input.
    ///
    /// Returns `Err` if `counts` is empty, any row is empty or ragged, or
    /// `period_len` is zero — each of which would otherwise misbehave
    /// silently at phase boundaries (`period_at` divides by the period
    /// length; lookups index `counts[0]`).
    pub fn try_new(period_len: SimDuration, counts: Vec<Vec<u32>>) -> Result<Self, String> {
        let s = Schedule { period_len, counts };
        s.validate()?;
        Ok(s)
    }

    /// Build from explicit per-period counts.
    ///
    /// # Panics
    /// Panics if `counts` is empty, ragged, or `period_len` is zero.
    pub fn new(period_len: SimDuration, counts: Vec<Vec<u32>>) -> Self {
        Self::try_new(period_len, counts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Check the structural invariants `try_new` enforces. Serde
    /// deserialization constructs the fields directly and bypasses
    /// `try_new`, so anything accepting a deserialized schedule (e.g. an
    /// experiment config loaded from JSON) must re-validate it.
    pub fn validate(&self) -> Result<(), String> {
        if self.period_len.is_zero() {
            return Err("period length must be positive".to_string());
        }
        if self.counts.is_empty() {
            return Err("schedule needs at least one period".to_string());
        }
        let width = self.counts[0].len();
        if width == 0 {
            return Err("schedule needs at least one class".to_string());
        }
        for (p, row) in self.counts.iter().enumerate() {
            if row.len() != width {
                return Err(format!(
                    "ragged schedule: period {p} has {} classes, period 0 has {width}",
                    row.len()
                ));
            }
        }
        Ok(())
    }

    /// A constant schedule: one period, fixed counts (useful for calibration
    /// experiments like Figure 2).
    pub fn constant(period_len: SimDuration, counts: Vec<u32>) -> Self {
        Schedule::new(period_len, vec![counts])
    }

    /// The paper's Figure 3 schedule: three classes over eighteen 80-minute
    /// periods.
    ///
    /// * Class 1 (OLAP, importance 1): 2–6 clients.
    /// * Class 2 (OLAP, importance 2): 2–6 clients.
    /// * Class 3 (OLTP, importance 3): 15/20/25 clients cycling
    ///   low→medium→high, so periods 3, 6, 9, 12, 15, 18 are OLTP-heavy.
    ///
    /// Period 17 combines medium OLTP with the heaviest OLAP load; period 18
    /// is the overall heaviest (2 + 6 OLAP clients, 25 OLTP clients), both as
    /// described in the paper's analysis.
    pub fn figure3() -> Self {
        const C1: [u32; 18] = [2, 4, 4, 6, 2, 4, 2, 6, 4, 2, 6, 2, 4, 2, 6, 4, 6, 2];
        const C2: [u32; 18] = [4, 2, 6, 2, 4, 4, 6, 2, 2, 4, 2, 6, 2, 6, 4, 2, 6, 6];
        const C3: [u32; 18] = [
            15, 20, 25, 15, 20, 25, 15, 20, 25, 15, 20, 25, 15, 20, 25, 15, 20, 25,
        ];
        let counts = (0..18).map(|p| vec![C1[p], C2[p], C3[p]]).collect();
        Schedule::new(SimDuration::from_mins(80), counts)
    }

    /// Number of periods.
    pub fn periods(&self) -> usize {
        self.counts.len()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts[0].len()
    }

    /// Length of one period.
    pub fn period_len(&self) -> SimDuration {
        self.period_len
    }

    /// Total schedule duration.
    pub fn total_duration(&self) -> SimDuration {
        self.period_len * self.counts.len() as u64
    }

    /// The period index active at `t` (clamped to the last period).
    pub fn period_at(&self, t: SimTime) -> usize {
        ((t.as_micros() / self.period_len.as_micros()) as usize).min(self.counts.len() - 1)
    }

    /// Start time of period `p`.
    pub fn period_start(&self, p: usize) -> SimTime {
        SimTime::ZERO + self.period_len * p as u64
    }

    /// Client count for `class_index` during period `p`.
    pub fn count(&self, p: usize, class_index: usize) -> u32 {
        self.counts[p][class_index]
    }

    /// Client counts of all classes during period `p`.
    pub fn counts_at(&self, p: usize) -> &[u32] {
        &self.counts[p]
    }

    /// Maximum client count any period asks of `class_index`.
    pub fn max_count(&self, class_index: usize) -> u32 {
        self.counts
            .iter()
            .map(|p| p[class_index])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_matches_the_paper() {
        let s = Schedule::figure3();
        assert_eq!(s.periods(), 18);
        assert_eq!(s.classes(), 3);
        assert_eq!(s.period_len(), SimDuration::from_mins(80));
        assert_eq!(s.total_duration(), SimDuration::from_hours(24));
        // OLAP counts stay in 2..=6; OLTP in 15..=25.
        for p in 0..18 {
            for class in 0..2 {
                assert!((2..=6).contains(&s.count(p, class)));
            }
            assert!((15..=25).contains(&s.count(p, 2)));
        }
        // Periods 3,6,9,12,15,18 (1-based) are OLTP-heavy…
        for p in [2, 5, 8, 11, 14, 17] {
            assert_eq!(s.count(p, 2), 25);
        }
        // …and 1,4,7,10,13,16 are light.
        for p in [0, 3, 6, 9, 12, 15] {
            assert_eq!(s.count(p, 2), 15);
        }
        // Period 18: two Class-1 clients, six Class-2 clients, 25 OLTP.
        assert_eq!(s.counts_at(17), &[2, 6, 25]);
        // Period 17: heavy OLAP, medium OLTP.
        assert_eq!(s.counts_at(16), &[6, 6, 20]);
    }

    #[test]
    fn period_lookup() {
        let s = Schedule::figure3();
        assert_eq!(s.period_at(SimTime::ZERO), 0);
        assert_eq!(s.period_at(SimTime::from_secs(80 * 60 - 1)), 0);
        assert_eq!(s.period_at(SimTime::from_secs(80 * 60)), 1);
        // Past the end clamps to the last period.
        assert_eq!(s.period_at(SimTime::from_secs(30 * 3600)), 17);
        assert_eq!(s.period_start(2), SimTime::from_secs(2 * 80 * 60));
    }

    #[test]
    fn constant_schedule() {
        let s = Schedule::constant(SimDuration::from_mins(10), vec![3, 5]);
        assert_eq!(s.periods(), 1);
        assert_eq!(s.count(0, 0), 3);
        assert_eq!(s.max_count(1), 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_schedule_panics() {
        let _ = Schedule::new(SimDuration::from_mins(1), vec![vec![1, 2], vec![1]]);
    }

    #[test]
    fn try_new_rejects_malformed_schedules() {
        let m = SimDuration::from_mins(1);
        assert!(Schedule::try_new(SimDuration::ZERO, vec![vec![1]])
            .unwrap_err()
            .contains("period length"));
        assert!(Schedule::try_new(m, vec![])
            .unwrap_err()
            .contains("at least one period"));
        assert!(Schedule::try_new(m, vec![vec![]])
            .unwrap_err()
            .contains("at least one class"));
        let err = Schedule::try_new(m, vec![vec![1, 2], vec![3]]).unwrap_err();
        assert!(err.contains("ragged") && err.contains("period 1"), "{err}");
        assert!(Schedule::try_new(m, vec![vec![1, 2], vec![3, 4]]).is_ok());
    }

    #[test]
    fn deserialized_schedules_are_revalidated() {
        // Serde builds the fields directly, bypassing `try_new`; a malformed
        // JSON schedule must still be caught by `validate`.
        let good = Schedule::constant(SimDuration::from_mins(5), vec![2, 3]);
        let mut json = serde_json::to_string(&good).unwrap();
        assert!(serde_json::from_str::<Schedule>(&json)
            .unwrap()
            .validate()
            .is_ok());
        json = json.replace("[[2,3]]", "[[2,3],[4]]");
        let ragged: Schedule = serde_json::from_str(&json).expect("fields deserialize");
        assert!(ragged.validate().unwrap_err().contains("ragged"));
    }
}
