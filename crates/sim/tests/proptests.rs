//! Property-based tests of the simulation kernel's invariants.

use proptest::prelude::*;
use qsched_sim::prelude::*;
use qsched_sim::EventQueue;

proptest! {
    /// The event queue is a stable priority queue: pops are sorted by time,
    /// and FIFO among equal timestamps.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), seq);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated among equal timestamps");
                }
            }
            last = Some((t, seq));
        }
    }

    /// Welford matches the naive two-pass mean and variance.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.sample_variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
    }

    /// Merging split Welford accumulators equals accumulating sequentially.
    #[test]
    fn welford_merge_is_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let k = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &xs[..k] {
            a.push(x);
        }
        for &x in &xs[k..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    }

    /// The time-weighted mean always lies within [min, max] of the values
    /// the signal has taken, and matches a piecewise reference computation.
    #[test]
    fn time_weighted_matches_reference(
        steps in prop::collection::vec((1u64..1_000, -100f64..100.0), 1..50),
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut reference = 0.0; // integral of the signal
        let mut value = 0.0;
        for &(dt, v) in &steps {
            reference += value * dt as f64;
            t += dt;
            tw.set(SimTime::from_micros(t), v);
            value = v;
        }
        // Close with one more second at the final value.
        reference += value * 1_000_000.0;
        t += 1_000_000;
        let end = SimTime::from_micros(t);
        let expected = reference / t as f64;
        prop_assert!((tw.mean_at(end) - expected / 1e6 * 1e6).abs() < 1e-6,
            "tw {} vs reference {}", tw.mean_at(end), expected);
        prop_assert!(tw.mean_at(end) <= tw.max() + 1e-9);
        prop_assert!(tw.mean_at(end) >= tw.min() - 1e-9);
    }

    /// Histogram quantiles are monotone in q and total count is preserved.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(1e-4f64..1e4, 1..500)) {
        let mut h = Histogram::for_response_times();
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        let mut prev = 0.0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
        // The median is within the data range, up to one bin of slack.
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(0.0, f64::max);
        prop_assert!(h.median() >= min * 0.8);
        prop_assert!(h.median() <= max * 1.3);
    }

    /// LinReg exactly recovers arbitrary lines from noiseless samples.
    #[test]
    fn linreg_recovers_lines(
        slope in -100f64..100.0,
        intercept in -1e3f64..1e3,
        xs in prop::collection::vec(-1e3f64..1e3, 3..100),
    ) {
        // Need at least two distinct x values for a defined fit.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let mut r = LinReg::new();
        for &x in &xs {
            r.push(x, intercept + slope * x);
        }
        let s = r.slope().expect("defined");
        let i = r.intercept().expect("defined");
        prop_assert!((s - slope).abs() < 1e-5 * (1.0 + slope.abs()), "slope {s} vs {slope}");
        prop_assert!((i - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
    }

    /// Distribution samples respect their supports.
    #[test]
    fn distribution_supports(seed in any::<u64>()) {
        let mut rng = RngHub::new(seed).stream("support");
        let u = Uniform::new(5.0, 9.0);
        let e = Exp::with_mean(2.0);
        let p = Pareto::bounded(1.0, 100.0, 1.1);
        let l = LogNormal::with_mean(10.0, 0.3);
        for _ in 0..200 {
            let x = u.sample(&mut rng);
            prop_assert!((5.0..9.0).contains(&x));
            prop_assert!(e.sample(&mut rng) >= 0.0);
            let y = p.sample(&mut rng);
            prop_assert!((1.0..=100.0).contains(&y), "pareto out of bounds: {y}");
            prop_assert!(l.sample(&mut rng) > 0.0);
        }
    }

    /// Engine delivery: arbitrary scheduled batches are delivered exactly
    /// once each, in timestamp order.
    #[test]
    fn engine_delivers_everything_in_order(times in prop::collection::vec(0u64..10_000, 1..100)) {
        struct Collect {
            seen: Vec<SimTime>,
        }
        impl World for Collect {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, _ev: u32) {
                self.seen.push(ctx.now());
            }
        }
        let mut e = Engine::new(Collect { seen: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            e.schedule_at(SimTime::from_micros(t), i as u32);
        }
        let delivered = e.run();
        prop_assert_eq!(delivered, times.len() as u64);
        let seen = &e.world().seen;
        for w in seen.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// Metamorphic properties of the stats kernels (the oracle's measurement
// substrate): estimators must agree with exact references within bounded
// error, and merge/order must not matter.
// ---------------------------------------------------------------------------

use qsched_sim::stats::P2Quantile;

/// Rank of `v` in sorted data: how many samples lie strictly below it.
fn rank_of(sorted: &[f64], v: f64) -> usize {
    sorted.iter().filter(|&&x| x < v).count()
}

proptest! {
    /// The P² estimate sits within a bounded *rank* distance of the exact
    /// sample quantile: the number of samples below the estimate is within
    /// max(3, 15% of n) ranks of q·n. (P² has no hard error guarantee, so
    /// the bound is deliberately loose; what matters is that the estimate
    /// cannot drift to an arbitrary position in the distribution.)
    #[test]
    fn p2_quantile_has_bounded_rank_error(
        xs in prop::collection::vec(0.0f64..1e4, 30..400),
        qi in 1usize..10,
    ) {
        let q = qi as f64 / 10.0;
        let mut p2 = P2Quantile::new(q);
        for &x in &xs {
            p2.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let target = q * n as f64;
        let tolerance = (0.15 * n as f64).max(3.0);
        let rank = rank_of(&sorted, p2.value()) as f64;
        prop_assert!(
            (rank - target).abs() <= tolerance,
            "P²({q}) = {} lands at rank {rank} of {n}, expected {target} ± {tolerance}",
            p2.value()
        );
        // And the estimate never escapes the sample range.
        prop_assert!(p2.value() >= sorted[0] && p2.value() <= sorted[n - 1]);
    }

    /// Welford merging is insensitive to chunk order: splitting a stream
    /// into arbitrary chunks and merging them in any rotation gives the
    /// same moments as the sequential pass.
    #[test]
    fn welford_merge_is_order_insensitive(
        xs in prop::collection::vec(-1e3f64..1e3, 3..200),
        cuts in prop::collection::vec(0usize..200, 1..4),
        rotate in 0usize..4,
    ) {
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        // Split at the (deduplicated, sorted) cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % xs.len()).collect();
        bounds.push(0);
        bounds.push(xs.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut chunks: Vec<Welford> = bounds
            .windows(2)
            .map(|w| {
                let mut acc = Welford::new();
                for &x in &xs[w[0]..w[1]] {
                    acc.push(x);
                }
                acc
            })
            .collect();
        let n_chunks = chunks.len();
        chunks.rotate_left(rotate % n_chunks);
        let mut merged = Welford::new();
        for c in &chunks {
            merged.merge(c);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (merged.population_variance() - whole.population_variance()).abs()
                < 1e-6 * (1.0 + whole.population_variance())
        );
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
    }

    /// Re-stating the current value of a time-weighted signal — at any
    /// point, any number of times — never changes its integral: only value
    /// *changes* carry weight.
    #[test]
    fn time_weighted_redundant_sets_are_identity(
        steps in prop::collection::vec((1u64..1_000, -100f64..100.0), 1..40),
        redundant_at in prop::collection::vec(0usize..40, 0..8),
    ) {
        let total: u64 = steps.iter().map(|&(dt, _)| dt).sum();
        let end = SimTime::from_micros(total + 1_000);

        let mut plain = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut noisy = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        for (i, &(dt, v)) in steps.iter().enumerate() {
            t += dt;
            plain.set(SimTime::from_micros(t), v);
            noisy.set(SimTime::from_micros(t), v);
            // Immediately re-assert the same value for chosen steps.
            if redundant_at.contains(&i) {
                noisy.set(SimTime::from_micros(t), v);
                noisy.add(SimTime::from_micros(t), 0.0);
            }
        }
        prop_assert_eq!(plain.current(), noisy.current());
        prop_assert!((plain.mean_at(end) - noisy.mean_at(end)).abs() < 1e-12);
        prop_assert_eq!(plain.max(), noisy.max());
        prop_assert_eq!(plain.min(), noisy.min());
    }

    /// Merging per-shard histograms equals recording the whole stream into
    /// one: identical counts and identical quantiles at every grid point.
    #[test]
    fn histogram_merge_matches_whole_stream(
        xs in prop::collection::vec(1e-4f64..1e4, 1..400),
        split in 0usize..400,
        swap in any::<bool>(),
    ) {
        let k = split % (xs.len() + 1);
        let mut whole = Histogram::for_response_times();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Histogram::for_response_times();
        let mut b = Histogram::for_response_times();
        for &x in &xs[..k] {
            a.record(x);
        }
        for &x in &xs[k..] {
            b.record(x);
        }
        // Merge in either direction: the result must be the same.
        let merged = if swap {
            b.merge(&a);
            b
        } else {
            a.merge(&b);
            a
        };
        prop_assert_eq!(merged.count(), whole.count());
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            prop_assert_eq!(
                merged.quantile(q),
                whole.quantile(q),
                "quantile({}) diverged after merge", q
            );
        }
    }
}
