//! The event queue: a priority queue over [`SimTime`] with stable FIFO
//! ordering among events scheduled for the same instant.
//!
//! Stability matters for determinism: two events at the same timestamp are
//! delivered in the order they were scheduled, independent of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry. Ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest entry first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic event queue.
///
/// ```
/// use qsched_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c"); // same instant as "b": FIFO
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 4, 2, 3] {
            q.push(SimTime::from_secs(s), s);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(3), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_preallocates_and_keeps_fifo_ties() {
        let mut q = EventQueue::with_capacity(256);
        assert!(q.capacity() >= 256);
        assert_eq!(q.len(), 0);
        // Pre-allocation must not disturb same-instant FIFO stability.
        let t = SimTime::from_secs(9);
        q.push(SimTime::from_secs(10), 1_000u64);
        for i in 0..200 {
            q.push(t, i);
        }
        for i in 0..200 {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1_000)));
        // Everything above fit in the initial allocation.
        assert!(q.capacity() >= 256);
        q.reserve(1_000);
        assert!(q.capacity() >= 1_000);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let mut t = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for round in 0..50u64 {
            t += SimDuration::from_millis(17 * (round % 5 + 1));
            q.push(t, round);
            q.push(t + SimDuration::from_millis(3), round);
            if round % 3 == 0 {
                if let Some((pt, _)) = q.pop() {
                    assert!(pt >= last);
                    last = pt;
                }
            }
        }
        while let Some((pt, _)) = q.pop() {
            assert!(pt >= last);
            last = pt;
        }
    }
}
