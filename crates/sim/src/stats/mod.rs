//! Online statistics for simulation outputs.
//!
//! All estimators here are *online*: they consume an unbounded stream of
//! observations in O(1) memory (except [`Series`], which is an explicit
//! recorder with bounded, configurable resolution).

mod histogram;
mod meter;
mod p2;
mod regression;
mod series;
mod timeweighted;
mod welford;

pub use histogram::Histogram;
pub use meter::Meter;
pub use p2::P2Quantile;
pub use regression::LinReg;
pub use series::{Series, SeriesPoint};
pub use timeweighted::TimeWeighted;
pub use welford::Welford;
