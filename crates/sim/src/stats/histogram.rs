//! A log-scale histogram with approximate quantiles.
//!
//! Response times in the reproduction span five orders of magnitude
//! (sub-millisecond OLTP statements to multi-minute OLAP queries), so bins
//! are geometric: each bin covers a fixed ratio, giving a bounded relative
//! quantile error with O(1) memory.

use serde::{Deserialize, Serialize};

/// Geometric-bin histogram over positive values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Smallest representable value; everything below lands in bin 0.
    floor: f64,
    /// log of the per-bin growth ratio.
    log_ratio: f64,
    counts: Vec<u64>,
    total: u64,
    underflow_zeroes: u64,
}

impl Histogram {
    /// A histogram over `[floor, ceil]` with roughly `bins_per_decade` bins
    /// per factor of 10 (relative quantile error ≈ `10^(1/bins_per_decade)`).
    ///
    /// # Panics
    /// Panics unless `0 < floor < ceil` and `bins_per_decade >= 1`.
    pub fn new(floor: f64, ceil: f64, bins_per_decade: u32) -> Self {
        assert!(
            floor > 0.0 && ceil > floor,
            "invalid histogram range [{floor}, {ceil}]"
        );
        assert!(bins_per_decade >= 1, "need at least one bin per decade");
        let log_ratio = std::f64::consts::LN_10 / bins_per_decade as f64;
        let n_bins = ((ceil / floor).ln() / log_ratio).ceil() as usize + 1;
        Histogram {
            floor,
            log_ratio,
            counts: vec![0; n_bins],
            total: 0,
            underflow_zeroes: 0,
        }
    }

    /// Default histogram for response times: 100 µs to 10 000 s, 20 bins/decade.
    pub fn for_response_times() -> Self {
        Histogram::new(1e-4, 1e4, 20)
    }

    fn bin_of(&self, x: f64) -> usize {
        if x <= self.floor {
            return 0;
        }
        let b = ((x / self.floor).ln() / self.log_ratio) as usize;
        b.min(self.counts.len() - 1)
    }

    /// The representative (geometric-mid) value of bin `b`.
    fn bin_value(&self, b: usize) -> f64 {
        self.floor * ((b as f64 + 0.5) * self.log_ratio).exp()
    }

    /// Record one observation. Zero and negative values count toward the
    /// floor bin (and are tallied separately for diagnostics).
    pub fn record(&mut self, x: f64) {
        if x <= 0.0 {
            self.underflow_zeroes += 1;
            self.counts[0] += 1;
        } else {
            let b = self.bin_of(x);
            self.counts[b] += 1;
        }
        self.total += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q ∈ [0, 1]`. Returns `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return f64::NAN;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bin_value(b);
            }
        }
        self.bin_value(self.counts.len() - 1)
    }

    /// Approximate median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Merge another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.floor == other.floor
                && self.log_ratio == other.log_ratio
                && self.counts.len() == other.counts.len(),
            "cannot merge histograms with different configurations"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.underflow_zeroes += other.underflow_zeroes;
    }

    /// Reset all counts.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.underflow_zeroes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new(1e-3, 1e5, 20);
        // 1..=10000 uniformly: true median 5000, p99 9900.
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let med = h.median();
        assert!((med - 5000.0).abs() / 5000.0 < 0.15, "median {med}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.15, "p99 {p99}");
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = Histogram::for_response_times();
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn extremes_clamp_to_edge_bins() {
        let mut h = Histogram::new(1.0, 100.0, 10);
        h.record(1e-9);
        h.record(0.0);
        h.record(1e9);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.0) <= 2.0);
        assert!(h.quantile(1.0) >= 90.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new(1.0, 1000.0, 10);
        let mut b = Histogram::new(1.0, 1000.0, 10);
        for i in 1..=100 {
            a.record(i as f64);
            b.record((i * 10) as f64);
        }
        let a_only_med = a.median();
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.median() >= a_only_med);
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merging_mismatched_configs_panics() {
        let mut a = Histogram::new(1.0, 10.0, 10);
        let b = Histogram::new(1.0, 100.0, 10);
        a.merge(&b);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::for_response_times();
        h.record(0.5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(h.median().is_nan());
    }
}
