//! Simple (optionally exponentially-weighted) linear regression.
//!
//! The OLTP performance model of the paper (§3.2) is a one-variable linear
//! model `t = t₀ + s·C` whose slope `s` is "obtained using linear
//! regression" from observed (OLAP-cost-limit, OLTP-response-time) pairs.
//! [`LinReg`] provides exactly that, with an optional decay factor so the
//! model tracks workload drift.

use serde::{Deserialize, Serialize};

/// Online least-squares fit of `y = intercept + slope * x`.
///
/// With `decay == 1.0` this is ordinary least squares over all observations;
/// with `decay < 1.0` older observations are exponentially down-weighted on
/// every push, so the fit follows a drifting relationship.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinReg {
    decay: f64,
    /// Sum of weights.
    sw: f64,
    swx: f64,
    swy: f64,
    swxx: f64,
    swxy: f64,
    swyy: f64,
    n: u64,
}

impl Default for LinReg {
    fn default() -> Self {
        Self::new()
    }
}

impl LinReg {
    /// Ordinary (unweighted) least squares.
    pub fn new() -> Self {
        Self::with_decay(1.0)
    }

    /// Exponentially weighted least squares; each push multiplies previous
    /// weights by `decay`.
    ///
    /// # Panics
    /// Panics unless `0 < decay <= 1`.
    pub fn with_decay(decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1]: {decay}"
        );
        LinReg {
            decay,
            sw: 0.0,
            swx: 0.0,
            swy: 0.0,
            swxx: 0.0,
            swxy: 0.0,
            swyy: 0.0,
            n: 0,
        }
    }

    /// Add an `(x, y)` observation.
    pub fn push(&mut self, x: f64, y: f64) {
        debug_assert!(
            x.is_finite() && y.is_finite(),
            "non-finite observation ({x}, {y})"
        );
        if self.decay < 1.0 {
            self.sw *= self.decay;
            self.swx *= self.decay;
            self.swy *= self.decay;
            self.swxx *= self.decay;
            self.swxy *= self.decay;
            self.swyy *= self.decay;
        }
        self.sw += 1.0;
        self.swx += x;
        self.swy += y;
        self.swxx += x * x;
        self.swxy += x * y;
        self.swyy += y * y;
        self.n += 1;
    }

    /// Number of observations pushed (unweighted count).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Weighted covariance of x and y.
    fn cov_xy(&self) -> f64 {
        self.swxy / self.sw - (self.swx / self.sw) * (self.swy / self.sw)
    }

    /// Weighted variance of x.
    fn var_x(&self) -> f64 {
        self.swxx / self.sw - (self.swx / self.sw).powi(2)
    }

    /// Weighted variance of y.
    fn var_y(&self) -> f64 {
        self.swyy / self.sw - (self.swy / self.sw).powi(2)
    }

    /// Fitted slope; `None` until two distinct x values have been seen.
    pub fn slope(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let vx = self.var_x();
        if vx <= 1e-300 {
            return None;
        }
        Some(self.cov_xy() / vx)
    }

    /// Fitted intercept; `None` whenever [`LinReg::slope`] is `None`.
    pub fn intercept(&self) -> Option<f64> {
        self.slope()
            .map(|s| self.swy / self.sw - s * self.swx / self.sw)
    }

    /// Predict `y` at `x`; `None` until the fit is defined.
    pub fn predict(&self, x: f64) -> Option<f64> {
        Some(self.intercept()? + self.slope()? * x)
    }

    /// Coefficient of determination R² ∈ [0, 1]; `None` until defined, and
    /// `Some(1.0)` for a perfectly explained (or constant-y) relationship.
    pub fn r_squared(&self) -> Option<f64> {
        let s = self.slope()?;
        let vy = self.var_y();
        if vy <= 1e-300 {
            return Some(1.0);
        }
        Some(((s * s * self.var_x()) / vy).clamp(0.0, 1.0))
    }

    /// Reset to empty, keeping the decay factor.
    pub fn reset(&mut self) {
        *self = Self::with_decay(self.decay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let mut r = LinReg::new();
        for i in 0..50 {
            let x = i as f64;
            r.push(x, 3.0 + 2.0 * x);
        }
        assert!((r.slope().unwrap() - 2.0).abs() < 1e-9);
        assert!((r.intercept().unwrap() - 3.0).abs() < 1e-9);
        assert!((r.r_squared().unwrap() - 1.0).abs() < 1e-9);
        assert!((r.predict(100.0).unwrap() - 203.0).abs() < 1e-9);
    }

    #[test]
    fn undefined_before_two_distinct_x() {
        let mut r = LinReg::new();
        assert!(r.slope().is_none());
        r.push(5.0, 1.0);
        assert!(r.slope().is_none());
        r.push(5.0, 2.0); // same x: still degenerate
        assert!(r.slope().is_none());
        r.push(6.0, 3.0);
        assert!(r.slope().is_some());
    }

    #[test]
    fn noisy_line_slope_close() {
        let mut r = LinReg::new();
        // Deterministic "noise" via a simple LCG so no rand dependency here.
        let mut state = 12345u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (u32::MAX as f64) - 0.5) * 0.2
        };
        for i in 0..2000 {
            let x = (i % 100) as f64;
            r.push(x, 1.0 + 0.5 * x + noise());
        }
        assert!((r.slope().unwrap() - 0.5).abs() < 0.01);
        assert!(r.r_squared().unwrap() > 0.99);
    }

    #[test]
    fn decayed_fit_tracks_regime_change() {
        let mut r = LinReg::with_decay(0.9);
        for i in 0..200 {
            r.push((i % 20) as f64, 10.0 + 1.0 * (i % 20) as f64);
        }
        // Slope changes from 1 to 4.
        for i in 0..200 {
            r.push((i % 20) as f64, 10.0 + 4.0 * (i % 20) as f64);
        }
        let s = r.slope().unwrap();
        assert!(
            (s - 4.0).abs() < 0.1,
            "decayed slope {s} should track the new regime"
        );

        // Undecayed OLS would sit near the middle.
        let mut o = LinReg::new();
        for i in 0..200 {
            o.push((i % 20) as f64, 10.0 + 1.0 * (i % 20) as f64);
        }
        for i in 0..200 {
            o.push((i % 20) as f64, 10.0 + 4.0 * (i % 20) as f64);
        }
        let so = o.slope().unwrap();
        assert!(
            (so - 2.5).abs() < 0.1,
            "OLS slope {so} should average regimes"
        );
    }

    #[test]
    fn constant_y_r_squared_is_one() {
        let mut r = LinReg::new();
        for i in 0..10 {
            r.push(i as f64, 7.0);
        }
        assert!((r.slope().unwrap()).abs() < 1e-12);
        assert_eq!(r.r_squared(), Some(1.0));
    }

    #[test]
    fn reset_preserves_decay() {
        let mut r = LinReg::with_decay(0.5);
        r.push(1.0, 1.0);
        r.reset();
        assert_eq!(r.count(), 0);
        assert!(r.slope().is_none());
    }
}
