//! The P² (piecewise-parabolic) online quantile estimator
//! (Jain & Chlamtac, CACM 1985).
//!
//! Tracks a single quantile in O(1) memory without binning assumptions —
//! more accurate than a log-histogram for mid-range quantiles and
//! scale-free. Used where one specific quantile (e.g. a p95 SLO) matters;
//! [`super::Histogram`] remains the choice when many quantiles are read
//! from one stream.

use serde::{Deserialize, Serialize};

/// Online estimator of one quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile curve).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// An estimator for quantile `q`.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1): {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;

        // 1. Find the cell containing x and clamp extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        // 2. Shift positions of markers above the cell.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // 3. Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. `NaN` when empty; exact for ≤ 5 samples.
    pub fn value(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            n if n < 5 => {
                let mut v: Vec<f64> = self.heights[..n as usize].to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n as usize) - 1;
                v[idx]
            }
            _ => self.heights[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngHub;
    use rand::Rng;

    #[test]
    fn matches_exact_quantile_on_uniform_stream() {
        let mut p = P2Quantile::new(0.95);
        let mut rng = RngHub::new(7).stream("p2");
        let mut xs = Vec::new();
        for _ in 0..20_000 {
            let x: f64 = rng.gen_range(0.0..100.0);
            xs.push(x);
            p.push(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = xs[(0.95 * xs.len() as f64) as usize];
        let est = p.value();
        assert!(
            (est - exact).abs() < 2.0,
            "p95 estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn median_of_skewed_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = RngHub::new(8).stream("p2m");
        let mut xs = Vec::new();
        for _ in 0..20_000 {
            let u: f64 = rng.gen();
            let x = (-2.0 * u.ln().min(0.0)).exp(); // heavy-ish skew
            xs.push(x);
            p.push(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = xs[xs.len() / 2];
        let est = p.value();
        assert!(
            (est - exact).abs() / exact < 0.05,
            "median {est} vs exact {exact}"
        );
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        assert!(p.value().is_nan());
        p.push(10.0);
        assert_eq!(p.value(), 10.0);
        p.push(20.0);
        p.push(30.0);
        // Median of {10,20,30} = 20.
        assert_eq!(p.value(), 20.0);
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn monotone_under_shift() {
        // Feeding strictly larger values must not decrease the estimate.
        let mut p = P2Quantile::new(0.9);
        let mut last = f64::NEG_INFINITY;
        for i in 0..5_000 {
            p.push(i as f64);
            if i > 10 && i % 100 == 0 {
                let v = p.value();
                assert!(v >= last - 1e-9, "estimate went backwards at {i}");
                last = v;
            }
        }
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn invalid_quantile_panics() {
        let _ = P2Quantile::new(1.0);
    }
}
