//! A timestamped series recorder for plottable outputs (e.g. the cost-limit
//! trajectories of the paper's Figure 7).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One recorded point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// When the value was recorded.
    pub time: SimTime,
    /// The recorded value.
    pub value: f64,
}

/// An append-only `(time, value)` series with optional minimum spacing.
///
/// A `min_spacing` of zero records every point; a positive spacing drops
/// points that arrive sooner than the spacing after the previously kept one
/// (the final value of a run should be recorded via [`Series::force_push`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<SeriesPoint>,
    min_spacing_us: u64,
}

impl Series {
    /// A series recording every pushed point.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
            min_spacing_us: 0,
        }
    }

    /// A series that keeps at most one point per `min_spacing` of sim time.
    pub fn with_min_spacing(
        name: impl Into<String>,
        min_spacing: crate::time::SimDuration,
    ) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
            min_spacing_us: min_spacing.as_micros(),
        }
    }

    /// Series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a point, subject to the spacing filter.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.points.last() {
            debug_assert!(time >= last.time, "series times must be monotone");
            if time.as_micros() - last.time.as_micros() < self.min_spacing_us {
                return;
            }
        }
        self.points.push(SeriesPoint { time, value });
    }

    /// Append a point unconditionally (bypasses the spacing filter).
    pub fn force_push(&mut self, time: SimTime, value: f64) {
        self.points.push(SeriesPoint { time, value });
    }

    /// All recorded points.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Mean of values recorded with `time` in `[from, to)`.
    /// Returns `None` if the window contains no points.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut n = 0u64;
        let mut sum = 0.0;
        for p in &self.points {
            if p.time >= from && p.time < to {
                n += 1;
                sum += p.value;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn records_points_in_order() {
        let mut s = Series::new("x");
        s.push(SimTime::from_secs(1), 1.0);
        s.push(SimTime::from_secs(2), 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_value(), Some(2.0));
        assert_eq!(s.name(), "x");
    }

    #[test]
    fn spacing_filter_drops_dense_points() {
        let mut s = Series::with_min_spacing("x", SimDuration::from_secs(10));
        for i in 0..100 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.len(), 10); // t = 0, 10, 20, ..., 90
        s.force_push(SimTime::from_secs(99), 99.0);
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn mean_in_window() {
        let mut s = Series::new("x");
        for i in 0..10 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        let m = s
            .mean_in(SimTime::from_secs(2), SimTime::from_secs(5))
            .unwrap();
        assert!((m - 3.0).abs() < 1e-12); // values 2, 3, 4
        assert!(s
            .mean_in(SimTime::from_secs(50), SimTime::from_secs(60))
            .is_none());
    }
}
