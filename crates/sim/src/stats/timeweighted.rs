//! Time-weighted average of a piecewise-constant signal.
//!
//! Used for signals such as "number of concurrently executing queries" or
//! "total admitted cost", whose average must be weighted by how long each
//! value was held, not by how often it changed.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Online time-weighted mean of a right-continuous step function.
///
/// ```
/// use qsched_sim::stats::TimeWeighted;
/// use qsched_sim::SimTime;
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.set(SimTime::from_secs(10), 4.0);  // value was 0 for 10 s
/// tw.set(SimTime::from_secs(30), 1.0);  // value was 4 for 20 s
/// // value is 1 for the final 10 s
/// assert!((tw.mean_at(SimTime::from_secs(40)) - (0.0*10.0 + 4.0*20.0 + 1.0*10.0) / 40.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    max: f64,
    min: f64,
}

impl TimeWeighted {
    /// Begin tracking at `start` with the signal at `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            max: initial,
            min: initial,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics in debug builds if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(
            now >= self.last_change,
            "TimeWeighted updates must be monotone"
        );
        self.weighted_sum += self.current * (now.saturating_since(self.last_change)).as_secs_f64();
        self.last_change = now;
        self.current = value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Record that the signal changed by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The maximum value the signal has taken.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The minimum value the signal has taken.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Time-weighted mean over `[start, now]`. Returns the current value if
    /// no time has elapsed.
    pub fn mean_at(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.start).as_secs_f64();
        if elapsed <= 0.0 {
            return self.current;
        }
        let pending = self.current * now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + pending) / elapsed
    }

    /// Restart the window at `now`, keeping the current signal value.
    pub fn reset_window(&mut self, now: SimTime) {
        self.start = now;
        self.last_change = now;
        self.weighted_sum = 0.0;
        self.max = self.current;
        self.min = self.current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn constant_signal_mean_is_value() {
        let tw = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(tw.mean_at(SimTime::from_secs(100)), 3.0);
        assert_eq!(tw.mean_at(SimTime::ZERO), 3.0);
    }

    #[test]
    fn step_function_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(5), 3.0);
        // [0,5): 1.0, [5,15): 3.0 => mean = (5 + 30) / 15
        assert!((tw.mean_at(SimTime::from_secs(15)) - 35.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn add_tracks_deltas() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(1), 2.0);
        tw.add(SimTime::from_secs(2), 3.0);
        tw.add(SimTime::from_secs(3), -4.0);
        assert!((tw.current() - 1.0).abs() < 1e-12);
        assert_eq!(tw.max(), 5.0);
        assert_eq!(tw.min(), 0.0);
    }

    #[test]
    fn window_reset_discards_history() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 10.0);
        tw.set(SimTime::from_secs(10), 2.0);
        tw.reset_window(SimTime::from_secs(10));
        assert_eq!(tw.mean_at(SimTime::from_secs(20)), 2.0);
        assert_eq!(tw.max(), 2.0);
    }

    #[test]
    fn mean_between_updates_includes_pending_interval() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 6.0);
        let mid = SimTime::from_secs(10) + SimDuration::from_secs(10);
        // [0,10): 0; [10,20): 6 => mean 3
        assert!((tw.mean_at(mid) - 3.0).abs() < 1e-12);
    }
}
