//! Welford's online algorithm for mean and variance.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance/min/max accumulator.
///
/// ```
/// use qsched_sim::stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    ///
    /// # Panics
    /// Panics in debug builds if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation: {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True if no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean. Returns 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (dividing by `n`). Returns 0.0 when `n < 1`.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (dividing by `n-1`). Returns 0.0 when `n < 2`.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation. Returns `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation. Returns `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Reset to empty.
    pub fn reset(&mut self) {
        *self = Welford::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaviour() {
        let w = Welford::new();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert!(w.min().is_nan());
        assert!(w.max().is_nan());
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.sample_variance() - var).abs() < 1e-9);
        assert!((w.sum() - xs.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..200] {
            a.push(x);
        }
        for &x in &xs[200..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        let mut w = Welford::new();
        for i in 0..10_000 {
            w.push(1e9 + (i % 10) as f64);
        }
        assert!((w.mean() - (1e9 + 4.5)).abs() < 1e-3);
        // Variance of uniform {0..9} offsets is 8.25 (population).
        assert!((w.population_variance() - 8.25).abs() < 0.01);
    }
}
