//! Throughput meter: counts completions and reports rates over windows.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Counts discrete completions and reports throughput (events per second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Meter {
    window_start: SimTime,
    window_count: u64,
    total_count: u64,
    origin: SimTime,
}

impl Meter {
    /// Start metering at `start`.
    pub fn new(start: SimTime) -> Self {
        Meter {
            window_start: start,
            window_count: 0,
            total_count: 0,
            origin: start,
        }
    }

    /// Record `n` completions.
    pub fn record(&mut self, n: u64) {
        self.window_count += n;
        self.total_count += n;
    }

    /// Record one completion.
    pub fn tick(&mut self) {
        self.record(1);
    }

    /// Completions in the current window.
    pub fn window_count(&self) -> u64 {
        self.window_count
    }

    /// Completions since construction.
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Throughput over the current window, in events/second. Returns 0 when
    /// no time has elapsed.
    pub fn window_rate(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.window_start).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.window_count as f64 / dt
        }
    }

    /// Throughput since construction, in events/second.
    pub fn overall_rate(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.origin).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.total_count as f64 / dt
        }
    }

    /// Close the current window at `now`, returning its rate, and start a new
    /// window.
    pub fn roll_window(&mut self, now: SimTime) -> f64 {
        let rate = self.window_rate(now);
        self.window_start = now;
        self.window_count = 0;
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_elapsed_time() {
        let mut m = Meter::new(SimTime::ZERO);
        m.record(10);
        assert_eq!(m.window_rate(SimTime::from_secs(5)), 2.0);
        assert_eq!(m.overall_rate(SimTime::from_secs(5)), 2.0);
    }

    #[test]
    fn zero_elapsed_gives_zero_rate() {
        let mut m = Meter::new(SimTime::from_secs(3));
        m.tick();
        assert_eq!(m.window_rate(SimTime::from_secs(3)), 0.0);
    }

    #[test]
    fn roll_window_resets_window_but_not_total() {
        let mut m = Meter::new(SimTime::ZERO);
        m.record(6);
        let r = m.roll_window(SimTime::from_secs(2));
        assert_eq!(r, 3.0);
        assert_eq!(m.window_count(), 0);
        assert_eq!(m.total_count(), 6);
        m.record(4);
        assert_eq!(m.window_rate(SimTime::from_secs(4)), 2.0);
        assert_eq!(m.overall_rate(SimTime::from_secs(4)), 2.5);
    }
}
